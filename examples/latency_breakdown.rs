//! Where does a DMA's time go at Figure 8's most contended sweep point?
//!
//! Eight SPEs stream GETs from main memory at the smallest element size
//! the paper sweeps (128 B) — the worst point of Figure 8a, where the
//! per-command startup overhead and the shared XDR banks crush
//! bandwidth. The always-on latency digest attributes every cycle of
//! every command to one of four phases, so the table below shows *why*
//! this point is slow, not just that it is.
//!
//! ```text
//! cargo run --release --example latency_breakdown
//! ```

use cellsim::latency::DmaPathClass;
use cellsim::mfc::DmaPhase;
use cellsim::{CellSystem, Placement, PlanError, SyncPolicy, TransferPlan};

const VOLUME: u64 = 1 << 20; // per SPE, enough for steady state
const ELEM: u32 = 128; // the paper's smallest (and slowest) element

fn main() -> Result<(), PlanError> {
    let system = CellSystem::blade();
    let mut b = TransferPlan::builder();
    for spe in 0..8 {
        b = b.get_from_memory(spe, VOLUME, ELEM, SyncPolicy::AfterAll);
    }
    let plan: TransferPlan = b.build()?;
    let report = system.try_run(&Placement::identity(), &plan).unwrap();

    let path = report.latency.path(DmaPathClass::MemGet);
    let h = &path.end_to_end;
    println!(
        "figure 8a worst point — 8 SPEs GET, {ELEM} B elements, {} MiB/SPE",
        VOLUME >> 20
    );
    println!(
        "aggregate bandwidth: {:.2} GB/s over {} cycles\n",
        report.aggregate_gbps, report.cycles
    );
    println!(
        "{} commands on the {} path; end-to-end latency per command:",
        path.commands,
        DmaPathClass::MemGet
    );
    println!(
        "  p50 {} / p95 {} / p99 {} / max {} cycles (mean {})\n",
        h.percentile(50),
        h.percentile(95),
        h.percentile(99),
        h.max,
        h.mean()
    );
    println!("phase                 cycles         share   dominant-in");
    for (i, phase) in DmaPhase::ALL.iter().enumerate() {
        let cycles = path.phase_cycles[i];
        let share = 100.0 * cycles as f64 / h.total.max(1) as f64;
        println!(
            "{:<12} {:>15} {:>13.1}%  {:>8} cmds",
            phase.name(),
            cycles,
            share,
            path.dominant_counts[i]
        );
    }
    println!(
        "\nWhy: 128-byte commands pay the full MFC startup per element and\n\
         give the unroller a single bus packet each, so time splits\n\
         between waiting in the command queue behind the startup\n\
         serialisation and waiting for a ring grant among eight SPEs'\n\
         worth of tiny packets — while actual bank service is a rounding\n\
         error. The paper's argument for larger DMA elements, visible\n\
         one phase at a time."
    );

    // The digest is exact: phases partition the end-to-end latency.
    assert_eq!(path.phase_cycles.iter().sum::<u64>(), h.total);
    Ok(())
}
