//! The paper's future work: evaluating small kernels (scalar product,
//! matrix–vector, matrix product, streaming) on the measured fabric.
//!
//! For each kernel, the runner simulates its DMA traffic pattern on the
//! fabric, measures the bandwidth actually delivered, and takes the
//! roofline minimum against the SPU compute peak.
//!
//! ```text
//! cargo run --release --example kernels_roofline
//! ```

use cellsim::kernels::{KernelRunner, KernelSpec};
use cellsim::CellSystem;

fn main() {
    let system = CellSystem::blade();
    let runner = KernelRunner::new(&system);

    println!("kernel roofline on the simulated 2.1 GHz CBE:");
    println!("(SP peak per SPU: 8.4 GFLOP/s; DP is one op every 7 cycles)\n");
    println!(
        "{:<24} {:>5} {:>12} {:>12} {:>9}",
        "kernel", "SPEs", "BW (GB/s)", "GFLOP/s", "bound"
    );
    let mut kernels = KernelSpec::paper_kernels();
    kernels.push(KernelSpec::matrix_multiply(64).in_double_precision());
    for spec in &kernels {
        for spes in [1usize, 4, 8] {
            let est = runner.estimate(spec, spes);
            println!(
                "{:<24} {:>5} {:>12.2} {:>12.2} {:>9}",
                est.name,
                est.spes,
                est.bandwidth_gbps,
                est.gflops,
                match est.bound {
                    cellsim::kernels::Bound::Memory => "memory",
                    cellsim::kernels::Bound::Compute => "compute",
                }
            );
        }
        println!();
    }
    println!(
        "Low-intensity kernels saturate around the bandwidths of the\n\
         paper's Figure 8 and never come near the arithmetic peak; only\n\
         LS-blocked matrix multiply is compute-bound — and its DP variant\n\
         collapses to the slow DP pipe, exactly Dongarra's argument for\n\
         mixed-precision solvers on Cell."
    );
}
