//! How much does the logical→physical SPE placement matter?
//!
//! `libspe 1.1` gave the programmer no control over where SPE threads
//! landed on the physical ring, so the paper ran everything ten times and
//! reported the spread. This example replays that lottery for the
//! all-active "cycle" pattern — all 20 draws simulated in parallel on a
//! [`SweepExecutor`] — and prints the best and worst draws.
//!
//! ```text
//! cargo run --release --example placement_lottery
//! ```

use std::sync::Arc;

use cellsim::exec::{RunSpec, SweepExecutor, Workload};
use cellsim::{CellSystem, Placement, PlanError, SyncPolicy, TransferPlan};

const VOLUME: u64 = 1 << 20;
const ELEM: u32 = 16 * 1024;
const DRAWS: u64 = 20;

fn main() -> Result<(), PlanError> {
    let system = CellSystem::blade();
    let mut b = TransferPlan::builder();
    for spe in 0..8 {
        b = b.exchange_with(spe, (spe + 1) % 8, VOLUME, ELEM, SyncPolicy::AfterAll);
    }
    let plan = Arc::new(b.build()?);
    let workload = Workload {
        pattern: "cycle",
        spes: 8,
        volume: VOLUME,
        elem: ELEM,
        list: false,
        sync: SyncPolicy::AfterAll,
        params: 0,
    };

    // Draw k of the lottery is Placement::lottery(seed, k): the same
    // placement no matter how the executor schedules the runs.
    let exec = SweepExecutor::default();
    let placements: Vec<Placement> = (0..DRAWS).map(|k| Placement::lottery(2007, k)).collect();
    let specs = placements
        .iter()
        .map(|&p| RunSpec::new(&system, workload.clone(), p, Arc::clone(&plan)))
        .collect();
    let reports = exec.run(specs);

    let mut draws: Vec<(f64, Placement)> = reports
        .iter()
        .map(|r| r.aggregate_gbps)
        .zip(placements)
        .collect();
    draws.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));

    println!(
        "cycle of 8 SPEs, {DRAWS} random placements on {} worker(s) (peak 134.4 GB/s):\n",
        exec.jobs()
    );
    for (gbps, p) in &draws {
        println!("  {gbps:>6.2} GB/s   {p}");
    }
    let (worst, best) = (draws[0].0, draws[draws.len() - 1].0);
    println!(
        "\nspread: {:.1} GB/s ({:.0} % of the worst draw)",
        best - worst,
        100.0 * (best - worst) / worst
    );
    println!(
        "\nPaper §5: \"The physical layout of the SPEs has a critical\n\
         impact on performance. However the current API does not allow\n\
         the programmer to select such layout.\""
    );
    Ok(())
}
