//! How much does the logical→physical SPE placement matter?
//!
//! `libspe 1.1` gave the programmer no control over where SPE threads
//! landed on the physical ring, so the paper ran everything ten times and
//! reported the spread. This example replays that lottery for the
//! all-active "cycle" pattern and prints the best and worst draws.
//!
//! ```text
//! cargo run --release --example placement_lottery
//! ```

use cellsim::{CellSystem, Placement, PlanError, SyncPolicy, TransferPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), PlanError> {
    let system = CellSystem::blade();
    let mut b = TransferPlan::builder();
    for spe in 0..8 {
        b = b.exchange_with(spe, (spe + 1) % 8, 1 << 20, 16 * 1024, SyncPolicy::AfterAll);
    }
    let plan = b.build()?;

    let mut rng = StdRng::seed_from_u64(2007);
    let mut draws: Vec<(f64, Placement)> = (0..20)
        .map(|_| {
            let p = Placement::random(&mut rng);
            (system.run(&p, &plan).aggregate_gbps, p)
        })
        .collect();
    draws.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));

    println!("cycle of 8 SPEs, 20 random placements (peak 134.4 GB/s):\n");
    for (gbps, p) in &draws {
        println!("  {gbps:>6.2} GB/s   {p}");
    }
    let (worst, best) = (draws[0].0, draws[draws.len() - 1].0);
    println!(
        "\nspread: {:.1} GB/s ({:.0} % of the worst draw)",
        best - worst,
        100.0 * (best - worst) / worst
    );
    println!(
        "\nPaper §5: \"The physical layout of the SPEs has a critical\n\
         impact on performance. However the current API does not allow\n\
         the programmer to select such layout.\""
    );
    Ok(())
}
