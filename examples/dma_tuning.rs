//! The paper's DMA programming rules, demonstrated one by one on a pair
//! of SPEs exchanging data.
//!
//! ```text
//! cargo run --release --example dma_tuning
//! ```

use cellsim::{CellSystem, Placement, PlanError, SyncPolicy, TransferPlan};

const VOLUME: u64 = 1 << 20;

fn run(system: &CellSystem, plan: &TransferPlan) -> f64 {
    system.run(&Placement::identity(), plan).aggregate_gbps
}

fn main() -> Result<(), PlanError> {
    let system = CellSystem::blade();
    println!("SPE0 <-> SPE1 exchange, peak 33.6 GB/s. One rule at a time:\n");

    // Rule 1: use large DMA elements (>= 1024 B for DMA-elem).
    println!("rule 1 — transfer size matters (DMA-elem, sync after all):");
    for elem in [128u32, 512, 1024, 4096, 16384] {
        let plan = TransferPlan::builder()
            .exchange_with(0, 1, VOLUME, elem, SyncPolicy::AfterAll)
            .build()?;
        println!("  {:>6} B : {:>6.2} GB/s", elem, run(&system, &plan));
    }

    // Rule 2: delay synchronization as long as possible.
    println!("\nrule 2 — delay the tag-group wait (4 KiB elements):");
    for (label, sync) in [
        ("wait every DMA ", SyncPolicy::Every(1)),
        ("wait every 4   ", SyncPolicy::Every(4)),
        ("wait every 16  ", SyncPolicy::Every(16)),
        ("wait at the end", SyncPolicy::AfterAll),
    ] {
        let plan = TransferPlan::builder()
            .exchange_with(0, 1, VOLUME, 4096, sync)
            .build()?;
        println!("  {label} : {:>6.2} GB/s", run(&system, &plan));
    }

    // Rule 3: DMA lists rescue small elements.
    println!("\nrule 3 — DMA lists amortize per-command cost (128 B elements):");
    let elem_plan = TransferPlan::builder()
        .exchange_with(0, 1, VOLUME / 4, 128, SyncPolicy::AfterAll)
        .build()?;
    let list_plan = TransferPlan::builder()
        .exchange_with_list(0, 1, VOLUME / 4, 128, SyncPolicy::AfterAll)
        .build()?;
    let e = run(&system, &elem_plan);
    let l = run(&system, &list_plan);
    println!("  DMA-elem : {e:>6.2} GB/s");
    println!("  DMA-list : {l:>6.2} GB/s  ({:.1}x)", l / e);

    println!(
        "\nPaper §5: \"double buffering, DMA lists and delaying the\n\
         synchronization (DMA wait) as much as possible will always help\n\
         performance. DMA lists are beneficial for data chunks of less\n\
         than 1024 bytes in SPE to SPE communication.\""
    );
    Ok(())
}
