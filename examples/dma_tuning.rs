//! The paper's DMA programming rules, demonstrated one by one on a pair
//! of SPEs exchanging data.
//!
//! Every run goes through one shared [`SweepExecutor`], so repeated
//! configurations — rule 2's "wait at the end" is exactly rule 1's
//! 4 KiB point — are answered from the run cache instead of resimulated.
//!
//! ```text
//! cargo run --release --example dma_tuning
//! ```

use std::sync::Arc;

use cellsim::exec::{RunSpec, SweepExecutor, Workload};
use cellsim::{CellSystem, Placement, PlanError, SyncPolicy, TransferPlan};

const VOLUME: u64 = 1 << 20;

fn exchange(
    exec: &SweepExecutor,
    system: &CellSystem,
    volume: u64,
    elem: u32,
    list: bool,
    sync: SyncPolicy,
) -> Result<f64, PlanError> {
    let b = TransferPlan::builder();
    let b = if list {
        b.exchange_with_list(0, 1, volume, elem, sync)
    } else {
        b.exchange_with(0, 1, volume, elem, sync)
    };
    let plan = Arc::new(b.build()?);
    let workload = Workload {
        pattern: "couples",
        spes: 2,
        volume,
        elem,
        list,
        sync,
        params: 0,
    };
    let spec = RunSpec::new(system, workload, Placement::identity(), plan);
    Ok(exec.run(vec![spec])[0].aggregate_gbps)
}

fn main() -> Result<(), PlanError> {
    let system = CellSystem::blade();
    let exec = SweepExecutor::default();
    println!("SPE0 <-> SPE1 exchange, peak 33.6 GB/s. One rule at a time:\n");

    // Rule 1: use large DMA elements (>= 1024 B for DMA-elem).
    println!("rule 1 — transfer size matters (DMA-elem, sync after all):");
    for elem in [128u32, 512, 1024, 4096, 16384] {
        let gbps = exchange(&exec, &system, VOLUME, elem, false, SyncPolicy::AfterAll)?;
        println!("  {elem:>6} B : {gbps:>6.2} GB/s");
    }

    // Rule 2: delay synchronization as long as possible.
    println!("\nrule 2 — delay the tag-group wait (4 KiB elements):");
    for (label, sync) in [
        ("wait every DMA ", SyncPolicy::Every(1)),
        ("wait every 4   ", SyncPolicy::Every(4)),
        ("wait every 16  ", SyncPolicy::Every(16)),
        ("wait at the end", SyncPolicy::AfterAll),
    ] {
        let gbps = exchange(&exec, &system, VOLUME, 4096, false, sync)?;
        println!("  {label} : {gbps:>6.2} GB/s");
    }

    // Rule 3: DMA lists rescue small elements.
    println!("\nrule 3 — DMA lists amortize per-command cost (128 B elements):");
    let e = exchange(&exec, &system, VOLUME / 4, 128, false, SyncPolicy::AfterAll)?;
    let l = exchange(&exec, &system, VOLUME / 4, 128, true, SyncPolicy::AfterAll)?;
    println!("  DMA-elem : {e:>6.2} GB/s");
    println!("  DMA-list : {l:>6.2} GB/s  ({:.1}x)", l / e);

    let stats = exec.stats();
    println!(
        "\nrun cache: {} simulations for {} runs ({} duplicate answered from cache)",
        stats.misses,
        stats.hits + stats.misses,
        stats.hits
    );
    println!(
        "\nPaper §5: \"double buffering, DMA lists and delaying the\n\
         synchronization (DMA wait) as much as possible will always help\n\
         performance. DMA lists are beneficial for data chunks of less\n\
         than 1024 bytes in SPE to SPE communication.\""
    );
    Ok(())
}
