//! The paper's streaming-model advice, demonstrated: two data streams of
//! four SPEs each move more data per second than one stream using all
//! eight SPEs.
//!
//! A "stream" here is a software pipeline: the head SPE GETs from main
//! memory, every stage PUTs its output into the next stage's Local Store,
//! and the tail PUTs results back to memory. The plan below reproduces
//! the *steady-state traffic* of such a pipeline; stage compute is
//! assumed to overlap communication via double buffering, exactly as the
//! paper's programming rules prescribe.
//!
//! ```text
//! cargo run --release --example streaming
//! ```

use cellsim::{CellSystem, Placement, PlanError, SyncPolicy, TransferPlan};

const VOLUME: u64 = 2 << 20; // bytes flowing through each pipeline stage
const ELEM: u32 = 16 * 1024;

/// Builds the steady-state traffic of one pipeline over `spes`.
fn pipeline(builder: cellsim::TransferPlanBuilder, spes: &[usize]) -> cellsim::TransferPlanBuilder {
    let head = spes[0];
    let tail = spes[spes.len() - 1];
    let mut b = builder.get_from_memory(head, VOLUME, ELEM, SyncPolicy::AfterAll);
    for w in spes.windows(2) {
        b = b.put_to_spe(w[0], w[1], VOLUME, ELEM, SyncPolicy::AfterAll);
    }
    b.put_to_memory(tail, VOLUME, ELEM, SyncPolicy::AfterAll)
}

fn main() -> Result<(), PlanError> {
    let system = CellSystem::blade();
    let placement = Placement::identity();

    // One stream through all eight SPEs.
    let single: TransferPlan =
        pipeline(TransferPlan::builder(), &[0, 1, 2, 3, 4, 5, 6, 7]).build()?;
    let r1 = system.try_run(&placement, &single).unwrap();
    // Pipeline rate = stage volume / wall time.
    let single_rate = VOLUME as f64 / system.config().clock.seconds(r1.cycles) / 1e9;

    // Two independent streams of four SPEs each.
    let dual: TransferPlan = pipeline(
        pipeline(TransferPlan::builder(), &[0, 1, 2, 3]),
        &[4, 5, 6, 7],
    )
    .build()?;
    let r2 = system.try_run(&placement, &dual).unwrap();
    let dual_rate = 2.0 * VOLUME as f64 / system.config().clock.seconds(r2.cycles) / 1e9;

    println!("pipeline configuration      stream rate");
    println!("1 stream  x 8 SPEs          {single_rate:>6.2} GB/s");
    println!("2 streams x 4 SPEs          {dual_rate:>6.2} GB/s (total)");
    println!();
    println!("speedup from splitting: {:.2}x", dual_rate / single_rate);
    println!(
        "\nWhy: a single stream ingests memory through ONE SPE (~10 GB/s,\n\
         the paper's Little's-law ceiling), while two streams ingest\n\
         through two SPEs on two banks — \"implementing two data streams\n\
         using 4 SPEs each can be more efficient than having a single\n\
         data stream using the 8 SPEs\" (paper, abstract)."
    );
    assert!(dual_rate > single_rate);
    Ok(())
}
