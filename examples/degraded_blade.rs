//! Running the paper's workloads on a broken machine.
//!
//! The paper measures a healthy blade; this example installs a
//! [`FaultPlan`] and watches the same GET+PUT stream degrade. Three
//! machines run the identical 7-SPE workload:
//!
//! 1. the healthy blade;
//! 2. the PS3-style part ([`CellSystem::ps3`]) — physical SPE 7 fused
//!    off, placements drawn with [`Placement::lottery_avoiding`];
//! 3. the PS3 part with the rings derated to 25% capacity and both XDR
//!    banks NACKing 5% of accesses, exercising the MFC's bounded
//!    exponential-backoff retry path.
//!
//! Every fault decision derives from the plan seed, so each line is
//! reproducible bit-for-bit.
//!
//! ```text
//! cargo run --release --example degraded_blade
//! ```

use cellsim::{
    BankFaults, CellSystem, DerateWindow, FaultPlan, Placement, PlanError, SyncPolicy,
    TransferPlan, Window,
};

const VOLUME: u64 = 1 << 20;
const ELEM: u32 = 16 * 1024;

fn seven_spe_copy() -> Result<TransferPlan, PlanError> {
    let mut b = TransferPlan::builder();
    for spe in 0..7 {
        b = b.copy_memory(spe, VOLUME, ELEM, SyncPolicy::AfterAll);
    }
    b.build()
}

fn main() -> Result<(), PlanError> {
    let plan = seven_spe_copy()?;
    let always = Window {
        start: 0,
        cycles: u64::MAX,
    };

    let ps3 = CellSystem::ps3();
    let mut storm = FaultPlan {
        seed: 7,
        fused_spes: vec![7],
        ..FaultPlan::default()
    };
    storm.eib.derate.push(DerateWindow {
        window: always,
        capacity_percent: 25,
    });
    let bank = BankFaults {
        throttle: Vec::new(),
        nack_ppm: 50_000,
    };
    storm.local_bank = bank.clone();
    storm.remote_bank = bank;
    let stormy = CellSystem::blade().with_faults(storm);

    println!("7-SPE GET+PUT stream, {} KiB per SPE:\n", VOLUME >> 10);
    for (name, system) in [
        ("healthy blade", &CellSystem::blade()),
        ("PS3 (SPE 7 fused)", &ps3),
        ("PS3 + derate + NACKs", &stormy),
    ] {
        let mask = system.faults().map_or(0, FaultPlan::fused_mask);
        let placement = Placement::lottery_avoiding(0xCE11, 0, mask);
        let report = system.try_run(&placement, &plan).unwrap();
        let f = report.metrics.faults;
        println!(
            "  {name:<22} {:6.2} GB/s  ({} NACKs, {} retries, {} abandoned)",
            report.aggregate_gbps, f.nacks, f.retries, f.abandoned_packets
        );
    }
    Ok(())
}
