//! The paper's motivation in one table: moving data with the PPE versus
//! letting SPE DMA engines do it.
//!
//! ```text
//! cargo run --release --example ppe_vs_spe
//! ```

use cellsim::ppe::{PpeKernelSpec, PpeOp};
use cellsim::{CellSystem, Placement, SyncPolicy, TransferPlan};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = CellSystem::blade();
    let buffer: u64 = 8 << 20;

    // PPE: the best it can do — 16-byte VMX copies, both SMT threads.
    let ppe = system
        .ppe_model()
        .run(&PpeKernelSpec {
            op: PpeOp::Copy,
            elem_bytes: 16,
            buffer_bytes: buffer / 2, // per thread
            threads: 2,
        })
        .expect("valid kernel");

    // One SPE doing the same memory→memory copy by DMA.
    let one = TransferPlan::builder()
        .copy_memory(0, buffer, 16 * 1024, SyncPolicy::AfterAll)
        .build()?;
    let r1 = system.try_run(&Placement::identity(), &one)?;

    // Four SPEs, the paper's sweet spot before the EIB saturates.
    let mut b = TransferPlan::builder();
    for spe in 0..4 {
        b = b.copy_memory(spe, buffer / 4, 16 * 1024, SyncPolicy::AfterAll);
    }
    let r4 = system.try_run(&Placement::identity(), &b.build()?)?;

    println!("memory-to-memory copy of {} MiB:\n", buffer >> 20);
    println!("  engine              bandwidth");
    println!("  PPE (2 threads)     {:>6.2} GB/s", ppe.bandwidth_gbps);
    println!("  1 SPE (DMA)         {:>6.2} GB/s", r1.aggregate_gbps);
    println!("  4 SPEs (DMA)        {:>6.2} GB/s", r4.sum_gbps);
    println!(
        "\nThe PPE tops out on its load-miss and store-queue structures;\n\
         the MFCs stream cache-line-sized bus packets and, with two or\n\
         more SPEs, reach both memory banks at once. This is why the\n\
         paper's programming model pushes all bulk data movement to the\n\
         SPEs' DMA engines."
    );
    assert!(r1.aggregate_gbps > ppe.bandwidth_gbps);
    Ok(())
}
