//! Inspect what the fabric actually did: record a trace and derive a
//! throughput timeline, ring shares and hop statistics.
//!
//! ```text
//! cargo run --release --example trace_analysis
//! ```

use std::error::Error;

use cellsim::{CellSystem, Placement, SyncPolicy, TransferPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn Error>> {
    let system = CellSystem::blade();
    // The paper's most contended pattern: the 8-SPE cycle.
    let mut b = TransferPlan::builder();
    for spe in 0..8 {
        b = b.exchange_with(spe, (spe + 1) % 8, 1 << 20, 16 * 1024, SyncPolicy::AfterAll);
    }
    let plan = b.build()?;
    let mut rng = StdRng::seed_from_u64(99);
    let placement = Placement::random(&mut rng);

    // Size the trace for the plan (≤4 phases per 128-byte bus packet) so
    // the aggregate analyses below cannot hit TraceTruncated.
    let capacity = 4 * usize::try_from(plan.total_bytes() / 128 + 1024)?;
    let (report, trace) = system
        .try_run_traced_with_capacity(&placement, &plan, capacity)
        .unwrap();
    let clock = system.config().clock;

    println!("8-SPE cycle under {placement}");
    println!(
        "aggregate {:.1} GB/s over {} cycles, mean path {:.2} hops\n",
        report.aggregate_gbps,
        report.cycles,
        trace.mean_hops()
    );

    println!("ring occupancy (bytes granted per data ring):");
    let shares = trace.ring_shares()?;
    let total: u64 = shares.iter().map(|&(_, b)| b).sum();
    for (ring, bytes) in shares {
        let share = 100.0 * bytes as f64 / total as f64;
        let bar = "#".repeat((share / 2.0) as usize);
        println!("  ring {} : {share:>5.1} %  {bar}", ring.0);
    }

    println!("\nthroughput timeline (10k-cycle buckets):");
    for (at, gbps) in trace.throughput_timeline(&clock, 10_000)? {
        let bar = "#".repeat((gbps / 4.0) as usize);
        println!("  t={:>7} : {gbps:>6.1} GB/s  {bar}", at.as_u64());
    }

    // The always-on metrics tell the same story without a trace buffer:
    // where each SPE's cycles went, straight from the report.
    let m = &report.metrics;
    let stalled: u64 = m.per_spe.iter().map(|s| s.stall_cycles()).sum();
    let busy: u64 = m.per_spe.iter().map(|s| s.busy_cycles).sum();
    println!(
        "\nstall accounting: {busy} busy vs {stalled} stalled SPE-cycles \
         across the run"
    );

    println!(
        "\nThe ramp-up at the start is the MFC queues filling; the\n\
         steady state shows the EIB conflicts this placement causes\n\
         (compare a few seeds — the paper's Figure 16 spread is exactly\n\
         this variation)."
    );
    Ok(())
}
