//! Inspect what the fabric actually did: record a trace and derive a
//! throughput timeline, ring shares and hop statistics.
//!
//! ```text
//! cargo run --release --example trace_analysis
//! ```

use cellsim::{CellSystem, Placement, PlanError, SyncPolicy, TransferPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), PlanError> {
    let system = CellSystem::blade();
    // The paper's most contended pattern: the 8-SPE cycle.
    let mut b = TransferPlan::builder();
    for spe in 0..8 {
        b = b.exchange_with(spe, (spe + 1) % 8, 1 << 20, 16 * 1024, SyncPolicy::AfterAll);
    }
    let plan = b.build()?;
    let mut rng = StdRng::seed_from_u64(99);
    let placement = Placement::random(&mut rng);

    let (report, trace) = system.run_traced(&placement, &plan);
    let clock = system.config().clock;

    println!("8-SPE cycle under {placement}");
    println!(
        "aggregate {:.1} GB/s over {} cycles, mean path {:.2} hops\n",
        report.aggregate_gbps,
        report.cycles,
        trace.mean_hops()
    );

    println!("ring occupancy (bytes granted per data ring):");
    let total: u64 = trace.ring_shares().iter().map(|&(_, b)| b).sum();
    for (ring, bytes) in trace.ring_shares() {
        let share = 100.0 * bytes as f64 / total as f64;
        let bar = "#".repeat((share / 2.0) as usize);
        println!("  ring {} : {share:>5.1} %  {bar}", ring.0);
    }

    println!("\nthroughput timeline (10k-cycle buckets):");
    for (at, gbps) in trace.throughput_timeline(&clock, 10_000) {
        let bar = "#".repeat((gbps / 4.0) as usize);
        println!("  t={:>7} : {gbps:>6.1} GB/s  {bar}", at.as_u64());
    }

    println!(
        "\nThe ramp-up at the start is the MFC queues filling; the\n\
         steady state shows the EIB conflicts this placement causes\n\
         (compare a few seeds — the paper's Figure 16 spread is exactly\n\
         this variation)."
    );
    Ok(())
}
