//! Functional end-to-end demo: real data staged through the simulated
//! machine by DMA, with a verified result.
//!
//! A "computation" on the Cell works like this: stage a block from main
//! memory into a Local Store, let the SPU transform it, and stream the
//! result back out. Here the fabric moves *actual bytes*
//! ([`cellsim::CellSystem::try_run_with_data`]), the host plays the SPU role
//! between phases, and the output is checked byte-for-byte — while the
//! simulator reports how long the machine would have taken.
//!
//! ```text
//! cargo run --release --example staged_compute
//! ```

use cellsim::{CellSystem, MachineState, Placement, PlanError, SyncPolicy, TransferPlan};

const BLOCK: u32 = 16 * 1024;
const TOTAL: u64 = 256 * 1024;

fn main() -> Result<(), PlanError> {
    let system = CellSystem::blade();
    let placement = Placement::identity();
    let mut state = MachineState::new();

    // Input: a pseudo-random buffer in SPE0's GET region.
    let input: Vec<u8> = (0..TOTAL).map(|i| (i * 2654435761 % 251) as u8).collect();
    state.write_region(TransferPlan::get_region(0), 0, &input);

    // Phase 1: DMA the whole buffer into SPE0's Local Store window.
    let stage_in = TransferPlan::builder()
        .get_from_memory(0, u64::from(BLOCK) * 8, BLOCK, SyncPolicy::AfterAll)
        .build()?;
    let mut cycles = 0u64;
    let mut processed = 0u64;
    let mut output = Vec::with_capacity(input.len());
    while processed < TOTAL {
        // Stage a Local-Store window's worth (8 blocks of 16 KiB).
        let window = u64::from(BLOCK) * 8;
        // Refill the GET region cursor by rewriting the window at offset 0:
        // (each pass maps the next window of input to region offset 0..window)
        let chunk = &input[processed as usize..(processed + window) as usize];
        state.write_region(TransferPlan::get_region(0), 0, chunk);
        let r = system
            .try_run_with_data(&placement, &stage_in, &mut state)
            .unwrap();
        cycles += r.cycles;

        // "SPU compute": add 1 to every byte, in Local Store.
        let transformed: Vec<u8> = state
            .local_store(0)
            .read(0, window as usize)
            .iter()
            .map(|b| b.wrapping_add(1))
            .collect();
        state.local_store_mut(0).write(0, &transformed);
        output.extend_from_slice(&transformed);

        // Phase 2: DMA the results back out to the PUT region.
        let stage_out = TransferPlan::builder()
            .put_to_memory(0, window, BLOCK, SyncPolicy::AfterAll)
            .build()?;
        let r = system
            .try_run_with_data(&placement, &stage_out, &mut state)
            .unwrap();
        cycles += r.cycles;
        processed += window;
    }

    // Verify: every output byte is input+1.
    let expect: Vec<u8> = input.iter().map(|b| b.wrapping_add(1)).collect();
    assert_eq!(output, expect, "staged computation must be exact");

    let clock = system.config().clock;
    let secs = clock.seconds(cycles);
    println!("processed  : {} KiB, verified byte-for-byte", TOTAL >> 10);
    println!("machine time: {cycles} bus cycles = {:.1} µs", secs * 1e6);
    println!(
        "effective  : {:.2} GB/s of staged (in+out) traffic",
        2.0 * TOTAL as f64 / secs / 1e9
    );
    println!(
        "\n(A production kernel would double-buffer so the transform\n\
         overlaps the DMA — see `kernels_roofline` for that model.)"
    );
    Ok(())
}
