//! Quickstart: simulate one SPE streaming from main memory.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cellsim::{CellSystem, Placement, PlanError, SyncPolicy, TransferPlan};

fn main() -> Result<(), PlanError> {
    // An out-of-the-box 2.1 GHz dual-Cell blade.
    let system = CellSystem::blade();

    // Logical SPE 0 GETs 4 MiB from its main-memory region in 16 KiB
    // DMA chunks, waiting for its tag group only once at the end — the
    // paper's recipe for maximum bandwidth.
    let plan = TransferPlan::builder()
        .get_from_memory(0, 4 << 20, 16 * 1024, SyncPolicy::AfterAll)
        .build()?;

    let report = system.try_run(&Placement::identity(), &plan).unwrap();

    println!("transferred : {} bytes", report.total_bytes);
    println!("bus cycles  : {}", report.cycles);
    println!("bandwidth   : {:.2} GB/s", report.aggregate_gbps);
    println!("bus packets : {}", report.packets);
    println!(
        "EIB grants  : {} ({} cycles spent waiting for rings)",
        report.eib.grants, report.eib.wait_cycles
    );

    // The paper's headline single-SPE number: ~10 GB/s, 60 % of the
    // 16.8 GB/s bank peak, limited by the MFC's outstanding-transfer
    // budget against the memory round-trip (Little's law).
    assert!(report.aggregate_gbps > 8.0 && report.aggregate_gbps < 12.0);
    println!("\n=> matches the paper's ~10 GB/s single-SPE ceiling");
    Ok(())
}
