//! A CellSs-style task runtime on the simulated machine: schedule a
//! mixed job over SPE lanes and predict where the time goes.
//!
//! ```text
//! cargo run --release --example task_runtime
//! ```

use cellsim::runtime::{RuntimeError, StreamRuntime, Task};
use cellsim::CellSystem;

fn main() -> Result<(), RuntimeError> {
    let system = CellSystem::blade();

    // Two job shapes, scheduled over 1..8 lanes each.
    let filters: Vec<Task> = (0..32)
        .map(|i| {
            Task::new(format!("filter{i}"))
                .input(128 << 10)
                .output(128 << 10)
                .flops(65_536.0)
        })
        .collect();
    let gemms: Vec<Task> = (0..32)
        .map(|i| {
            Task::new(format!("gemm{i}"))
                .input(48 << 10) // three 64x64 SP tiles
                .output(16 << 10)
                .flops(2.0 * 64.0 * 64.0 * 64.0 * 16.0) // 16 tile-products
        })
        .collect();

    for (name, tasks) in [
        ("32 streaming filters", &filters),
        ("32 GEMM tile tasks", &gemms),
    ] {
        println!("job: {name}");
        for lanes in [1usize, 2, 4, 8] {
            let runtime = StreamRuntime::new(&system, lanes);
            let report = runtime.execute(tasks)?;
            let clock = system.config().clock;
            println!(
                "  {lanes} lane(s): makespan {:>9} cycles ({:>7.1} µs)  {:>6.2} GFLOP/s  {}/{} lanes memory-bound",
                report.makespan_cycles,
                clock.seconds(report.makespan_cycles) * 1e6,
                report.gflops,
                report.memory_bound_lanes(),
                lanes,
            );
        }
        println!();
    }
    // Per-lane detail for the streaming job on the full machine.
    let report = StreamRuntime::new(&system, 8).execute(&filters)?;
    println!("streaming job, per-lane breakdown at 8 lanes:");
    print!("{report}");
    println!(
        "\nThe paper's conclusion in action: the runtime schedules bulk\n\
         movement onto the MFCs, overlaps it with compute, and the fabric\n\
         model says when adding lanes stops paying (the two banks\n\
         saturate near 23 GB/s, Figure 8)."
    );
    Ok(())
}
