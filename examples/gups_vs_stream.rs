//! The random-access penalty: GUPS updates vs Figure 8 streaming.
//!
//! Both workloads drive eight SPEs against main memory, but their
//! address streams could not be further apart. The streaming plan GETs
//! 16 KiB blocks back to back — Figure 8's best case. The GUPS plan
//! replays a seeded [`cellsim::workloads::GupsParams`] stream of 8 B
//! update cycles (fenced GET+PUT per slot) scattered over a 16 MiB
//! table — the paper's worst case, every access a full-latency round
//! trip with no unroller help.
//!
//! Each plan runs twice: on the healthy blade, and under a seeded
//! [`FaultPlan`] that makes both XDR banks NACK 6% / 3% of accesses.
//! The always-on latency digest then attributes every cycle to a DMA
//! phase per path, showing *where* each pattern spends its time and
//! how NACK retries shift the split.
//!
//! ```text
//! cargo run --release --example gups_vs_stream
//! ```

use cellsim::latency::DmaPathClass;
use cellsim::mfc::DmaPhase;
use cellsim::workloads::GupsParams;
use cellsim::{
    CellSystem, FabricReport, FaultPlan, Placement, PlanError, SyncPolicy, TransferPlan,
};

const SPES: usize = 8;
const STREAM_VOLUME: u64 = 256 << 10; // per SPE
const STREAM_ELEM: u32 = 16 * 1024;
const GUPS_VOLUME: u64 = 32 << 10; // per SPE: an eighth, like the sweep
const GUPS_GRAIN: u32 = 8;
const TABLE_LOG2: u8 = 24; // 16 MiB table per SPE
const SEED: u32 = 0xCE11;

fn streaming_plan() -> Result<TransferPlan, PlanError> {
    let mut b = TransferPlan::builder();
    for spe in 0..SPES {
        b = b.get_from_memory(spe, STREAM_VOLUME, STREAM_ELEM, SyncPolicy::AfterAll);
    }
    b.build()
}

fn gups_plan() -> Result<TransferPlan, PlanError> {
    let params = GupsParams {
        table_log2: TABLE_LOG2,
        seed: SEED,
    };
    let count = GUPS_VOLUME / u64::from(GUPS_GRAIN);
    let mut b = TransferPlan::builder();
    for spe in 0..SPES {
        let offsets = params
            .offsets(spe as u8, count, GUPS_GRAIN)
            .expect("in-range GUPS parameters");
        b = b.update_elems_at(spe, TransferPlan::get_region(spe), &offsets, GUPS_GRAIN);
    }
    b.build()
}

fn nack_storm() -> FaultPlan {
    let mut plan = FaultPlan {
        seed: 77,
        ..FaultPlan::default()
    };
    plan.local_bank.nack_ppm = 60_000;
    plan.remote_bank.nack_ppm = 30_000;
    plan.validate().expect("valid fault plan");
    plan
}

/// Prints one path's end-to-end percentiles and its cycle split across
/// the DMA phases.
fn print_path(report: &FabricReport, class: DmaPathClass) {
    let path = report.latency.path(class);
    if path.commands == 0 {
        return;
    }
    let h = &path.end_to_end;
    println!(
        "  {class}: {} commands, p50 {} / p95 {} / max {} cycles",
        path.commands,
        h.percentile(50),
        h.percentile(95),
        h.max
    );
    for (i, phase) in DmaPhase::ALL.iter().enumerate() {
        let share = 100.0 * path.phase_cycles[i] as f64 / h.total.max(1) as f64;
        if share >= 0.05 {
            println!("    {:<12} {share:5.1}%", phase.name());
        }
    }
    // The digest is exact: phases partition the end-to-end cycles.
    assert_eq!(path.phase_cycles.iter().sum::<u64>(), h.total);
}

fn report(name: &str, system: &CellSystem, plan: &TransferPlan) -> f64 {
    let r = system.try_run(&Placement::identity(), plan).unwrap();
    let f = r.metrics.faults;
    println!(
        "{name:<28} {:6.2} GB/s over {} cycles ({} NACKs, {} retries)",
        r.aggregate_gbps, r.cycles, f.nacks, f.retries
    );
    for class in [DmaPathClass::MemGet, DmaPathClass::MemPut] {
        print_path(&r, class);
    }
    println!();
    r.aggregate_gbps
}

fn main() -> Result<(), PlanError> {
    let streaming = streaming_plan()?;
    let gups = gups_plan()?;
    let healthy = CellSystem::blade();
    let stormy = CellSystem::blade().with_faults(nack_storm());

    println!(
        "8 SPEs vs main memory: {} KiB streamed at {} KiB, {} KiB updated at {} B\n",
        STREAM_VOLUME >> 10,
        STREAM_ELEM >> 10,
        GUPS_VOLUME >> 10,
        GUPS_GRAIN
    );
    let stream_gbps = report("streaming GET (healthy)", &healthy, &streaming);
    let gups_gbps = report("GUPS 8 B updates (healthy)", &healthy, &gups);
    let stream_faulted = report("streaming GET (bank NACKs)", &stormy, &streaming);
    let gups_faulted = report("GUPS 8 B updates (bank NACKs)", &stormy, &gups);

    println!(
        "Random 8 B updates reach {:.1}% of streaming bandwidth even\n\
         counting both directions of every update cycle: the phase\n\
         tables show tiny transfers living in queue-wait and ring-wait\n\
         while 16 KiB streams only ever wait on a pipeline slot. The\n\
         NACK storm costs streaming {:.1}% and GUPS {:.1}% — thousands\n\
         of retries vanish into slack each pattern already had — so the\n\
         access pattern, not the fault, is what prices the bandwidth.",
        100.0 * gups_gbps / stream_gbps,
        100.0 * (stream_gbps - stream_faulted) / stream_gbps,
        100.0 * (gups_gbps - gups_faulted) / gups_gbps
    );
    assert!(gups_gbps < stream_gbps / 4.0, "the random-access penalty");
    assert!(stream_faulted <= stream_gbps * 1.02);
    assert!(gups_faulted <= gups_gbps * 1.02);
    Ok(())
}
