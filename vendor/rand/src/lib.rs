//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand`'s API it actually uses:
//!
//! * [`RngCore`] / [`Rng`] — raw and high-level generator traits;
//! * [`SeedableRng`] with [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] — a deterministic, seedable generator
//!   (xoshiro256++ here; the stream differs from upstream `rand`, which
//!   only matters to tests calibrated against exact draws);
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! Everything is `std`-only and fully deterministic: the same seed gives
//! the same stream on every platform, which is exactly the property the
//! simulator's placement lottery and the repo's determinism tests rely
//! on.

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of uniformly distributed bits.
pub trait RngCore {
    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level generator helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed index in `0..bound` (`bound` must be
    /// non-zero). Uses Lemire-style widening reduction, so there is no
    /// modulo bias to speak of for the bounds the simulator uses.
    fn random_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "random_index bound must be non-zero");
        ((u128::from(self.next_u64()) * bound as u128) >> 64) as usize
    }

    /// A uniformly distributed `u64` in `[lo, hi)`.
    fn random_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        let span = hi - lo;
        lo + ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// A uniformly distributed `bool`.
    fn random_bool_even(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be initialized from a fixed-size seed or a bare
/// `u64`.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands `state` into a full seed with SplitMix64 (the same
    /// construction upstream `rand` documents) and builds the generator.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander (and the mixer `cellsim_kernel` mirrors for
/// its per-run seed derivation).
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic, seedable generator: xoshiro256++.
    ///
    /// Not the same stream as upstream `rand`'s `StdRng` (ChaCha12), but
    /// identical in every property the simulator needs: seed-stable,
    /// platform-independent, and statistically sound for shuffles.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }

    /// Alias: the simulator never needs a cryptographic generator.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Sequence helpers.

    use super::Rng;

    /// Slice shuffling, as upstream `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Uniformly shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_index(i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle leaving order intact is ~impossible"
        );
    }

    #[test]
    fn random_index_within_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for bound in [1usize, 2, 7, 100] {
            for _ in 0..50 {
                assert!(rng.random_index(bound) < bound);
            }
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
