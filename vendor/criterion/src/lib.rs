//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of criterion's API its benches use: [`Criterion`],
//! [`criterion_group!`] / [`criterion_main!`], benchmark groups with
//! `sample_size` / `throughput` / `finish`, and `Bencher::iter`.
//!
//! Measurement is deliberately simple — a short warm-up, then a fixed
//! sample of timed batches reporting the per-iteration median — because
//! the repo's real performance evidence comes from the `repro` binary's
//! wall-clock reporting, not from these micro-benches. Under
//! `cargo test` (criterion benches are invoked with `--test`) each
//! benchmark body runs exactly once so the code stays exercised without
//! timing loops.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Drives closures under measurement; handed to benchmark bodies.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over this bencher's iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Units for throughput annotation (accepted, echoed in the report).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The benchmark harness entry point.
pub struct Criterion {
    /// `true` when invoked by `cargo test` (`--test` argument): run each
    /// body once, skip timing.
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Runs (or, under `--test`, smoke-runs) one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.test_mode, self.sample_size, None, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Annotates following benchmarks with a throughput unit.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(&full, self.criterion.test_mode, samples, self.throughput, f);
        self
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    test_mode: bool,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("{name}: smoke-ran 1 iteration (test mode)");
        return;
    }
    // Warm-up and per-sample calibration: aim for ~5 ms per sample.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(5).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let extra = match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let gbps = bytes as f64 / median;
            format!("  ({gbps:.3} GB/s)")
        }
        Some(Throughput::Elements(n)) => {
            let meps = n as f64 / median * 1e3;
            format!("  ({meps:.3} Melem/s)")
        }
        None => String::new(),
    };
    println!(
        "{name}: {:>12.1} ns/iter  (median of {} samples × {} iters){extra}",
        median,
        per_iter_ns.len(),
        iters
    );
}

/// Groups benchmark functions under one name, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emits `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion {
            test_mode: true,
            sample_size: 10,
        };
        let mut ran = false;
        c.bench_function("probe", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_settings_chain() {
        let mut c = Criterion {
            test_mode: true,
            sample_size: 10,
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(5).throughput(Throughput::Bytes(1024));
        g.bench_function("inner", |b| b.iter(|| 2 * 2));
        g.finish();
    }
}
