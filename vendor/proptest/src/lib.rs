//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of proptest it uses: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map` / `prop_filter`, range and
//! tuple strategies, [`strategy::Just`], [`prop_oneof!`],
//! [`collection::vec`], `any::<T>()` and the `prop_assert*` /
//! [`prop_assume!`] macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs (every bound
//!   value is `Debug`-printed) but is not minimized.
//! * **Deterministic by default.** Cases are generated from a fixed seed
//!   mixed with the case index, so test runs are reproducible; set
//!   `PROPTEST_SEED` to explore a different stream, `PROPTEST_CASES` to
//!   change the per-test case count (default 64).

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Case generation and the test loop.

    use std::fmt;

    /// Per-test configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum rejected (`prop_assume!`-filtered) cases tolerated
        /// before the test errors out.
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            Config {
                cases,
                max_global_rejects: 65_536,
            }
        }
    }

    impl Config {
        /// A configuration running `cases` successful cases per test.
        pub fn with_cases(cases: u32) -> Config {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried with
        /// fresh draws and does not count against `cases`.
        Reject(String),
        /// A `prop_assert*!` failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection (filtered inputs) with the given reason.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "{m}"),
            }
        }
    }

    /// Deterministic per-case generator (SplitMix64 stream).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for one case, derived from the runner seed and the
        /// attempt counter.
        pub fn for_case(seed: u64, attempt: u64) -> TestRng {
            TestRng {
                state: seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// The next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, bound)` (`bound` non-zero).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// A uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Drives one property over `Config::cases` generated cases.
    pub struct TestRunner {
        config: Config,
        seed: u64,
    }

    impl TestRunner {
        /// A runner for `config`.
        pub fn new(config: Config) -> TestRunner {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0xC0FF_EE11_D00D_F00Du64);
            TestRunner { config, seed }
        }

        /// Runs `case` until `config.cases` successes; panics on the
        /// first failure (no shrinking).
        pub fn run_cases<F>(&mut self, mut case: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            let mut successes = 0u32;
            let mut rejects = 0u32;
            let mut attempt = 0u64;
            while successes < self.config.cases {
                let mut rng = TestRng::for_case(self.seed, attempt);
                attempt += 1;
                match case(&mut rng) {
                    Ok(()) => successes += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejects += 1;
                        if rejects > self.config.max_global_rejects {
                            panic!(
                                "proptest: too many rejected cases ({rejects}) — \
                                 prop_assume! filter is too strict"
                            );
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest: case failed after {successes} successes \
                             (seed {:#x}, attempt {}): {msg}",
                            self.seed,
                            attempt - 1
                        );
                    }
                }
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use std::fmt;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    use crate::test_runner::TestRng;

    /// Generates values of `Self::Value` from a deterministic stream.
    ///
    /// Unlike upstream there is no value tree: strategies produce final
    /// values directly and nothing shrinks.
    pub trait Strategy: Clone {
        /// The type of generated values.
        type Value: fmt::Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            O: fmt::Debug,
            F: Fn(Self::Value) -> O + Clone,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `pred`; draws again otherwise
        /// (bounded retries, then panic — mirrors upstream's global
        /// reject limit).
        fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            F: Fn(&Self::Value) -> bool + Clone,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                pred,
            }
        }

        /// Type-erases the strategy (needed by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + fmt::Debug>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: fmt::Debug,
        F: Fn(S::Value) -> O + Clone,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool + Clone,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter({:?}): no value accepted in 10000 draws",
                self.reason
            );
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice between alternatives (built by [`prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Union<T> {
        /// A union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T: fmt::Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64) - (lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
    }

    /// Full-domain strategy for a primitive (the `any::<T>()` backend).
    #[derive(Debug)]
    pub struct FullRange<T>(std::marker::PhantomData<T>);

    impl<T> Clone for FullRange<T> {
        fn clone(&self) -> Self {
            FullRange(std::marker::PhantomData)
        }
    }

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized + fmt::Debug {
        /// Draws one value covering the whole domain.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for FullRange<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> FullRange<T> {
        FullRange(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use std::ops::{Range, RangeInclusive};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for [`vec`]: `[min, max)`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max_excl: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    /// Generates `Vec`s whose length is uniform in `size` and whose
    /// elements come from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::collection;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestRng, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Fails the current case with a formatted message if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case if `left != right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*),
            l,
            r
        );
    }};
}

/// Fails the current case if `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{}\n  both: {:?}", format!($($fmt)*), l);
    }};
}

/// Rejects the current case (retried with fresh draws) if `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the subset of upstream syntax the workspace uses: an optional
/// `#![proptest_config(...)]` header and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            runner.run_cases(|__proptest_rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                #[allow(clippy::redundant_closure_call)]
                (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 0u32..=7, z in 1usize..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 7);
            prop_assert!((1..5).contains(&z));
        }

        #[test]
        fn maps_and_tuples((a, b) in (0u32..4, 4u32..8).prop_map(|(a, b)| (b, a))) {
            prop_assert!(a >= 4 && b < 4);
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec(0u64..100, 3..6)) {
            prop_assert!((3..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn oneof_and_filter(
            k in prop_oneof![Just(1u32), Just(2), (5u32..8).prop_filter("odd", |v| v % 2 == 1)]
        ) {
            prop_assert!(k == 1 || k == 2 || k == 5 || k == 7);
        }

        #[test]
        fn assume_rejects(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_header_accepted(b in any::<bool>(), x in any::<u8>()) {
            prop_assert!(u32::from(x) < 256 || b);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let mut a = TestRng::for_case(1, 2);
        let mut b = TestRng::for_case(1, 2);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_range_in_bounds() {
        let mut rng = TestRng::for_case(9, 0);
        let s = 0.0f64..1000.0;
        use crate::strategy::Strategy;
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((0.0..1000.0).contains(&v));
        }
    }
}
