//! # cellsim
//!
//! A discrete-event simulator of the **Cell Broadband Engine**'s
//! communication architecture, built to reproduce every measurement of
//! *“Performance Analysis of Cell Broadband Engine for High Memory
//! Bandwidth Applications”* (Jiménez-González, Martorell, Ramírez;
//! ISPASS 2007).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`kernel`] — the deterministic event engine, simulated time and
//!   bandwidth statistics;
//! * [`eib`] — the Element Interconnect Bus: four rings, twelve ramps,
//!   the central data arbiter and the command bus;
//! * [`mem`] — dual XDR banks (MIC + IOIF paths) and NUMA placement;
//! * [`mfc`] — the per-SPE DMA engines: command validation, 16-entry
//!   queues, tag groups, DMA lists, outstanding-packet budgets;
//! * [`faults`] — deterministic fault injection: seeded [`FaultPlan`]s
//!   describing ring outages, bandwidth derates, bank NACKs, MFC slot
//!   loss and fused-off SPEs (the PS3 part, [`CellSystem::ps3`]);
//! * [`spe`] — Local Store and the SPU load/store pipeline;
//! * [`ppe`] — the SMT PPU with its L1/L2 hierarchy and store queues;
//! * [`core`] — the assembled machine, transfer plans and the paper's
//!   experiments;
//! * [`workloads`] — seeded application-shaped address-stream
//!   generators (GUPS random updates, stencil halos, pair lists) that
//!   `core` compiles into transfer plans;
//! * [`kernels`] — small-kernel (dot product, triad, GEMM) performance
//!   estimation on the simulated fabric — the paper's stated future work;
//! * [`runtime`] — a CellSs-style task runtime model: scheduling and
//!   makespan prediction over the simulated machine.
//!
//! The most useful entry points are re-exported at the top level.
//!
//! ```
//! use cellsim::{CellSystem, Placement, SyncPolicy, TransferPlan};
//!
//! let system = CellSystem::blade();
//! let plan = TransferPlan::builder()
//!     .exchange_with(0, 1, 1 << 20, 16 * 1024, SyncPolicy::AfterAll)
//!     .build()?;
//! let report = system.try_run(&Placement::identity(), &plan)?;
//! // A single SPE pair approaches the 33.6 GB/s bidirectional peak.
//! assert!(report.aggregate_gbps > 30.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use cellsim_core as core;
pub use cellsim_eib as eib;
pub use cellsim_faults as faults;
pub use cellsim_kernel as kernel;
pub use cellsim_kernels as kernels;
pub use cellsim_mem as mem;
pub use cellsim_mfc as mfc;
pub use cellsim_ppe as ppe;
pub use cellsim_runtime as runtime;
pub use cellsim_spe as spe;
pub use cellsim_workloads as workloads;

pub use cellsim_core::{
    baseline, diskcache, exec, experiments, failure, json, latency, metrics, report, tracestore,
    BankFaults, BankMetrics, CellConfig, CellSystem, DerateWindow, DmaPathClass, EibFaults,
    FabricEvent, FabricMetrics, FabricReport, FabricTrace, FaultPlan, FaultPlanError, FaultStats,
    LatencyHistogram, LatencyMetrics, MachineState, MetricsSummary, MfcFaults, PacketPhase,
    Placement, PlanError, RetryPolicy, RingOutage, RunFailure, SpeMetrics, SpeScript, SpeStall,
    StallDiagnosis, StallKind, SyncPolicy, TraceMeta, TraceSink, TraceTruncated, TransferPlan,
    TransferPlanBuilder, Window, REGION_STRIDE, SPE_COUNT,
};
