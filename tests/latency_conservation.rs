//! Invariants of the per-DMA latency digests: bucket counts account for
//! every retired command, the percentile ladder is monotone, and the
//! four-phase attribution partitions each path's end-to-end latency
//! exactly. Like `metrics_conservation`, these hold for *every* workload
//! the planner can express — a property, not an example.

use cellsim::latency::LATENCY_BUCKETS;
use cellsim::{
    CellSystem, DmaPathClass, FabricReport, FaultPlan, LatencyHistogram, Placement, RetryPolicy,
    SyncPolicy, TransferPlan,
};
use proptest::prelude::*;

const VOLUME: u64 = 64 << 10;

#[derive(Debug, Clone, Copy)]
enum Pattern {
    MemGet,
    MemPut,
    Cycle,
}

fn plan_for(pattern: Pattern, spes: usize, elem: u32, sync: SyncPolicy) -> TransferPlan {
    let mut b = TransferPlan::builder();
    for spe in 0..spes {
        b = match pattern {
            Pattern::MemGet => b.get_from_memory(spe, VOLUME, elem, sync),
            Pattern::MemPut => b.put_to_memory(spe, VOLUME, elem, sync),
            Pattern::Cycle => {
                // Self-exchange is invalid for a single SPE; fall back to
                // memory traffic there.
                if spes == 1 {
                    b.get_from_memory(spe, VOLUME, elem, sync)
                } else {
                    b.exchange_with(spe, (spe + 1) % spes, VOLUME, elem, sync)
                }
            }
        };
    }
    b.build().expect("valid plan")
}

fn assert_histogram_sane(h: &LatencyHistogram, what: &str) {
    assert_eq!(
        h.buckets.iter().sum::<u64>(),
        h.count,
        "{what}: bucket counts must sum to the observation count"
    );
    let p50 = h.percentile(50);
    let p95 = h.percentile(95);
    let p99 = h.percentile(99);
    assert!(
        p50 <= p95 && p95 <= p99 && p99 <= h.max,
        "{what}: percentile ladder must be monotone: \
         p50 {p50} / p95 {p95} / p99 {p99} / max {}",
        h.max
    );
    if h.count > 0 {
        assert!(h.max <= h.total, "{what}: max observation bounded by total");
        // The top observation lands in the bucket that covers it.
        let top = h
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .expect("non-empty histogram has a populated bucket");
        assert!(top < LATENCY_BUCKETS);
        assert!(
            top == 0 || (1u64 << (top - 1)) <= h.max.max(1),
            "{what}: max {} below its bucket {top}",
            h.max
        );
    } else {
        assert_eq!(h.max, 0);
        assert_eq!(h.total, 0);
    }
}

fn assert_latency_conservation(r: &FabricReport) {
    let lat = &r.latency;
    for path in DmaPathClass::ALL {
        let p = lat.path(path);
        assert_eq!(
            p.end_to_end.count, p.commands,
            "{path}: one end-to-end observation per retired command"
        );
        assert_histogram_sane(&p.end_to_end, path.name());
        // The four-phase attribution partitions the latency exactly.
        assert_eq!(
            p.phase_cycles.iter().sum::<u64>(),
            p.end_to_end.total,
            "{path}: queue+slot+ring+service must equal end-to-end"
        );
        // Every command has exactly one dominant phase.
        assert_eq!(
            p.dominant_counts.iter().sum::<u64>(),
            p.commands,
            "{path}: one dominant phase per command"
        );
    }
    assert_histogram_sane(&lat.element_service, "element-service");
    assert!(
        lat.element_service.count >= lat.total_commands(),
        "every command carries at least one element"
    );
}

/// A machine where both XDR banks NACK aggressively with a tight retry
/// budget, so retries *and* exhaustion both occur.
fn nack_storm(seed: u64) -> CellSystem {
    let mut plan = FaultPlan {
        seed,
        ..FaultPlan::default()
    };
    plan.local_bank.nack_ppm = 80_000;
    plan.remote_bank.nack_ppm = 80_000;
    plan.retry = RetryPolicy {
        max_retries: 2,
        backoff_base: 16,
        backoff_cap: 256,
    };
    CellSystem::blade().with_faults(plan)
}

/// The retry ledger balances between the fabric's fault counters and the
/// per-path latency digests: every NACK either retried or exhausted,
/// every exhaustion abandoned exactly one packet, and the per-path
/// lifecycle sums agree with the fabric totals.
fn assert_fault_conservation(r: &FabricReport) {
    let f = r.metrics.faults;
    assert_eq!(
        f.nacks,
        f.retries + f.retries_exhausted,
        "every NACK is either retried or exhausts the budget"
    );
    assert_eq!(
        f.retries_exhausted, f.abandoned_packets,
        "every exhaustion abandons exactly one packet"
    );
    let path_sum = |field: fn(&cellsim::latency::PathLatency) -> u64| {
        DmaPathClass::ALL
            .iter()
            .map(|&p| field(r.latency.path(p)))
            .sum::<u64>()
    };
    assert_eq!(
        path_sum(|p| p.nacks),
        f.nacks,
        "per-path NACK counts must sum to the fabric total"
    );
    assert_eq!(
        path_sum(|p| p.retries),
        f.retries,
        "per-path retry counts must sum to the fabric total"
    );
    let exhausted_commands = path_sum(|p| p.exhausted_commands);
    assert!(
        exhausted_commands <= f.abandoned_packets,
        "a command is marked exhausted once, however many packets it lost"
    );
    assert_eq!(
        exhausted_commands == 0,
        f.abandoned_packets == 0,
        "abandoned packets and exhausted commands appear together"
    );
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(12))]

    #[test]
    fn latency_digest_is_conserved_for_every_plan(
        pattern_idx in 0usize..3,
        spes in 1usize..=8,
        elem_idx in 0usize..3,
        sync_idx in 0usize..3,
        seed in 0u64..100,
    ) {
        let pattern = [Pattern::MemGet, Pattern::MemPut, Pattern::Cycle][pattern_idx];
        let elem = [128u32, 2048, 16384][elem_idx];
        let sync = [SyncPolicy::AfterAll, SyncPolicy::Every(1), SyncPolicy::Every(4)][sync_idx];
        let plan = plan_for(pattern, spes, elem, sync);
        let report = CellSystem::blade().try_run(&Placement::lottery(seed, 0), &plan).unwrap();
        assert_latency_conservation(&report);
        // The digest is part of the deterministic report.
        let again = CellSystem::blade().try_run(&Placement::lottery(seed, 0), &plan).unwrap();
        prop_assert_eq!(report.latency, again.latency);
    }

    #[test]
    fn latency_digest_is_conserved_under_nack_retries(
        pattern_idx in 0usize..3,
        spes in 1usize..=8,
        elem_idx in 0usize..3,
        sync_idx in 0usize..3,
        seed in 0u64..100,
    ) {
        let pattern = [Pattern::MemGet, Pattern::MemPut, Pattern::Cycle][pattern_idx];
        let elem = [128u32, 2048, 16384][elem_idx];
        let sync = [SyncPolicy::AfterAll, SyncPolicy::Every(1), SyncPolicy::Every(4)][sync_idx];
        let plan = plan_for(pattern, spes, elem, sync);
        let system = nack_storm(seed);
        let report = system.try_run(&Placement::lottery(seed, 0), &plan).unwrap();
        // Retry backoff elapses *inside* the existing phases, so the
        // exact four-phase partition must survive a NACK storm untouched.
        assert_latency_conservation(&report);
        assert_fault_conservation(&report);
        // The fault path is as deterministic as the healthy one.
        let again = system.try_run(&Placement::lottery(seed, 0), &plan).unwrap();
        prop_assert_eq!(report.latency, again.latency);
        prop_assert_eq!(report.metrics.faults, again.metrics.faults);
    }
}

#[test]
fn nack_storm_actually_exercises_retries_and_exhaustion() {
    // Guard against the property above passing vacuously: at 8% NACKs
    // with a 2-retry budget, a 4-SPE GET stream must see retries and at
    // least one exhausted command.
    let plan = plan_for(Pattern::MemGet, 4, 2048, SyncPolicy::AfterAll);
    let r = nack_storm(11)
        .try_run(&Placement::identity(), &plan)
        .unwrap();
    let f = r.metrics.faults;
    assert!(f.nacks > 0, "storm produced no NACKs");
    assert!(f.retries > 0, "storm produced no retries");
    assert!(f.retries_exhausted > 0, "storm never exhausted a budget");
    assert_fault_conservation(&r);
    let get = r.latency.path(DmaPathClass::MemGet);
    assert!(get.retry_backoff_cycles > 0, "retries must accrue backoff");
    assert!(get.exhausted_commands > 0);
}

#[test]
fn memory_get_commands_are_all_counted_on_the_get_path() {
    let spes = 4;
    let elem = 2048u32;
    let plan = plan_for(Pattern::MemGet, spes, elem, SyncPolicy::AfterAll);
    let r = CellSystem::blade()
        .try_run(&Placement::identity(), &plan)
        .unwrap();
    assert_latency_conservation(&r);
    let expected = spes as u64 * (VOLUME / u64::from(elem));
    let get = r.latency.path(DmaPathClass::MemGet);
    assert_eq!(get.commands, expected, "every planned GET retired once");
    assert_eq!(r.latency.total_commands(), expected, "no other path used");
    // Large streaming GETs against DRAM latency are dominated by the
    // wait for a free outstanding slot or by service, never by the
    // command queue (it is refilled immediately).
    assert!(get.end_to_end.mean() > 0);
}

#[test]
fn spe_exchange_traffic_lands_on_the_local_store_paths() {
    let plan = plan_for(Pattern::Cycle, 4, 4096, SyncPolicy::AfterAll);
    let r = CellSystem::blade()
        .try_run(&Placement::identity(), &plan)
        .unwrap();
    assert_latency_conservation(&r);
    let ls =
        r.latency.path(DmaPathClass::LsGet).commands + r.latency.path(DmaPathClass::LsPut).commands;
    assert!(ls > 0, "SPE↔SPE exchange must use the local-store paths");
    assert_eq!(
        r.latency.path(DmaPathClass::MemGet).commands,
        0,
        "no memory traffic in a pure SPE cycle"
    );
}
