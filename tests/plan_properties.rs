//! Property-based tests over the full stack: any valid plan the builder
//! accepts must run to completion, conserve bytes, and respect the
//! machine's physical ceilings.

use cellsim::{CellSystem, Placement, SyncPolicy, TransferPlan};
use proptest::prelude::*;

/// Valid DMA element sizes for streams (power-of-two multiples of 128
/// up to the 16 KB command limit).
fn elem_size() -> impl Strategy<Value = u32> {
    (0u32..=7).prop_map(|k| 128 << k)
}

fn sync_policy() -> impl Strategy<Value = SyncPolicy> {
    prop_oneof![
        Just(SyncPolicy::AfterAll),
        (1u32..=16).prop_map(SyncPolicy::Every),
    ]
}

#[derive(Debug, Clone)]
enum Stream {
    GetMem { spe: usize },
    PutMem { spe: usize },
    CopyMem { spe: usize },
    Exchange { spe: usize, partner: usize },
    ExchangeList { spe: usize, partner: usize },
}

fn stream() -> impl Strategy<Value = Stream> {
    let spe = 0usize..8;
    prop_oneof![
        spe.clone().prop_map(|spe| Stream::GetMem { spe }),
        spe.clone().prop_map(|spe| Stream::PutMem { spe }),
        spe.clone().prop_map(|spe| Stream::CopyMem { spe }),
        (0usize..8, 1usize..8).prop_map(|(spe, d)| Stream::Exchange {
            spe,
            partner: (spe + d) % 8,
        }),
        (0usize..8, 1usize..8).prop_map(|(spe, d)| Stream::ExchangeList {
            spe,
            partner: (spe + d) % 8,
        }),
    ]
}

fn placement() -> impl Strategy<Value = Placement> {
    any::<u64>().prop_map(|seed| {
        use rand::SeedableRng;
        Placement::random(&mut rand::rngs::StdRng::seed_from_u64(seed))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever mix of streams we throw at the fabric, it finishes,
    /// delivers exactly the planned bytes, and never exceeds the
    /// machine's hard ceiling (every port moving flat out).
    #[test]
    fn fabric_conserves_bytes_and_respects_physics(
        streams in proptest::collection::vec(stream(), 1..6),
        elem in elem_size(),
        sync in sync_policy(),
        placement in placement(),
    ) {
        let volume = u64::from(elem) * 8; // 8 commands per stream
        let mut b = TransferPlan::builder();
        for s in &streams {
            b = match *s {
                Stream::GetMem { spe } => b.get_from_memory(spe, volume, elem, sync),
                Stream::PutMem { spe } => b.put_to_memory(spe, volume, elem, sync),
                Stream::CopyMem { spe } => b.copy_memory(spe, volume, elem, sync),
                Stream::Exchange { spe, partner } =>
                    b.exchange_with(spe, partner, volume, elem, sync),
                Stream::ExchangeList { spe, partner } =>
                    b.exchange_with_list(spe, partner, volume, elem, sync),
            };
        }
        let plan = b.build().expect("generated plans are valid");
        let report = CellSystem::blade().try_run(&placement, &plan).unwrap();

        prop_assert_eq!(report.total_bytes, plan.total_bytes());
        prop_assert!(report.cycles > 0);
        // Physical ceiling: 12 ramps x 16.8 GB/s of send bandwidth.
        prop_assert!(report.aggregate_gbps <= 12.0 * 16.8);
        // Per-SPE ceiling: get+put concurrently can never beat 33.6.
        for &g in &report.per_spe_gbps {
            prop_assert!(g <= 33.7, "per-SPE {} exceeds the port pair", g);
        }
    }

    /// Delaying synchronization never hurts: AfterAll >= Every(k) up to
    /// simulation granularity.
    #[test]
    fn lazy_sync_dominates(k in 1u32..16, elem in elem_size()) {
        let sys = CellSystem::blade();
        let volume = u64::from(elem) * 32;
        let run = |sync| {
            let plan = TransferPlan::builder()
                .exchange_with(0, 1, volume, elem, sync)
                .build()
                .unwrap();
            sys.try_run(&Placement::identity(), &plan).unwrap().aggregate_gbps
        };
        let lazy = run(SyncPolicy::AfterAll);
        let eager = run(SyncPolicy::Every(k));
        prop_assert!(eager <= lazy * 1.01, "every {} gave {} > {}", k, eager, lazy);
    }

    /// DMA-list bandwidth is monotone non-degrading versus element size
    /// (the paper's "constant performance for any data size element").
    #[test]
    fn dma_list_flat_within_tolerance(k in 0u32..=7) {
        let elem = 128u32 << k;
        let sys = CellSystem::blade();
        let volume = 512u64 << 10;
        let plan = TransferPlan::builder()
            .exchange_with_list(0, 1, volume, elem, SyncPolicy::AfterAll)
            .build()
            .unwrap();
        let g = sys.try_run(&Placement::identity(), &plan).unwrap().aggregate_gbps;
        prop_assert!(g > 30.0, "list at {} B gave {}", elem, g);
    }
}
