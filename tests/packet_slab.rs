//! The fabric's packet table must not grow with the length of a run.
//!
//! Every bus packet gets a `PacketInfo` slot; retired and abandoned
//! slots go onto a free list and are reused by later packets. Before
//! the free list existed, the table grew by one entry per packet for
//! the whole run — a long sweep leaked memory linearly even though the
//! number of *live* packets is capped by the MFC outstanding budget
//! (8 packets per SPE by default). `peak_live_packets` measures the
//! high-water mark of occupied slots, so this test pins both the cap
//! and the counter.

use cellsim::{CellSystem, MetricsSummary, Placement, SyncPolicy, TransferPlan};

#[test]
fn live_packet_slots_stay_bounded_on_a_long_sweep() {
    // An 8-SPE exchange cycle at a small element size: the workload
    // that pushes the most packets through the fabric per byte moved.
    let mut b = TransferPlan::builder();
    for spe in 0..8 {
        b = b.exchange_with(spe, (spe + 1) % 8, 2 << 20, 512, SyncPolicy::AfterAll);
    }
    let plan = b.build().expect("valid plan");
    let report = CellSystem::blade()
        .try_run(&Placement::identity(), &plan)
        .expect("run completes");

    let mut summary = MetricsSummary::default();
    summary.accumulate_report(&report);

    // 8 SPEs x 8 outstanding packets each: the hard ceiling on
    // simultaneously live packets, whatever the run length.
    assert!(
        summary.peak_live_packets <= 64,
        "peak live packet slots {} exceed the 8 SPEs x 8 outstanding cap",
        summary.peak_live_packets
    );
    assert!(
        summary.peak_live_packets > 0,
        "the sweep moved data, so some packet must have been live"
    );
    // The run retires orders of magnitude more packets than are ever
    // live at once — the slab demonstrably reuses slots.
    assert!(
        summary.packets >= 100 * summary.peak_live_packets,
        "expected far more total packets ({}) than live slots ({})",
        summary.packets,
        summary.peak_live_packets
    );
}
