//! Qualitative landmarks for the application workloads (GUPS random
//! updates, stencil halo exchange, pair-list gather/scatter) and their
//! contracts: the random-access penalty the paper's §5 discussion
//! predicts, determinism across worker counts and the run cache, and
//! composition with seeded fault plans.

use cellsim::exec::SweepExecutor;
use cellsim::experiments::{
    figure8, figure_gups, figure_gups_with, figure_pairlist, figure_pairlist_with, figure_stencil,
    figure_stencil_with, ExperimentConfig,
};
use cellsim::{CellSystem, FaultPlan};

fn cfg() -> ExperimentConfig {
    ExperimentConfig::quick()
}

/// Best streaming GET bandwidth figure 8 reaches at 16 KB elements.
fn streaming_peak(sys: &CellSystem, cfg: &ExperimentConfig) -> f64 {
    let get = &figure8(sys, cfg).unwrap()[0];
    ["1 SPE", "2 SPEs", "4 SPEs", "8 SPEs"]
        .iter()
        .map(|s| get.value(s, "16 KB").unwrap())
        .fold(0.0, f64::max)
}

#[test]
fn gups_small_updates_pay_the_random_access_penalty() {
    let sys = CellSystem::blade();
    let c = cfg();
    let fig = figure_gups(&sys, &c).unwrap();
    let streaming = figure8(&sys, &c).unwrap()[0]
        .value("1 SPE", "16 KB")
        .unwrap();
    // An 8 B random update cycle is an order of magnitude below a
    // single SPE streaming 16 KB blocks — the headline GUPS landmark.
    let tiny = fig.value("1 SPE", "8 B").unwrap();
    assert!(
        tiny < streaming / 8.0,
        "8 B updates ({tiny}) must sit far below streaming ({streaming})"
    );
    for spes in ["1 SPE", "2 SPEs", "4 SPEs", "8 SPEs"] {
        // Fatter update grains recover bandwidth...
        let small = fig.value(spes, "8 B").unwrap();
        let big = fig.value(spes, "128 B").unwrap();
        assert!(big > 4.0 * small, "{spes}: 128 B {big} vs 8 B {small}");
    }
    // ...and independent tables scale with SPE count at fixed grain.
    let one = fig.value("1 SPE", "8 B").unwrap();
    let eight = fig.value("8 SPEs", "8 B").unwrap();
    assert!(
        eight > 6.0 * one,
        "random updates scale across SPEs: {one} -> {eight}"
    );
}

#[test]
fn stencil_approaches_streaming_as_halo_grows() {
    let sys = CellSystem::blade();
    let c = cfg();
    let fig = figure_stencil(&sys, &c).unwrap();
    for series in &fig.series {
        let thin = fig.value(&series.label, "1").unwrap();
        let wide = fig.value(&series.label, "8").unwrap();
        // Wider halos amortize the strided face lists; bandwidth must
        // not regress as the halo grows from 1 to 8 cells.
        assert!(
            wide >= thin,
            "{}: halo 8 ({wide}) fell below halo 1 ({thin})",
            series.label
        );
    }
    // The best shape runs close to pure streaming: the interior stream
    // dominates and the face lists cost little.
    let best = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.gbps))
        .fold(0.0, f64::max);
    let peak = streaming_peak(&sys, &c);
    assert!(
        best > 0.7 * peak,
        "best stencil {best} should approach streaming peak {peak}"
    );
}

#[test]
fn pairlist_lands_between_gups_and_streaming() {
    let sys = CellSystem::blade();
    let c = cfg();
    let pair = figure_pairlist(&sys, &c).unwrap();
    let gups = figure_gups(&sys, &c).unwrap();
    let peak = streaming_peak(&sys, &c);
    for spes in ["1 SPE", "2 SPEs", "4 SPEs", "8 SPEs"] {
        // Gathering 16 B records through DMA lists beats issuing 8 B
        // update cycles element by element...
        let listed = pair.value(spes, "16 B").unwrap();
        let updated = gups.value(spes, "8 B").unwrap();
        assert!(
            listed > updated,
            "{spes}: pairlist {listed} vs gups {updated}"
        );
    }
    // ...but indexed gather/scatter never beats pure streaming.
    for s in &pair.series {
        for p in &s.points {
            assert!(
                p.gbps <= peak * 1.02,
                "{}: pairlist {} exceeds streaming peak {peak}",
                s.label,
                p.gbps
            );
        }
    }
}

#[test]
fn workload_figures_identical_serial_parallel_and_cached() {
    let sys = CellSystem::blade();
    let c = cfg();
    let render = |exec: &SweepExecutor| {
        let g = figure_gups_with(exec, &sys, &c).unwrap();
        let s = figure_stencil_with(exec, &sys, &c).unwrap();
        let p = figure_pairlist_with(exec, &sys, &c).unwrap();
        format!("{g}{}{s}{}{p}{}", g.to_csv(), s.to_csv(), p.to_csv())
    };
    let serial = render(&SweepExecutor::new(1));
    let parallel_exec = SweepExecutor::new(4);
    let parallel = render(&parallel_exec);
    assert_eq!(
        serial, parallel,
        "--jobs 4 must render the workload figures byte-identically to --jobs 1"
    );
    let before = parallel_exec.stats();
    let cached = render(&parallel_exec);
    assert_eq!(serial, cached);
    assert_eq!(
        parallel_exec.stats().misses,
        before.misses,
        "a warm pass must answer all three sweeps from the run cache"
    );
}

#[test]
fn workload_figures_compose_with_fault_plans() {
    let c = cfg();
    let healthy = CellSystem::blade();
    let mut plan = FaultPlan {
        seed: 77,
        ..FaultPlan::default()
    };
    plan.local_bank.nack_ppm = 60_000;
    plan.remote_bank.nack_ppm = 30_000;
    plan.validate().expect("valid plan");
    let faulty = CellSystem::blade().with_faults(plan);

    let render = |exec: &SweepExecutor, sys: &CellSystem| {
        let g = figure_gups_with(exec, sys, &c).unwrap();
        let s = figure_stencil_with(exec, sys, &c).unwrap();
        let p = figure_pairlist_with(exec, sys, &c).unwrap();
        format!("{g}{s}{p}")
    };
    // Faulted sweeps stay job-count invariant...
    let serial = render(&SweepExecutor::new(1), &faulty);
    let parallel = render(&SweepExecutor::new(4), &faulty);
    assert_eq!(serial, parallel, "faulted workloads must be deterministic");
    // ...and bank NACKs cost bandwidth overall. Retry-shifted packet
    // timing can nudge an individual point a hair either way, so each
    // point gets a small tolerance while the aggregate must drop.
    let h = figure_gups(&healthy, &c).unwrap();
    let f = figure_gups_with(&SweepExecutor::new(4), &faulty, &c).unwrap();
    let (mut healthy_sum, mut faulty_sum, mut slowed) = (0.0, 0.0, 0);
    for (hs, fs) in h.series.iter().zip(&f.series) {
        for (hp, fp) in hs.points.iter().zip(&fs.points) {
            assert!(
                fp.gbps <= hp.gbps * 1.02,
                "{}: NACKs sped up a run? {} -> {}",
                hs.label,
                hp.gbps,
                fp.gbps
            );
            healthy_sum += hp.gbps;
            faulty_sum += fp.gbps;
            if fp.gbps < hp.gbps * 0.999 {
                slowed += 1;
            }
        }
    }
    assert!(slowed > 0, "a 6% NACK rate must visibly slow some points");
    assert!(
        faulty_sum < healthy_sum,
        "aggregate GUPS bandwidth must drop under NACKs: {healthy_sum} -> {faulty_sum}"
    );
}
