//! The persistent run cache: a sweep re-run from a warm cache directory
//! reproduces its reports bit-identically at any job count, an
//! interrupted sweep resumes from the entries already on disk, and
//! corrupted entries are recomputed — never trusted.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use cellsim::exec::{RunSpec, SweepExecutor, Workload};
use cellsim::{CellSystem, FabricReport, Placement, SyncPolicy, TransferPlan};

/// A fresh, empty scratch directory unique to this test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cellsim-persist-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Six distinct single-SPE GET specs (three elem sizes × two
/// placements).
fn specs() -> Vec<RunSpec> {
    let system = CellSystem::blade();
    let mut out = Vec::new();
    for elem in [1024u32, 4096, 16384] {
        let plan = Arc::new(
            TransferPlan::builder()
                .get_from_memory(0, 64 << 10, elem, SyncPolicy::AfterAll)
                .build()
                .unwrap(),
        );
        for k in 0..2u64 {
            out.push(RunSpec::new(
                &system,
                Workload {
                    pattern: "mem-get",
                    spes: 1,
                    volume: 64 << 10,
                    elem,
                    list: false,
                    sync: SyncPolicy::AfterAll,
                    params: 0,
                },
                Placement::lottery(0xCE11, k),
                Arc::clone(&plan),
            ));
        }
    }
    out
}

fn reports(exec: &SweepExecutor) -> Vec<Arc<FabricReport>> {
    exec.try_run(specs())
        .into_iter()
        .map(|r| r.expect("healthy specs complete"))
        .collect()
}

#[test]
fn warm_cache_reproduces_reports_bit_identically_across_jobs() {
    let dir = scratch("warm");
    let uncached = reports(&SweepExecutor::new(1));

    let cold = SweepExecutor::with_cache_dir(1, &dir).unwrap();
    let first = reports(&cold);
    assert_eq!(first, uncached, "disk tier must not change results");
    let stats = cold.disk_stats().unwrap();
    assert_eq!(stats.stored, 6, "every fresh run is persisted");
    assert_eq!(stats.loaded, 0);

    // A fresh executor — a new process, as far as the cache can tell —
    // at a different job count serves everything from disk.
    let warm = SweepExecutor::with_cache_dir(4, &dir).unwrap();
    let second = reports(&warm);
    assert_eq!(second, uncached, "reloaded reports must be bit-identical");
    assert_eq!(warm.stats().misses, 0, "no run should simulate again");
    let stats = warm.disk_stats().unwrap();
    assert_eq!(stats.loaded, 6);
    assert_eq!(stats.stored, 0);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_sweep_resumes_from_partial_entries() {
    let dir = scratch("resume");
    // "Interrupted" run: only the first third of the sweep finished
    // before the kill.
    let partial = SweepExecutor::with_cache_dir(1, &dir).unwrap();
    let prefix: Vec<RunSpec> = specs().into_iter().take(2).collect();
    for result in partial.try_run(prefix) {
        result.unwrap();
    }
    assert_eq!(partial.disk_stats().unwrap().stored, 2);

    // The re-run at a different job count: resumes, recomputes only the
    // missing points, and matches the uncached sweep bit-for-bit.
    let resumed = SweepExecutor::with_cache_dir(4, &dir).unwrap();
    let resumed_reports = reports(&resumed);
    let stats = resumed.disk_stats().unwrap();
    assert_eq!(stats.loaded, 2, "finished entries must be reused");
    assert_eq!(stats.stored, 4, "only the missing points simulate");
    assert_eq!(resumed_reports, reports(&SweepExecutor::new(1)));

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_entries_are_recomputed_never_trusted() {
    let dir = scratch("corrupt");
    let seed = SweepExecutor::with_cache_dir(1, &dir).unwrap();
    let truth = reports(&seed);

    // Vandalize two of the six entries: truncate one, flip a digit in
    // another (which breaks its checksum).
    let mut entries: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    assert_eq!(entries.len(), 6);
    let text = fs::read_to_string(&entries[0]).unwrap();
    fs::write(&entries[0], &text[..text.len() / 2]).unwrap();
    let text = fs::read_to_string(&entries[1]).unwrap();
    let tampered = if text.contains("\"cycles\":1") {
        text.replacen("\"cycles\":1", "\"cycles\":2", 1)
    } else {
        text.replacen("\"cycles\":", "\"cycles\":1", 1)
    };
    fs::write(&entries[1], tampered).unwrap();

    let healed = SweepExecutor::with_cache_dir(2, &dir).unwrap();
    let recomputed = reports(&healed);
    assert_eq!(recomputed, truth, "corruption must not leak into results");
    let stats = healed.disk_stats().unwrap();
    assert_eq!(stats.discarded, 2, "both vandalized entries are rejected");
    assert_eq!(stats.loaded, 4);
    assert_eq!(stats.stored, 2, "recomputed entries heal the cache");

    // After healing, the cache serves everything again.
    let verify = SweepExecutor::with_cache_dir(1, &dir).unwrap();
    assert_eq!(reports(&verify), truth);
    assert_eq!(verify.disk_stats().unwrap().loaded, 6);

    let _ = fs::remove_dir_all(&dir);
}
