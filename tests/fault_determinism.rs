//! The fault subsystem's determinism contract: a seeded [`FaultPlan`]
//! produces bit-identical reports for any worker count and through the
//! run cache, and an *empty* plan is byte-identical to no plan at all —
//! including sharing the healthy machine's cache entries.

use std::sync::Arc;

use cellsim::exec::{RunSpec, SweepExecutor, Workload};
use cellsim::experiments::{figure_degraded_with, ExperimentConfig};
use cellsim::{
    CellSystem, DerateWindow, FaultPlan, Placement, RingOutage, SyncPolicy, TransferPlan, Window,
};
use proptest::prelude::*;

/// A small GET+PUT sweep on `system`: 4 SPEs × two element sizes × three
/// placements (drawn avoiding `mask`).
fn copy_specs(system: &CellSystem, mask: u8) -> Vec<RunSpec> {
    let volume: u64 = 128 << 10;
    let mut specs = Vec::new();
    for elem in [1024u32, 16384] {
        let mut b = TransferPlan::builder();
        for spe in 0..4 {
            b = b.copy_memory(spe, volume, elem, SyncPolicy::AfterAll);
        }
        let plan = Arc::new(b.build().expect("valid plan"));
        for k in 0..3u64 {
            specs.push(RunSpec::new(
                system,
                Workload {
                    pattern: "mem-copy",
                    spes: 4,
                    volume,
                    elem,
                    list: false,
                    sync: SyncPolicy::AfterAll,
                    params: 0,
                },
                Placement::lottery_avoiding(9, k, mask),
                Arc::clone(&plan),
            ));
        }
    }
    specs
}

#[test]
fn empty_plan_is_byte_identical_to_no_plan() {
    let healthy = CellSystem::blade();
    let empty = CellSystem::blade().with_faults(FaultPlan::default());
    assert!(empty.faults().is_none(), "empty plans normalize away");
    assert_eq!(healthy.faults_fingerprint(), 0);
    assert_eq!(empty.faults_fingerprint(), 0);

    // Same reports — and the *same cache entries*: a warm healthy
    // executor answers the empty-plan sweep without simulating.
    let exec = SweepExecutor::new(2);
    let healthy_reports = exec.run(copy_specs(&healthy, 0));
    let before = exec.stats();
    let empty_reports = exec.run(copy_specs(&empty, 0));
    assert_eq!(healthy_reports, empty_reports);
    assert_eq!(
        exec.stats().misses,
        before.misses,
        "an empty plan must hit the healthy machine's cache entries"
    );
    for r in &healthy_reports {
        assert!(!r.metrics.faults.any(), "healthy runs carry zero faults");
    }
}

#[test]
fn degraded_figure_identical_serial_parallel_and_cached() {
    let sys = CellSystem::blade();
    let cfg = ExperimentConfig {
        volume_per_spe: 128 << 10,
        dma_elem_sizes: vec![1024, 16384],
        placements: 2,
        seed: 0xCE11,
    };
    let render = |exec: &SweepExecutor| {
        let (fig, table) = figure_degraded_with(exec, &sys, &cfg).unwrap();
        format!(
            "{fig}{}{table}{}{}",
            fig.to_csv(),
            table.to_csv(),
            table.to_json()
        )
    };
    let serial = render(&SweepExecutor::new(1));
    let parallel_exec = SweepExecutor::new(4);
    let parallel = render(&parallel_exec);
    assert_eq!(
        serial, parallel,
        "--jobs 4 must render the degraded ladder byte-identically to --jobs 1"
    );
    let before = parallel_exec.stats();
    let cached = render(&parallel_exec);
    assert_eq!(serial, cached);
    assert_eq!(
        parallel_exec.stats().misses,
        before.misses,
        "a warm pass must answer the whole ladder from the run cache"
    );
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(4))]

    #[test]
    fn any_fault_plan_is_job_count_invariant(
        seed in 0u64..1000,
        nack_ppm in 0u32..100_000,
        capacity in 25u32..100,
        slot_limit in 2u32..9,
        fuse_spe7 in 0u32..2,
        jobs in 2usize..6,
    ) {
        let mut plan = FaultPlan {
            seed,
            ..FaultPlan::default()
        };
        if fuse_spe7 == 1 {
            plan.fused_spes.push(7);
        }
        plan.eib.ring_outages.push(RingOutage {
            ring: 1,
            window: Window { start: 0, cycles: 20_000 },
        });
        plan.eib.derate.push(DerateWindow {
            window: Window { start: 20_000, cycles: 100_000 },
            capacity_percent: capacity,
        });
        plan.local_bank.nack_ppm = nack_ppm;
        plan.remote_bank.nack_ppm = nack_ppm / 2;
        plan.mfc.slot_limit = Some(slot_limit);
        plan.mfc.queue_stalls.push(Window { start: 5_000, cycles: 2_000 });
        plan.validate().expect("generated plan is valid");
        let mask = plan.fused_mask();
        let system = CellSystem::blade().with_faults(plan);

        let serial = SweepExecutor::new(1).run(copy_specs(&system, mask));
        let parallel = SweepExecutor::new(jobs).run(copy_specs(&system, mask));
        prop_assert_eq!(&serial, &parallel, "seed {} jobs {}", seed, jobs);

        // And through the cache: a warm second pass is identical without
        // a single fresh simulation.
        let exec = SweepExecutor::new(jobs);
        let first = exec.run(copy_specs(&system, mask));
        let misses = exec.stats().misses;
        let second = exec.run(copy_specs(&system, mask));
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(exec.stats().misses, misses);
        prop_assert_eq!(&serial, &first);

        // Retry accounting conserves whenever NACKs fired.
        for r in &serial {
            let f = r.metrics.faults;
            prop_assert_eq!(f.nacks, f.retries + f.retries_exhausted);
        }
    }
}
