//! Drift guard for the figure registry: `FIGURE_IDS` is the single
//! source of truth that `repro --figure`, `cellsim-client`, baseline
//! collection and the metrics digests all enumerate. These tests pin
//! the contract in both directions — every listed id expands and
//! renders, and no renderable figure exists that the list misses — so
//! adding a figure without registering it (or registering one that
//! cannot run) fails here instead of silently diverging downstream.

use cellsim::exec::SweepExecutor;
use cellsim::experiments::{
    all_figures_with, canonical_pattern, figure_degraded_with, figure_metrics_with, figure_points,
    figure_specs, workload_plan, ExperimentConfig, FIGURE_IDS,
};
use cellsim::CellSystem;

/// The ids whose sweeps exercise the DMA fabric (and therefore carry
/// sweep points, metrics digests, and baseline latency percentiles).
const SWEEPABLE: &[&str] = &[
    "8", "10", "12", "13", "15", "16", "gups", "stencil", "pairlist",
];

/// Maps a rendered figure/spread id (e.g. `"8a"`, `"§4.2.2"`,
/// `"gups"`) back to its `FIGURE_IDS` entry, if any.
fn registry_entry(rendered: &str) -> Option<&'static str> {
    FIGURE_IDS.iter().copied().find(|&entry| {
        let exact = rendered == entry;
        let section = rendered.strip_prefix('§') == Some(entry);
        let sub_lettered = rendered
            .strip_prefix(entry)
            .is_some_and(|rest| rest.len() == 1 && rest.chars().all(|c| c.is_ascii_lowercase()));
        exact || section || sub_lettered
    })
}

#[test]
fn figure_ids_are_unique_and_include_the_workload_extensions() {
    for (i, id) in FIGURE_IDS.iter().enumerate() {
        assert!(
            !FIGURE_IDS[..i].contains(id),
            "duplicate figure id '{id}' in FIGURE_IDS"
        );
    }
    for id in ["gups", "stencil", "pairlist", "degraded"] {
        assert!(FIGURE_IDS.contains(&id), "extension id '{id}' missing");
    }
}

#[test]
fn every_listed_id_expands_and_renders_consistently() {
    let cfg = ExperimentConfig::quick();
    let sys = CellSystem::blade();
    let exec = SweepExecutor::new(2);
    for id in FIGURE_IDS {
        let points = figure_points(&cfg, id).unwrap_or_else(|e| panic!("figure {id}: {e}"));
        let metrics = figure_metrics_with(&exec, &sys, &cfg, id)
            .unwrap_or_else(|e| panic!("figure {id}: {e}"));
        if SWEEPABLE.contains(id) {
            let points = points.unwrap_or_else(|| panic!("figure {id} must carry sweep points"));
            assert!(!points.is_empty(), "figure {id} expanded to zero points");
            let specs = figure_specs(&sys, &cfg, &points);
            assert_eq!(
                specs.len(),
                points.len() * cfg.placements,
                "figure {id} must expand placements-per-point"
            );
            assert!(
                metrics.is_some(),
                "sweepable figure {id} must produce a metrics digest"
            );
        } else {
            assert!(points.is_none(), "non-fabric figure {id} grew sweep points");
            assert!(
                metrics.is_none(),
                "non-fabric figure {id} grew a metrics digest"
            );
        }
    }
}

#[test]
fn every_sweep_workload_round_trips_through_the_wire_path() {
    // The serve daemon rebuilds plans from bare workloads
    // (`workload_plan`); if a point builder and the rebuild path ever
    // disagree, remote figures silently diverge from local ones.
    let cfg = ExperimentConfig::quick();
    for id in SWEEPABLE {
        for point in figure_points(&cfg, id).unwrap().unwrap() {
            let w = &point.workload;
            assert_eq!(
                canonical_pattern(w.pattern),
                Some(w.pattern),
                "figure {id}: pattern '{}' is not canonical",
                w.pattern
            );
            let rebuilt = workload_plan(w)
                .unwrap_or_else(|e| panic!("figure {id}: workload {w:?} does not rebuild: {e}"));
            assert_eq!(
                rebuilt.total_bytes(),
                point.plan.total_bytes(),
                "figure {id}: rebuilt plan moves different bytes for {w:?}"
            );
            assert_eq!(
                rebuilt.active_spes().count(),
                point.plan.active_spes().count(),
                "figure {id}: rebuilt plan drives different SPEs for {w:?}"
            );
        }
    }
}

#[test]
fn no_renderable_figure_escapes_the_registry() {
    let cfg = ExperimentConfig::quick();
    let sys = CellSystem::blade();
    let exec = SweepExecutor::new(2);
    let (figures, spreads) = all_figures_with(&exec, &sys, &cfg).unwrap();
    let (degraded_fig, _) = figure_degraded_with(&exec, &sys, &cfg).unwrap();
    let mut covered = std::collections::HashSet::new();
    let rendered_ids = figures
        .iter()
        .map(|f| f.id.clone())
        .chain(spreads.iter().map(|s| s.id.clone()))
        .chain(std::iter::once(degraded_fig.id));
    for id in rendered_ids {
        let entry = registry_entry(&id)
            .unwrap_or_else(|| panic!("rendered figure '{id}' is not in FIGURE_IDS"));
        covered.insert(entry);
    }
    for entry in FIGURE_IDS {
        assert!(
            covered.contains(entry),
            "registered figure '{entry}' is not reachable from all_figures_with/figure_degraded_with"
        );
    }
}
