//! Integration tests asserting the paper's qualitative landmarks across
//! the whole stack — the claims EXPERIMENTS.md records.

use cellsim::experiments::{
    figure10, figure12, figure13, figure15, figure16, figure3, figure4, figure6, figure8,
    section_4_2_2, ExperimentConfig,
};
use cellsim::{CellSystem, Placement, SyncPolicy, TransferPlan};

fn cfg() -> ExperimentConfig {
    ExperimentConfig {
        volume_per_spe: 256 << 10,
        dma_elem_sizes: vec![128, 1024, 16384],
        placements: 4,
        seed: 0xCE11,
    }
}

#[test]
fn ppe_l1_loads_reach_half_the_link_peak() {
    let fig = &figure3(&CellSystem::blade())[0];
    let v = fig.value("1 thread", "8 B").unwrap();
    assert!((v - 16.8).abs() < 0.5, "paper: close to 16.8, got {v}");
    // 16 B VMX loads buy nothing over 8 B.
    assert!((fig.value("1 thread", "16 B").unwrap() - v).abs() < 0.5);
}

#[test]
fn ppe_bandwidth_is_proportional_to_element_size() {
    for figs in [figure3(&CellSystem::blade()), figure4(&CellSystem::blade())] {
        let load = &figs[0];
        let v1 = load.value("1 thread", "1 B").unwrap();
        let v2 = load.value("1 thread", "2 B").unwrap();
        assert!((v2 / v1 - 2.0).abs() < 0.1, "{}: {v1} vs {v2}", load.id);
    }
}

#[test]
fn ppe_memory_load_equals_l2_load_and_stores_collapse() {
    let sys = CellSystem::blade();
    let l2 = figure4(&sys);
    let mem = figure6(&sys);
    let a = l2[0].value("2 threads", "16 B").unwrap();
    let b = mem[0].value("2 threads", "16 B").unwrap();
    assert!((a - b).abs() / a < 0.05, "L2 load {a} == mem load {b}");
    // Memory store and copy are "very low (under 6)".
    for fig in &mem[1..] {
        for s in &fig.series {
            for p in &s.points {
                assert!(p.gbps < 6.0, "{} {} {}", fig.id, s.label, p.gbps);
            }
        }
    }
}

#[test]
fn spu_local_store_peaks_at_33_6() {
    let fig = section_4_2_2(&CellSystem::blade());
    assert!((fig.value("load", "16 B").unwrap() - 33.6).abs() < 0.1);
    assert!((fig.value("store", "16 B").unwrap() - 33.6).abs() < 0.1);
}

#[test]
fn figure8_memory_scaling_shape() {
    let figs = figure8(&CellSystem::blade(), &cfg()).unwrap();
    let get = &figs[0];
    let one = get.value("1 SPE", "16 KB").unwrap();
    let two = get.value("2 SPEs", "16 KB").unwrap();
    let four = get.value("4 SPEs", "16 KB").unwrap();
    let eight = get.value("8 SPEs", "16 KB").unwrap();
    // 1 SPE ≈ 10 (60 % of the 16.8 bank peak); 2 use both banks;
    // 4 approach the 23.8 aggregate; 8 do not improve on 4.
    assert!((8.0..12.0).contains(&one), "one={one}");
    assert!(two > 16.8 * 0.85, "two={two} must beat most of one bank");
    assert!(four > two && four < 23.8, "four={four}");
    assert!(eight <= four * 1.05, "eight={eight} four={four}");
    // Sub-128B-free zone: small elements degrade badly.
    let small = get.value("4 SPEs", "128 B").unwrap();
    assert!(small < four, "small={small}");
}

#[test]
fn figure10_sync_delay_orders_monotonically() {
    let fig = figure10(&CellSystem::blade(), &cfg()).unwrap();
    let at = |label: &str| fig.value(label, "16 KB").unwrap();
    assert!(at("every 1") < at("every 4"));
    assert!(at("every 4") < at("every 16"));
    assert!(at("every 16") <= at("all") * 1.02);
}

#[test]
fn figure12_couples_and_lists() {
    let figs = figure12(&CellSystem::blade(), &cfg()).unwrap();
    let (elem, list) = (&figs[0], &figs[1]);
    // One couple hits near-peak for >=1 KB elements.
    assert!(elem.value("2 SPEs", "1 KB").unwrap() > 30.0);
    assert!(elem.value("2 SPEs", "16 KB").unwrap() > 32.0);
    // DMA-elem collapses below 1 KB; DMA-list is flat.
    assert!(elem.value("2 SPEs", "128 B").unwrap() < 8.0);
    let l128 = list.value("2 SPEs", "128 B").unwrap();
    let l16k = list.value("2 SPEs", "16 KB").unwrap();
    assert!(
        (l128 - l16k).abs() / l16k < 0.05,
        "list flat: {l128} vs {l16k}"
    );
    // Four couples land well below 4x a single couple (the EIB bites).
    let eight = elem.value("8 SPEs", "16 KB").unwrap();
    assert!(eight < 4.0 * 33.6 * 0.85, "eight={eight}");
    assert!(eight > 33.6, "but still beats one couple: {eight}");
}

#[test]
fn figure15_cycle_saturates_the_bus() {
    let sys = CellSystem::blade();
    let c = cfg();
    let cycle = figure15(&sys, &c).unwrap();
    let couples = figure12(&sys, &c).unwrap();
    // 2-SPE cycle reaches the pair peak.
    assert!(cycle[0].value("2 SPEs", "16 KB").unwrap() > 31.0);
    // 8-SPE cycle < 8-SPE couples: more active transfers, same demand.
    let y = cycle[0].value("8 SPEs", "16 KB").unwrap();
    let p = couples[0].value("8 SPEs", "16 KB").unwrap();
    assert!(y < p, "cycle {y} must trail couples {p}");
}

#[test]
fn figures13_and_16_show_placement_spread() {
    let sys = CellSystem::blade();
    let c = cfg();
    for spread in figure13(&sys, &c)
        .unwrap()
        .iter()
        .chain(figure16(&sys, &c).unwrap().iter())
    {
        for (x, s) in &spread.rows {
            assert!(s.min <= s.mean && s.mean <= s.max, "{} {x}", spread.id);
        }
    }
    // The 16 KB rows of the 8-SPE experiments vary by several GB/s.
    let f16 = figure16(&sys, &c).unwrap();
    let last = &f16[0].rows.last().unwrap().1;
    assert!(last.spread() > 2.0, "spread={}", last.spread());
}

#[test]
fn weak_scaling_conserves_bytes() {
    let sys = CellSystem::blade();
    for n in [1usize, 3, 8] {
        let mut b = TransferPlan::builder();
        for spe in 0..n {
            b = b.get_from_memory(spe, 512 << 10, 4096, SyncPolicy::AfterAll);
        }
        let plan = b.build().unwrap();
        let r = sys.try_run(&Placement::identity(), &plan).unwrap();
        assert_eq!(r.total_bytes, (n as u64) * (512 << 10));
        assert_eq!(
            r.per_spe_bytes.iter().filter(|&&b| b > 0).count(),
            n,
            "exactly the active SPEs moved data"
        );
    }
}
