//! Conservation laws of the always-on fabric metrics: the per-SPE cycle
//! partition and the occupancy histogram must sum to the run length
//! exactly, and every delivered byte must be accounted by exactly one
//! ring grant. These hold for *every* workload the planner can express —
//! a property, not an example.

use cellsim::{CellSystem, FabricReport, Placement, SyncPolicy, TransferPlan};
use proptest::prelude::*;

const VOLUME: u64 = 64 << 10;

#[derive(Debug, Clone, Copy)]
enum Pattern {
    MemGet,
    MemPut,
    Cycle,
}

fn plan_for(pattern: Pattern, spes: usize, elem: u32, sync: SyncPolicy) -> TransferPlan {
    let mut b = TransferPlan::builder();
    for spe in 0..spes {
        b = match pattern {
            Pattern::MemGet => b.get_from_memory(spe, VOLUME, elem, sync),
            Pattern::MemPut => b.put_to_memory(spe, VOLUME, elem, sync),
            Pattern::Cycle => {
                // Self-exchange is invalid for a single SPE; fall back to
                // memory traffic there.
                if spes == 1 {
                    b.get_from_memory(spe, VOLUME, elem, sync)
                } else {
                    b.exchange_with(spe, (spe + 1) % spes, VOLUME, elem, sync)
                }
            }
        };
    }
    b.build().expect("valid plan")
}

fn assert_conservation(r: &FabricReport) {
    let m = &r.metrics;
    assert_eq!(m.run_cycles, r.cycles);

    for (spe, sm) in m.per_spe.iter().enumerate() {
        // The six-way cycle partition is exact.
        assert_eq!(
            sm.accounted_cycles(),
            r.cycles,
            "SPE{spe}: busy {} + idle {} + stalls {} must equal run {}",
            sm.busy_cycles,
            sm.idle_cycles,
            sm.stall_cycles(),
            r.cycles
        );
        // So is the time-weighted occupancy histogram.
        assert_eq!(
            sm.occupancy_cycles.iter().sum::<u64>(),
            r.cycles,
            "SPE{spe}: occupancy histogram must cover the whole run"
        );
    }

    // Every delivered byte crossed exactly one ring, once.
    let ring_bytes: u64 = m.rings.iter().map(|ring| ring.bytes).sum();
    assert_eq!(
        ring_bytes, r.total_bytes,
        "granted bytes == delivered bytes"
    );
    let ring_grants: u64 = m.rings.iter().map(|ring| ring.grants).sum();
    assert_eq!(ring_grants, r.packets, "one grant per delivered packet");
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(12))]

    #[test]
    fn cycle_partition_and_ring_bytes_are_conserved(
        pattern_idx in 0usize..3,
        spes in 1usize..=8,
        elem_idx in 0usize..3,
        sync_idx in 0usize..3,
        seed in 0u64..100,
    ) {
        let pattern = [Pattern::MemGet, Pattern::MemPut, Pattern::Cycle][pattern_idx];
        let elem = [128u32, 2048, 16384][elem_idx];
        let sync = [SyncPolicy::AfterAll, SyncPolicy::Every(1), SyncPolicy::Every(4)][sync_idx];
        let plan = plan_for(pattern, spes, elem, sync);
        let report = CellSystem::blade().try_run(&Placement::lottery(seed, 0), &plan).unwrap();
        assert_conservation(&report);
    }
}

#[test]
fn memory_traffic_is_accounted_on_the_banks() {
    let plan = plan_for(Pattern::MemGet, 4, 16 * 1024, SyncPolicy::AfterAll);
    let r = CellSystem::blade()
        .try_run(&Placement::identity(), &plan)
        .unwrap();
    assert_conservation(&r);
    let bank_bytes: u64 = r.metrics.banks.iter().map(|b| b.stats.bytes).sum();
    assert_eq!(bank_bytes, r.total_bytes, "every GET read exactly one bank");
    assert!(r.metrics.banks.iter().all(|b| b.stats.busy_cycles > 0));
}

#[test]
fn saturated_single_spe_stalls_on_outstanding_slots() {
    // The Little's-law ceiling: one SPE streaming large elements from
    // memory is limited by its 8-slot outstanding budget against the
    // DRAM round-trip, so the dominant non-busy state must be
    // "budget full, everything on the wire/in DRAM".
    let plan = plan_for(Pattern::MemGet, 1, 16 * 1024, SyncPolicy::AfterAll);
    let r = CellSystem::blade()
        .try_run(&Placement::identity(), &plan)
        .unwrap();
    assert_conservation(&r);
    let sm = &r.metrics.per_spe[0];
    assert!(
        sm.stall_mfc_full_cycles > sm.busy_cycles,
        "latency-limited stream must stall more than it issues: {sm:?}"
    );
    assert!(
        sm.stall_mfc_full_cycles > 0
            && sm.stall_sync_cycles == 0
            && sm.stall_eib_cycles + sm.stall_mem_cycles < sm.stall_mfc_full_cycles,
        "the limiter is the outstanding budget, not contention: {sm:?}"
    );
    // The histogram agrees: the full-budget bucket dominates in-flight time.
    let occ = &sm.occupancy_cycles;
    let full = *occ.last().unwrap();
    let inflight: u64 = occ.iter().skip(1).sum();
    assert!(
        full * 2 > inflight,
        "≥ half of in-flight time at the full budget: {occ:?}"
    );
}

#[test]
fn eager_sync_shows_up_as_sync_stall() {
    let lazy = CellSystem::blade()
        .try_run(
            &Placement::identity(),
            &plan_for(Pattern::Cycle, 2, 4096, SyncPolicy::AfterAll),
        )
        .unwrap();
    let eager = CellSystem::blade()
        .try_run(
            &Placement::identity(),
            &plan_for(Pattern::Cycle, 2, 4096, SyncPolicy::Every(1)),
        )
        .unwrap();
    assert_conservation(&lazy);
    assert_conservation(&eager);
    let lazy_sync: u64 = lazy
        .metrics
        .per_spe
        .iter()
        .map(|s| s.stall_sync_cycles)
        .sum();
    let eager_sync: u64 = eager
        .metrics
        .per_spe
        .iter()
        .map(|s| s.stall_sync_cycles)
        .sum();
    assert_eq!(lazy_sync, 0, "AfterAll never waits mid-plan");
    assert!(
        eager_sync > 0,
        "Every(1) must drain the pipeline between commands"
    );
}
