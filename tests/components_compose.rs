//! The component crates are usable on their own: this test wires an MFC
//! directly to the EIB (no `CellSystem`, no memory) and checks the
//! steady-state LS→LS bandwidth against first principles.

use std::collections::HashMap;

use cellsim::eib::{Eib, EibConfig, Element, FlowClass, Topology, TransferRequest};
use cellsim::kernel::{Cycle, MachineClock};
use cellsim::mfc::{
    DmaCommand, DmaKind, EffectiveAddr, Issue, LsAddr, MfcConfig, MfcEngine, PacketToken, TagId,
};

/// Drives one MFC's packets over the bus, returning the cycle the last
/// payload lands and the total bytes moved.
fn drive(mfc: &mut MfcEngine, eib: &mut Eib, src: Element, dst: Element) -> (Cycle, u64) {
    let mut now = Cycle::ZERO;
    let mut bytes = 0u64;
    let mut awaiting_grant: HashMap<u64, (PacketToken, u32)> = HashMap::new();
    let mut in_flight: Vec<(Cycle, PacketToken, u32)> = Vec::new();
    let mut last = Cycle::ZERO;
    let mut seq = 0u64;
    loop {
        // Retire deliveries that are due.
        in_flight.retain(|&(due, token, b)| {
            if due <= now {
                mfc.packet_delivered(due, token);
                bytes += u64::from(b);
                last = last.max(due);
                false
            } else {
                true
            }
        });
        // Grant whatever the bus can take.
        for (tok, grant) in eib.arbitrate(now) {
            let (ptok, b) = awaiting_grant.remove(&tok).expect("granted once");
            in_flight.push((grant.delivered_at, ptok, b));
        }
        match mfc.try_issue(now) {
            Issue::Packet(p) => {
                eib.submit(
                    now,
                    seq,
                    TransferRequest {
                        src,
                        dst,
                        bytes: p.bytes,
                        class: FlowClass::MfcOut,
                    },
                );
                awaiting_grant.insert(seq, (p.token, p.bytes));
                seq += 1;
                now += 1;
            }
            Issue::Stalled { retry_at } => now = retry_at,
            Issue::Blocked | Issue::Idle => {
                if in_flight.is_empty() && awaiting_grant.is_empty() {
                    break;
                }
                let next_delivery = in_flight.iter().map(|&(d, _, _)| d).min();
                let next_release = eib.next_release_after(now);
                let next = [next_delivery, next_release]
                    .into_iter()
                    .flatten()
                    .min()
                    .unwrap_or(now + 1);
                now = now.max(next).max(now + 1);
            }
        }
    }
    (last, bytes)
}

#[test]
fn hand_wired_mfc_saturates_one_ramp_port() {
    let mut mfc = MfcEngine::new(MfcConfig::default()).expect("default MFC config is valid");
    let mut eib = Eib::new(Topology::cbe(), EibConfig::default());
    let tag = TagId::new(0).unwrap();
    // Fill the 16-entry queue with 16 KB puts into a neighbour's LS.
    for i in 0..16u32 {
        let cmd = DmaCommand::new(
            DmaKind::Put,
            LsAddr((i % 8) * 16 * 1024),
            EffectiveAddr::LocalStore {
                spe: 1,
                offset: (i % 8) * 16 * 1024,
            },
            16 * 1024,
            tag,
        )
        .unwrap();
        assert!(mfc.has_space());
        mfc.enqueue(Cycle::ZERO, cmd).unwrap();
    }
    assert!(!mfc.has_space());

    let (last, bytes) = drive(&mut mfc, &mut eib, Element::spe(0), Element::spe(1));
    assert_eq!(bytes, 16 * 16 * 1024);
    let clock = MachineClock::default();
    let gbps = clock.gbytes_per_sec(bytes, last.as_u64());
    // One direction, one port: the 16.8 GB/s ramp peak bounds it, and a
    // saturating schedule should come close.
    assert!(gbps <= 16.81, "gbps={gbps}");
    assert!(gbps > 14.0, "gbps={gbps}");
    assert!(mfc.is_idle());
    assert!(!mfc.tags().is_pending(tag));
    assert_eq!(eib.stats().grants, 16 * 128);
    assert_eq!(eib.stats().bytes, bytes);
}
