//! The trace store's determinism and conservation contract: a recorded
//! run directory is byte-identical whether the sweep ran serially, on
//! four workers, or against a warm run cache; every artifact's counts
//! reconcile exactly with its metrics digest; and corruption surfaces
//! as typed errors that the next recording pass heals.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use cellsim::exec::{RunSpec, SweepExecutor};
use cellsim::experiments::{figure_points, figure_specs, ExperimentConfig};
use cellsim::tracestore::{Manifest, TraceStore, TraceStoreError, TRACE_FILE};
use cellsim::CellSystem;

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cellsim-trace-test-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// A reduced figure-12 sweep: several distinct run keys, fast runs.
fn tiny_specs(system: &CellSystem) -> Vec<RunSpec> {
    let cfg = ExperimentConfig {
        volume_per_spe: 32 << 10,
        dma_elem_sizes: vec![1024],
        placements: 2,
        seed: 0xCE11,
    };
    let points = figure_points(&cfg, "12")
        .expect("valid config")
        .expect("fabric figure");
    figure_specs(system, &cfg, &points)
}

/// Every file under `dir`, keyed by path relative to it.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).expect("readable dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path
                    .strip_prefix(dir)
                    .expect("under root")
                    .to_string_lossy()
                    .into_owned();
                files.insert(rel, std::fs::read(&path).expect("readable file"));
            }
        }
    }
    files
}

/// Records `specs` into a fresh run directory on a `jobs`-wide executor.
fn record(jobs: usize, dir: &Path, specs: Vec<RunSpec>) -> SweepExecutor {
    let mut exec = SweepExecutor::new(jobs);
    exec.set_run_dir(dir).expect("run dir attaches");
    for result in exec.try_run(specs) {
        result.expect("healthy runs succeed");
    }
    exec
}

#[test]
fn run_dir_artifacts_identical_serial_parallel_and_cached() {
    let system = CellSystem::blade();
    let specs = tiny_specs(&system);

    let serial_dir = temp_dir("serial");
    let serial_exec = record(1, &serial_dir, specs.clone());
    let serial = snapshot(&serial_dir);
    assert!(!serial.is_empty(), "the sweep recorded artifacts");

    let parallel_dir = temp_dir("parallel");
    record(4, &parallel_dir, specs.clone());
    assert_eq!(
        serial,
        snapshot(&parallel_dir),
        "--jobs 4 must record byte-identical artifacts to --jobs 1"
    );

    // A warm run cache must not perturb recording: artifacts missing
    // from a fresh directory bypass the cache and re-simulate traced,
    // landing byte-identical to the cold recording.
    let warm_dir = temp_dir("warm");
    let mut warm_exec = SweepExecutor::new(2);
    for result in warm_exec.try_run(specs.clone()) {
        result.expect("warming run succeeds");
    }
    assert!(warm_exec.stats().misses > 0, "the warm pass simulated");
    warm_exec.set_run_dir(&warm_dir).expect("run dir attaches");
    for result in warm_exec.try_run(specs.clone()) {
        result.expect("recorded run succeeds");
    }
    assert_eq!(
        serial,
        snapshot(&warm_dir),
        "recording against a warm cache must stay byte-identical"
    );

    // A second pass over an already-complete directory reuses every
    // artifact — nothing is rewritten, the reuse counter says why.
    let before = serial_exec.run_dir().expect("attached").stats();
    for result in serial_exec.try_run(specs) {
        result.expect("reused run succeeds");
    }
    let after = serial_exec.run_dir().expect("attached").stats();
    assert_eq!(after.written, before.written, "no artifact rewritten");
    assert!(after.reused > before.reused, "complete artifacts reused");
    assert_eq!(serial, snapshot(&serial_dir), "bytes untouched by reuse");

    for dir in [serial_dir, parallel_dir, warm_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn store_counts_reconcile_exactly_with_the_metrics_digest() {
    let system = CellSystem::blade();
    let specs = tiny_specs(&system);
    let dir = temp_dir("reconcile");
    record(1, &dir, specs);

    let mut entries = 0;
    for entry in std::fs::read_dir(&dir).expect("run dir") {
        let entry = entry.expect("dir entry").path();
        if !entry.is_dir() {
            continue;
        }
        entries += 1;
        let manifest = Manifest::load(&entry).expect("manifest parses");
        let store = TraceStore::open(&entry.join(TRACE_FILE)).expect("store opens");
        let totals = store.totals();
        // Conservation by construction: the event log's counts ARE the
        // metrics digest's counts, with zero drift.
        assert_eq!(totals.delivered, manifest.packets, "{}", entry.display());
        assert_eq!(totals.delivered_bytes, manifest.total_bytes);
        assert_eq!(totals.issued, manifest.packets + manifest.abandoned);
        assert_eq!(totals.sim_events, manifest.events);
        assert_eq!(totals.events, manifest.trace_events);
        let (recounted, rebytes) = store.recount().expect("decodable blocks");
        assert_eq!(recounted.iter().sum::<u64>(), totals.events);
        assert_eq!(rebytes, totals.delivered_bytes);
    }
    assert!(entries > 0, "the sweep recorded artifacts");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn corrupt_artifacts_error_typed_and_are_re_recorded() {
    let system = CellSystem::blade();
    let specs = tiny_specs(&system);
    let dir = temp_dir("corrupt");
    record(1, &dir, specs.clone());
    let pristine = snapshot(&dir);

    // Truncate one store mid-payload: opening it is a typed corruption
    // error, never a panic.
    let victim = std::fs::read_dir(&dir)
        .expect("run dir")
        .filter_map(|e| Some(e.ok()?.path()))
        .find(|p| p.is_dir())
        .expect("at least one entry")
        .join(TRACE_FILE);
    let bytes = std::fs::read(&victim).expect("trace file");
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).expect("truncate");
    match TraceStore::open(&victim) {
        Err(TraceStoreError::Corrupt { .. }) => {}
        Err(other) => panic!("expected a corruption error, got {other}"),
        Ok(_) => panic!("a truncated store must not open"),
    }

    // The next recording pass notices the incomplete artifact (its size
    // no longer matches the manifest), re-simulates, and re-records the
    // directory back to its pristine bytes.
    record(1, &dir, specs);
    assert_eq!(pristine, snapshot(&dir), "self-healed to identical bytes");
    let _ = std::fs::remove_dir_all(dir);
}
