//! Reproducibility guarantees: identical inputs give bit-identical
//! results, and the placement lottery is seed-stable.

use cellsim::experiments::{figure12, ExperimentConfig};
use cellsim::{CellSystem, Placement, SyncPolicy, TransferPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn plan() -> TransferPlan {
    let mut b = TransferPlan::builder();
    for spe in 0..8 {
        b = b.exchange_with(spe, (spe + 1) % 8, 256 << 10, 4096, SyncPolicy::AfterAll);
    }
    b.build().unwrap()
}

#[test]
fn identical_runs_are_bit_identical() {
    let sys = CellSystem::blade();
    let p = Placement::from_mapping([3, 1, 4, 0, 5, 2, 7, 6]).unwrap();
    let plan = plan();
    let a = sys.try_run(&p, &plan).unwrap();
    let b = sys.try_run(&p, &plan).unwrap();
    assert_eq!(a, b);
}

#[test]
fn fresh_systems_agree() {
    let plan = plan();
    let p = Placement::identity();
    let a = CellSystem::blade().try_run(&p, &plan).unwrap();
    let b = CellSystem::blade().try_run(&p, &plan).unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.eib, b.eib);
}

#[test]
fn experiments_are_seed_stable() {
    let cfg = ExperimentConfig {
        volume_per_spe: 128 << 10,
        dma_elem_sizes: vec![4096],
        placements: 3,
        seed: 42,
    };
    let sys = CellSystem::blade();
    let a = figure12(&sys, &cfg).unwrap();
    let b = figure12(&sys, &cfg).unwrap();
    assert_eq!(a, b);
}

#[test]
fn different_seeds_draw_different_placements() {
    let mut r1 = StdRng::seed_from_u64(1);
    let mut r2 = StdRng::seed_from_u64(2);
    let draws1: Vec<Placement> = (0..5).map(|_| Placement::random(&mut r1)).collect();
    let draws2: Vec<Placement> = (0..5).map(|_| Placement::random(&mut r2)).collect();
    assert_ne!(draws1, draws2);
}

#[test]
fn placement_affects_dense_traffic_but_not_volume() {
    let sys = CellSystem::blade();
    let plan = plan();
    let mut rng = StdRng::seed_from_u64(9);
    let results: Vec<_> = (0..6)
        .map(|_| sys.try_run(&Placement::random(&mut rng), &plan).unwrap())
        .collect();
    assert!(results
        .windows(2)
        .all(|w| w[0].total_bytes == w[1].total_bytes));
    let min = results
        .iter()
        .map(|r| r.aggregate_gbps)
        .fold(f64::INFINITY, f64::min);
    let max = results.iter().map(|r| r.aggregate_gbps).fold(0.0, f64::max);
    assert!(max > min, "placements must differentiate dense traffic");
}
