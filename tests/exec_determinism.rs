//! The sweep executor's determinism contract: every figure is
//! byte-identical whether a sweep runs serially, on any number of
//! workers, or entirely from a warm run cache.

use cellsim::exec::SweepExecutor;
use cellsim::experiments::{
    all_figures_with, figure12_with, figure_metrics_with, ExperimentConfig, FIGURE_IDS,
};
use cellsim::report::MetricsTable;
use cellsim::CellSystem;
use proptest::prelude::*;

/// Renders every figure exactly as `repro` would print and export it.
fn rendered(
    figs: &(
        Vec<cellsim::report::Figure>,
        Vec<cellsim::report::SpreadFigure>,
    ),
) -> String {
    let mut out = String::new();
    for f in &figs.0 {
        out.push_str(&f.to_string());
        out.push_str(&f.to_csv());
    }
    for f in &figs.1 {
        out.push_str(&f.to_string());
        out.push_str(&f.to_csv());
    }
    out
}

/// Renders every figure's metrics digest exactly as `repro --verbose
/// --metrics` would print and export it.
fn rendered_metrics(exec: &SweepExecutor, sys: &CellSystem, cfg: &ExperimentConfig) -> String {
    let mut out = String::new();
    for id in FIGURE_IDS {
        if let Some(summary) = figure_metrics_with(exec, sys, cfg, id).unwrap() {
            let table = MetricsTable {
                id: (*id).to_string(),
                summary,
            };
            out.push_str(&table.to_string());
            out.push_str(&table.to_csv());
            out.push_str(&table.to_json());
        }
    }
    out
}

#[test]
fn all_figures_quick_identical_serial_parallel_and_cached() {
    let sys = CellSystem::blade();
    let cfg = ExperimentConfig::quick();

    let serial_exec = SweepExecutor::new(1);
    let serial = rendered(&all_figures_with(&serial_exec, &sys, &cfg).unwrap());

    let parallel_exec = SweepExecutor::new(4);
    let parallel = rendered(&all_figures_with(&parallel_exec, &sys, &cfg).unwrap());
    assert_eq!(
        serial, parallel,
        "--jobs 4 must render byte-identically to --jobs 1"
    );

    // Second pass on the warm executor: answered entirely from the run
    // cache, still byte-identical.
    let before = parallel_exec.stats();
    assert!(before.hits > 0, "figures 10/12/13/15/16 share sweep points");
    let cached = rendered(&all_figures_with(&parallel_exec, &sys, &cfg).unwrap());
    let after = parallel_exec.stats();
    assert_eq!(serial, cached, "cached pass must render byte-identically");
    assert_eq!(
        after.misses, before.misses,
        "warm pass must not simulate anything"
    );
}

#[test]
fn metrics_digests_identical_serial_parallel_and_cached() {
    let sys = CellSystem::blade();
    let cfg = ExperimentConfig::quick();

    let serial_exec = SweepExecutor::new(1);
    let serial = rendered_metrics(&serial_exec, &sys, &cfg);
    assert!(!serial.is_empty(), "fabric figures must produce digests");

    let parallel_exec = SweepExecutor::new(4);
    let parallel = rendered_metrics(&parallel_exec, &sys, &cfg);
    assert_eq!(
        serial, parallel,
        "metrics are counters in the cached report: byte-identical for any job count"
    );

    // Digests re-sweep the figures' own points, so after the figures
    // have run, a digest pass is all cache hits.
    rendered(&all_figures_with(&parallel_exec, &sys, &cfg).unwrap());
    let before = parallel_exec.stats();
    let cached = rendered_metrics(&parallel_exec, &sys, &cfg);
    let after = parallel_exec.stats();
    assert_eq!(serial, cached);
    assert_eq!(
        after.misses, before.misses,
        "a digest after its figure must be answered entirely from the cache"
    );
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(4))]

    #[test]
    fn figure12_identical_for_any_worker_count(seed in 0u64..1000, jobs in 2usize..8) {
        let sys = CellSystem::blade();
        let cfg = ExperimentConfig {
            volume_per_spe: 128 << 10,
            dma_elem_sizes: vec![1024, 16384],
            placements: 2,
            seed,
        };
        let serial = figure12_with(&SweepExecutor::new(1), &sys, &cfg).unwrap();
        let parallel = figure12_with(&SweepExecutor::new(jobs), &sys, &cfg).unwrap();
        prop_assert_eq!(&serial, &parallel, "seed {} jobs {}", seed, jobs);
        let serial_text: Vec<String> = serial.iter().map(|f| format!("{f}\n{}", f.to_csv())).collect();
        let parallel_text: Vec<String> = parallel.iter().map(|f| format!("{f}\n{}", f.to_csv())).collect();
        prop_assert_eq!(serial_text, parallel_text);
    }
}
