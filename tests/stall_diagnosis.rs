//! The typed failure pipeline: a pathological machine configuration
//! yields `Err(RunFailure::Stall(..))` with a usable diagnosis instead
//! of a process abort, and the deprecated panicking wrappers surface
//! the same diagnosis as their panic message.

use cellsim::{CellConfig, CellSystem, Placement, RunFailure, StallKind, SyncPolicy, TransferPlan};

/// A blade whose local bank answers after 100 G bus cycles: the first
/// memory access schedules past the 50 G-cycle safety horizon, so the
/// run can never drain. Cheap to simulate — the watchdog trips on the
/// first out-of-horizon event.
fn glacial_blade() -> CellSystem {
    let mut config = CellConfig::default();
    config.local_bank.access_latency = 100_000_000_000;
    config.remote_bank.access_latency = 100_000_000_000;
    CellSystem::new(config)
}

fn plan() -> TransferPlan {
    TransferPlan::builder()
        .get_from_memory(0, 64 << 10, 16 * 1024, SyncPolicy::AfterAll)
        .build()
        .unwrap()
}

#[test]
fn stalling_run_returns_a_diagnosis_not_a_panic() {
    let failure = glacial_blade()
        .try_run(&Placement::identity(), &plan())
        .unwrap_err();
    let RunFailure::Stall(diagnosis) = &failure;
    assert_eq!(diagnosis.kind, StallKind::HorizonExceeded);
    assert!(
        !diagnosis.per_spe.is_empty(),
        "diagnosis must snapshot per-SPE state"
    );
    assert!(
        diagnosis.per_spe.iter().any(cellsim::SpeStall::is_busy),
        "at least one SPE must be caught mid-transfer: {diagnosis}"
    );
    assert!(
        diagnosis.packets_in_flight() > 0
            || diagnosis.per_spe.iter().any(|s| s.pending_commands > 0),
        "a stall leaves work somewhere in the machine"
    );
}

#[test]
fn diagnosis_serializes_and_displays() {
    let failure = glacial_blade()
        .try_run(&Placement::identity(), &plan())
        .unwrap_err();
    let dump = failure.to_string();
    assert!(dump.contains("horizon-exceeded"), "dump:\n{dump}");
    assert!(dump.contains("SPE"), "dump:\n{dump}");
    let json = failure.diagnosis().to_json();
    let value = cellsim::json::parse(&json).expect("diagnosis JSON parses");
    assert_eq!(
        value.get("kind").and_then(cellsim::json::JsonValue::as_str),
        Some("horizon-exceeded")
    );
    assert!(value.get("per_spe").is_some());
}

#[test]
fn data_and_traced_variants_report_the_same_stall() {
    let system = glacial_blade();
    let plan = plan();
    let mut state = cellsim::MachineState::new();
    let direct = system.try_run(&Placement::identity(), &plan).unwrap_err();
    let with_data = system
        .try_run_with_data(&Placement::identity(), &plan, &mut state)
        .unwrap_err();
    let traced = system
        .try_run_traced(&Placement::identity(), &plan)
        .unwrap_err();
    assert_eq!(direct.diagnosis().kind, with_data.diagnosis().kind);
    assert_eq!(direct.diagnosis().kind, traced.diagnosis().kind);
}

#[test]
#[should_panic(expected = "horizon-exceeded")]
fn deprecated_wrapper_panics_with_the_diagnosis() {
    #[allow(deprecated)]
    let _ = glacial_blade().run(&Placement::identity(), &plan());
}
