//! Sweep-level failure isolation: one poisoned spec must not take down
//! the batch. The executor catches the panic (or stall), records a
//! [`RunError`] naming the failed run key, and still returns every
//! other point's report — in spec order, bit-identically at any job
//! count.

use std::sync::Arc;

use cellsim::exec::{RunError, RunSpec, SweepExecutor, Workload};
use cellsim::{CellConfig, CellSystem, Placement, StallKind, SyncPolicy, TransferPlan};

fn workload(elem: u32) -> Workload {
    Workload {
        pattern: "mem-get",
        spes: 1,
        volume: 64 << 10,
        elem,
        list: false,
        sync: SyncPolicy::AfterAll,
        params: 0,
    }
}

fn get_plan(elem: u32) -> Arc<TransferPlan> {
    Arc::new(
        TransferPlan::builder()
            .get_from_memory(0, 64 << 10, elem, SyncPolicy::AfterAll)
            .build()
            .unwrap(),
    )
}

/// A machine whose MFC construction panics inside the worker: queue
/// depth zero fails MFC validation, which the fabric asserts on.
fn panicking_blade() -> CellSystem {
    let mut config = CellConfig::default();
    config.mfc.queue_depth = 0;
    CellSystem::new(config)
}

/// A machine that stalls: the local bank answers past the safety
/// horizon.
fn stalling_blade() -> CellSystem {
    let mut config = CellConfig::default();
    config.local_bank.access_latency = 100_000_000_000;
    CellSystem::new(config)
}

/// Three healthy specs around one poisoned one, distinct elem sizes so
/// every spec is a distinct run key.
fn mixed_specs(poison: &CellSystem) -> Vec<RunSpec> {
    let healthy = CellSystem::blade();
    [1024u32, 2048, 4096, 8192]
        .into_iter()
        .enumerate()
        .map(|(i, elem)| {
            let system = if i == 2 { poison } else { &healthy };
            RunSpec::new(
                system,
                workload(elem),
                Placement::identity(),
                get_plan(elem),
            )
        })
        .collect()
}

#[test]
fn panicking_spec_fails_alone_and_in_order() {
    let exec = SweepExecutor::new(4);
    let poison = panicking_blade();
    let results = exec.try_run(mixed_specs(&poison));
    assert_eq!(results.len(), 4);
    for (i, result) in results.iter().enumerate() {
        if i == 2 {
            let error = result.as_ref().unwrap_err();
            assert!(
                matches!(error, RunError::Panicked { .. }),
                "poisoned spec must surface as a panic: {error}"
            );
            assert!(
                error.to_string().contains("elem=4096"),
                "the failure must name the run key: {error}"
            );
        } else {
            assert!(result.is_ok(), "healthy spec {i} must survive the batch");
        }
    }
    let failures = exec.take_failures();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].key().workload.elem, 4096);
    // Collecting drains: the same failure is never reported twice, and a
    // reused executor starts the next batch with a clean slate.
    assert!(exec.take_failures().is_empty());
}

#[test]
fn failures_are_per_batch_on_a_reused_executor() {
    // A daemon reuses one executor across requests; one request's
    // failures must not leak into the next request's collection.
    let exec = SweepExecutor::new(2);
    let poison = panicking_blade();
    let _ = exec.try_run(mixed_specs(&poison));
    let first = exec.take_failures();
    assert_eq!(first.len(), 1, "first batch reports its own failure");
    // A healthy second batch reports nothing — the first batch's
    // failure was already drained and does not accumulate.
    let healthy = CellSystem::blade();
    let spec = RunSpec::new(
        &healthy,
        workload(512),
        Placement::identity(),
        get_plan(512),
    );
    let results = exec.try_run(vec![spec]);
    assert!(results[0].is_ok());
    assert!(exec.take_failures().is_empty());
    // A second poisoned batch reports exactly its own failure again.
    let _ = exec.try_run(mixed_specs(&poison));
    assert_eq!(exec.take_failures().len(), 1);
}

#[test]
fn stalling_spec_records_a_diagnosis() {
    let exec = SweepExecutor::new(2);
    let poison = stalling_blade();
    let results = exec.try_run(mixed_specs(&poison));
    let error = results[2].as_ref().unwrap_err();
    match error {
        RunError::Stall { diagnosis, .. } => {
            assert_eq!(diagnosis.kind, StallKind::HorizonExceeded);
            assert!(!diagnosis.per_spe.is_empty());
        }
        other => panic!("expected a stall, got: {other}"),
    }
}

#[test]
fn serial_and_parallel_agree_around_a_failure() {
    let poison = panicking_blade();
    let serial = SweepExecutor::new(1).try_run(mixed_specs(&poison));
    let parallel = SweepExecutor::new(4).try_run(mixed_specs(&poison));
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        match (s, p) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "reports must be bit-identical"),
            (Err(a), Err(b)) => assert_eq!(a.key(), b.key()),
            _ => panic!("serial and parallel disagree on which spec failed"),
        }
    }
}

#[test]
fn panicking_run_via_run_still_panics_but_try_run_does_not() {
    let exec = SweepExecutor::new(1);
    let poison = panicking_blade();
    // try_run on the same executor: no panic, failure recorded.
    let results = exec.try_run(mixed_specs(&poison));
    assert!(results[2].is_err());
    // The executor keeps serving healthy batches afterwards.
    let healthy = CellSystem::blade();
    let spec = RunSpec::new(
        &healthy,
        workload(1024),
        Placement::identity(),
        get_plan(1024),
    );
    let again = exec.try_run(vec![spec]);
    assert!(again[0].is_ok());
}
