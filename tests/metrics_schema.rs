//! Schema stability of the metrics-digest artifacts: the JSON parses
//! back with a fixed key set, the CSV has a fixed metric-name column
//! regardless of what the workload exercised (zeros are emitted, not
//! elided), and RFC-4180 quoting round-trips awkward figure ids. Tools
//! built on `--metrics` output may rely on these columns existing.

use cellsim::json::{self, JsonValue};
use cellsim::report::MetricsTable;
use cellsim::{CellSystem, MetricsSummary, Placement, SyncPolicy, TransferPlan};

fn summary_of(
    build: impl FnOnce(cellsim::TransferPlanBuilder) -> cellsim::TransferPlanBuilder,
) -> MetricsSummary {
    let plan = build(TransferPlan::builder()).build().expect("valid plan");
    let report = CellSystem::blade()
        .try_run(&Placement::identity(), &plan)
        .unwrap();
    let mut summary = MetricsSummary::default();
    summary.accumulate_report(&report);
    summary
}

fn populated_summary() -> MetricsSummary {
    summary_of(|b| {
        b.get_from_memory(0, 64 << 10, 4096, SyncPolicy::AfterAll)
            .exchange_with(1, 2, 64 << 10, 4096, SyncPolicy::AfterAll)
    })
}

/// Minimal RFC-4180 reader: quoted fields may contain commas, doubled
/// quotes and newlines.
fn parse_csv(text: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut row = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                field.push(c);
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => row.push(std::mem::take(&mut field)),
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                '\r' => {}
                _ => field.push(c),
            }
        }
    }
    if !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    rows
}

fn csv_metric_names(table: &MetricsTable) -> Vec<String> {
    let rows = parse_csv(&table.to_csv());
    assert_eq!(rows[0], vec!["metric", "value"], "fixed header");
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.len(), 2, "row {i} must have exactly two fields");
    }
    rows[1..].iter().map(|r| r[0].clone()).collect()
}

#[test]
fn csv_schema_does_not_depend_on_the_workload() {
    // Memory-only traffic exercises the mem paths and the banks;
    // SPE↔SPE exchange exercises the local-store paths and neither
    // bank. The emitted column set must be identical anyway: idle
    // paths and counters appear as zeros, not holes.
    let mem_only = MetricsTable {
        id: "8".into(),
        summary: summary_of(|b| b.get_from_memory(0, 64 << 10, 4096, SyncPolicy::AfterAll)),
    };
    let exchange_only = MetricsTable {
        id: "8".into(),
        summary: summary_of(|b| b.exchange_with(1, 2, 64 << 10, 4096, SyncPolicy::AfterAll)),
    };
    let a = csv_metric_names(&mem_only);
    let b = csv_metric_names(&exchange_only);
    assert_eq!(a, b, "metric rows must not depend on the workload");
    // Spot-check the latency columns the issue promises downstream tools.
    for needle in [
        "latency_mem_get_p95",
        "latency_ls_put_dominant_ring_wait",
        "latency_mem_put_phase_service",
        "latency_element_service_count",
        "fault_nacks",
        "fault_retries_exhausted",
        "fault_degraded_cycles",
        "latency_mem_get_retries",
        "latency_ls_get_retry_backoff_cycles",
        "latency_mem_put_exhausted_commands",
    ] {
        assert!(
            a.iter().any(|m| m == needle),
            "missing expected column {needle}; have {a:?}"
        );
    }
    // And the column set is duplicate-free.
    let mut sorted = a.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), a.len(), "no duplicated metric names");
}

#[test]
fn csv_quoting_round_trips_awkward_ids() {
    let id = "8,\"worst\" case\nline two";
    let table = MetricsTable {
        id: id.into(),
        summary: MetricsSummary::default(),
    };
    let rows = parse_csv(&table.to_csv());
    let figure_row = rows
        .iter()
        .find(|r| r[0] == "figure")
        .expect("figure row present");
    assert_eq!(figure_row[1], id, "RFC-4180 round trip");
}

#[test]
fn json_parses_back_with_the_fixed_key_set() {
    let table = MetricsTable {
        id: "13".into(),
        summary: populated_summary(),
    };
    let doc = json::parse(&table.to_json()).expect("emitted JSON parses");
    let keys: Vec<&str> = doc
        .as_object()
        .expect("top level is an object")
        .keys()
        .map(String::as_str)
        .collect();
    let mut expected = vec![
        "figure",
        "runs",
        "run_cycles",
        "events",
        "packets",
        "suppressed_pumps",
        "peak_live_packets",
        "spe",
        "occupancy_mean_inflight",
        "occupancy_saturated_share",
        "dominant_stall",
        "runs_limited_by",
        "runs_unstalled",
        "rings",
        "banks",
        "faults",
        "latency",
    ];
    expected.sort_unstable(); // JsonValue objects iterate in key order
    assert_eq!(keys, expected);
    assert_eq!(doc.get("figure").and_then(JsonValue::as_str), Some("13"));
    assert_eq!(doc.get("runs").and_then(JsonValue::as_u64), Some(1));

    let paths = doc
        .get("latency")
        .and_then(|l| l.get("paths"))
        .and_then(JsonValue::as_array)
        .expect("latency.paths is an array");
    let names: Vec<&str> = paths
        .iter()
        .map(|p| p.get("path").and_then(JsonValue::as_str).unwrap())
        .collect();
    assert_eq!(
        names,
        ["mem-get", "mem-put", "ls-get", "ls-put"],
        "all four paths present even when idle"
    );
    let faults = doc.get("faults").expect("faults object present");
    for key in [
        "nacks",
        "retries",
        "retries_exhausted",
        "abandoned_packets",
        "degraded_cycles",
    ] {
        assert_eq!(
            faults.get(key).and_then(JsonValue::as_u64),
            Some(0),
            "healthy run must emit zero fault counter '{key}'"
        );
    }

    for p in paths {
        for key in [
            "commands",
            "nacks",
            "retries",
            "retry_backoff_cycles",
            "exhausted_commands",
            "end_to_end",
            "phase_cycles",
            "dominant_commands",
        ] {
            assert!(p.get(key).is_some(), "path missing '{key}'");
        }
        let hist = p.get("end_to_end").unwrap();
        for key in ["count", "total", "max", "p50", "p95", "p99", "buckets"] {
            assert!(hist.get(key).is_some(), "histogram missing '{key}'");
        }
    }

    // The digest rows and the JSON agree on the headline number.
    let get = &paths[0];
    let commands = get.get("commands").and_then(JsonValue::as_u64).unwrap();
    assert_eq!(commands, 16, "64 KiB / 4 KiB = 16 GET commands");
}

#[test]
fn csv_and_json_are_byte_deterministic() {
    let a = MetricsTable {
        id: "8".into(),
        summary: populated_summary(),
    };
    let b = MetricsTable {
        id: "8".into(),
        summary: populated_summary(),
    };
    assert_eq!(a.to_csv(), b.to_csv());
    assert_eq!(a.to_json(), b.to_json());
}
