//! The persistence tiers under injected disk chaos: with seeded fault
//! plans tearing writes, failing renames and hiccuping reads inside the
//! cache and run directories, every run still succeeds with
//! bit-identical reports — the disk tiers are accelerators, never
//! correctness dependencies — and once the chaos lifts, one honest pass
//! heals the scarred directories back to pristine bytes.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use cellsim::core::iofault::{self, IoFaultPlan};
use cellsim::exec::{RunSpec, SweepExecutor, Workload};
use cellsim::{CellSystem, FabricReport, Placement, SyncPolicy, TransferPlan};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cellsim-iofault-test-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Six distinct single-SPE GET specs (three elem sizes × two
/// placements) — enough keys that a per-mille fault plan reliably hits
/// some of them.
fn specs() -> Vec<RunSpec> {
    let system = CellSystem::blade();
    let mut out = Vec::new();
    for elem in [1024u32, 4096, 16384] {
        let plan = Arc::new(
            TransferPlan::builder()
                .get_from_memory(0, 64 << 10, elem, SyncPolicy::AfterAll)
                .build()
                .unwrap(),
        );
        for k in 0..2u64 {
            out.push(RunSpec::new(
                &system,
                Workload {
                    pattern: "mem-get",
                    spes: 1,
                    volume: 64 << 10,
                    elem,
                    list: false,
                    sync: SyncPolicy::AfterAll,
                    params: 0,
                },
                Placement::lottery(0xCE11, k),
                Arc::clone(&plan),
            ));
        }
    }
    out
}

fn reports(exec: &SweepExecutor) -> Vec<Arc<FabricReport>> {
    exec.try_run(specs())
        .into_iter()
        .map(|r| r.expect("runs succeed regardless of disk weather"))
        .collect()
}

/// Every file under `dir`, keyed by path relative to it.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d).expect("readable dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path
                    .strip_prefix(dir)
                    .expect("under root")
                    .to_string_lossy()
                    .into_owned();
                files.insert(rel, fs::read(&path).expect("readable file"));
            }
        }
    }
    files
}

/// Disk-cache tier under fire: stores fail or silently tear, loads
/// hiccup — and three consecutive passes (two under chaos, each with a
/// fresh executor so loads actually happen) all reproduce the uncached
/// reports bit-for-bit. Afterwards one honest pass heals the directory
/// to fully loadable.
#[test]
fn cache_dir_chaos_never_leaks_into_reports() {
    let dir = temp_dir("cache");
    let truth = reports(&SweepExecutor::new(1));

    {
        let _guard = IoFaultPlan {
            seed: 0xD15C_CACE,
            write_error_per_mille: 350,
            torn_write_per_mille: 300,
            read_error_per_mille: 250,
            rename_error_per_mille: 200,
            scope: Some(dir.clone()),
        }
        .install();

        // Two passes, each a fresh executor (a new process as far as the
        // cache can tell), so the second must load — or fail to load —
        // whatever the first one's chaotic stores left behind.
        for pass in 0..2 {
            let exec = SweepExecutor::with_cache_dir(1, &dir).expect("cache dir opens");
            assert_eq!(reports(&exec), truth, "pass {pass} must be bit-exact");
        }
        let fired = iofault::stats();
        assert!(
            fired.write_errors + fired.torn_writes + fired.read_errors + fired.rename_errors > 0,
            "the plan must actually have fired: {fired:?}"
        );
    }

    // Chaos lifted: one honest pass discards every torn survivor and
    // refills the gaps...
    let healing = SweepExecutor::with_cache_dir(1, &dir).expect("cache dir opens");
    assert_eq!(reports(&healing), truth);
    let stats = healing.disk_stats().expect("disk tier attached");
    assert_eq!(
        stats.loaded + stats.stored,
        6,
        "every key either verifies on load or is recomputed and stored: {stats:?}"
    );

    // ...after which a second honest executor serves everything from
    // disk with nothing left to discard.
    let healed = SweepExecutor::with_cache_dir(1, &dir).expect("cache dir opens");
    assert_eq!(reports(&healed), truth);
    let stats = healed.disk_stats().expect("disk tier attached");
    assert_eq!(stats.loaded, 6, "healed cache is fully warm: {stats:?}");
    assert_eq!(stats.discarded, 0, "nothing torn survives healing");

    let _ = fs::remove_dir_all(&dir);
}

/// Recording tier under fire: artifact commits fail or tear while the
/// runs themselves keep succeeding (failures latch into
/// `RunDirStats::errors`, never into results), and an honest re-record
/// over the scarred directory restores it byte-identical to a directory
/// that never saw chaos.
#[test]
fn run_dir_chaos_latches_errors_and_rerecording_heals() {
    let pristine_dir = temp_dir("record-truth");
    let chaos_dir = temp_dir("record-chaos");

    // Ground truth: an honest recording of the same sweep.
    let mut honest = SweepExecutor::new(1);
    honest.set_run_dir(&pristine_dir).expect("run dir attaches");
    let truth_reports = reports(&honest);
    let truth_bytes = snapshot(&pristine_dir);
    assert!(!truth_bytes.is_empty(), "the sweep recorded artifacts");

    {
        let _guard = IoFaultPlan {
            seed: 0xD15C_7ACE,
            write_error_per_mille: 350,
            torn_write_per_mille: 300,
            read_error_per_mille: 250,
            rename_error_per_mille: 200,
            scope: Some(chaos_dir.clone()),
        }
        .install();

        let mut exec = SweepExecutor::new(1);
        exec.set_run_dir(&chaos_dir).expect("run dir attaches");
        assert_eq!(
            reports(&exec),
            truth_reports,
            "artifact chaos must not leak into run results"
        );
        let fired = iofault::stats();
        assert!(
            fired.write_errors + fired.torn_writes + fired.read_errors + fired.rename_errors > 0,
            "the plan must actually have fired: {fired:?}"
        );
        // Hard failures (failed writes/renames) are latched, not
        // surfaced; torn writes report success and are only caught by
        // the next pass's completeness check.
        let rd = exec.run_dir().expect("attached").stats();
        if fired.write_errors + fired.rename_errors > 0 {
            assert!(rd.errors > 0, "commit failures must latch: {rd:?}");
        }
        assert_eq!(
            rd.written + rd.errors,
            6,
            "every run either committed its artifact or latched an error: {rd:?}"
        );
    }

    // Honest re-record: incomplete or torn artifacts are noticed (size
    // or manifest mismatch), re-simulated, and the directory converges
    // to the pristine recording's exact bytes.
    let mut healer = SweepExecutor::new(1);
    healer.set_run_dir(&chaos_dir).expect("run dir attaches");
    assert_eq!(reports(&healer), truth_reports);
    let rd = healer.run_dir().expect("attached").stats();
    assert_eq!(rd.errors, 0, "honest I/O latches nothing: {rd:?}");
    assert_eq!(
        rd.written + rd.reused,
        6,
        "every artifact is now complete: {rd:?}"
    );
    assert_eq!(
        snapshot(&chaos_dir),
        truth_bytes,
        "healed run dir is byte-identical to one that never saw chaos"
    );

    for dir in [pristine_dir, chaos_dir] {
        let _ = fs::remove_dir_all(dir);
    }
}
