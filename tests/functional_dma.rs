//! Functional-correctness tests: the fabric moves *real bytes* exactly
//! where the DMA commands say, with timing identical to the metadata-only
//! run.

use cellsim::mem::RegionId;
use cellsim::{CellSystem, MachineState, Placement, SyncPolicy, TransferPlan};

#[test]
fn memory_round_trip_preserves_data() {
    let sys = CellSystem::blade();
    let mut state = MachineState::new();
    let payload: Vec<u8> = (0..64 * 1024u32).map(|i| (i * 31 % 251) as u8).collect();
    state.write_region(TransferPlan::get_region(0), 0, &payload);

    // GET the whole buffer into SPE0's LS window, then PUT it back out to
    // the copy-destination region (what copy_memory plans do).
    let plan = TransferPlan::builder()
        .copy_memory(0, payload.len() as u64, 16 * 1024, SyncPolicy::AfterAll)
        .build()
        .unwrap();
    sys.try_run_with_data(&Placement::identity(), &plan, &mut state)
        .unwrap();

    let out = state.read_region(TransferPlan::copy_dst_region(0), 0, payload.len());
    assert_eq!(out, payload, "copied data must arrive intact");
}

#[test]
fn ls_to_ls_exchange_moves_partner_data() {
    let sys = CellSystem::blade();
    let mut state = MachineState::new();
    // Fill SPE1's outgoing LS window with a pattern.
    let pattern: Vec<u8> = (0..32 * 1024u32).map(|i| (i % 127) as u8).collect();
    state.local_store_mut(1).write(0, &pattern);

    // SPE0 GETs from SPE1's LS (outgoing window) into its own LS.
    let plan = TransferPlan::builder()
        .get_from_spe(0, 1, pattern.len() as u64, 16 * 1024, SyncPolicy::AfterAll)
        .build()
        .unwrap();
    sys.try_run_with_data(&Placement::identity(), &plan, &mut state)
        .unwrap();

    assert_eq!(
        state.local_store(0).read(0, pattern.len()),
        &pattern[..],
        "SPE0 must see SPE1's bytes"
    );
}

#[test]
fn data_movement_does_not_change_timing() {
    let sys = CellSystem::blade();
    let plan = TransferPlan::builder()
        .exchange_with(0, 1, 256 << 10, 4096, SyncPolicy::AfterAll)
        .build()
        .unwrap();
    let p = Placement::identity();
    let timing_only = sys.try_run(&p, &plan).unwrap();
    let mut state = MachineState::new();
    let with_data = sys.try_run_with_data(&p, &plan, &mut state).unwrap();
    assert_eq!(timing_only.cycles, with_data.cycles);
    assert_eq!(timing_only.total_bytes, with_data.total_bytes);
}

#[test]
fn unwritten_memory_gets_as_zeroes() {
    let sys = CellSystem::blade();
    let mut state = MachineState::new();
    state.local_store_mut(0).fill(0xFF);
    let plan = TransferPlan::builder()
        .get_from_memory(0, 16 * 1024, 16 * 1024, SyncPolicy::AfterAll)
        .build()
        .unwrap();
    sys.try_run_with_data(&Placement::identity(), &plan, &mut state)
        .unwrap();
    assert!(state
        .local_store(0)
        .read(0, 16 * 1024)
        .iter()
        .all(|&b| b == 0));
}

#[test]
fn regions_in_state_match_plan_regions() {
    // Sanity: the region constants used by plans address disjoint state.
    let mut state = MachineState::new();
    state.write_region(TransferPlan::get_region(3), 0, b"three");
    assert_eq!(
        state.read_region(TransferPlan::get_region(3), 0, 5),
        b"three"
    );
    assert_eq!(
        state.read_region(TransferPlan::put_region(3), 0, 5),
        vec![0; 5]
    );
    let _ = RegionId(0); // the addressing type is public
}
