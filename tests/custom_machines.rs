//! The library is a simulator, not a fixed artifact: these tests vary the
//! machine and check that performance responds the way the architecture
//! says it must.

use cellsim::eib::RingOccupancy;
use cellsim::kernel::MachineClock;
use cellsim::mem::NumaPolicy;
use cellsim::{CellConfig, CellSystem, Placement, SyncPolicy, TransferPlan};

fn pair_plan() -> TransferPlan {
    TransferPlan::builder()
        .exchange_with(0, 1, 1 << 20, 16 * 1024, SyncPolicy::AfterAll)
        .build()
        .unwrap()
}

fn cycle_plan() -> TransferPlan {
    let mut b = TransferPlan::builder();
    for spe in 0..8 {
        b = b.exchange_with(
            spe,
            (spe + 1) % 8,
            512 << 10,
            16 * 1024,
            SyncPolicy::AfterAll,
        );
    }
    b.build().unwrap()
}

#[test]
fn a_faster_clock_scales_bandwidth() {
    // The PS3's production 3.2 GHz part, same microarchitecture.
    let cfg = CellConfig {
        clock: MachineClock::new(3.2e9, 2),
        ..CellConfig::default()
    };
    let fast = CellSystem::new(cfg);
    let slow = CellSystem::blade();
    let plan = pair_plan();
    let f = fast
        .try_run(&Placement::identity(), &plan)
        .unwrap()
        .aggregate_gbps;
    let s = slow
        .try_run(&Placement::identity(), &plan)
        .unwrap()
        .aggregate_gbps;
    let ratio = f / s;
    assert!(
        (ratio - 3.2 / 2.1).abs() < 0.05,
        "pair bandwidth should scale with the clock: {ratio}"
    );
    // At 3.2 GHz the pair peak is the celebrated 25.6 GB/s per direction.
    assert!(f > 48.0, "3.2 GHz pair got {f}");
}

#[test]
fn halving_the_rings_starves_dense_traffic() {
    let mut cfg = CellConfig::default();
    cfg.eib.rings_per_direction = 1;
    let narrow = CellSystem::new(cfg);
    let wide = CellSystem::blade();
    let plan = cycle_plan();
    let p = Placement::identity();
    let n = narrow.try_run(&p, &plan).unwrap().aggregate_gbps;
    let w = wide.try_run(&p, &plan).unwrap().aggregate_gbps;
    assert!(n < w * 0.85, "2 rings {n} vs 4 rings {w}");
}

#[test]
fn a_bigger_outstanding_budget_lifts_the_memory_ceiling() {
    let mut cfg = CellConfig::default();
    cfg.mfc.max_outstanding_packets = 32;
    let deep = CellSystem::new(cfg);
    let plan = TransferPlan::builder()
        .get_from_memory(0, 2 << 20, 16 * 1024, SyncPolicy::AfterAll)
        .build()
        .unwrap();
    let p = Placement::identity();
    let shallow_bw = CellSystem::blade()
        .try_run(&p, &plan)
        .unwrap()
        .aggregate_gbps;
    let deep_bw = deep.try_run(&p, &plan).unwrap().aggregate_gbps;
    assert!(deep_bw > shallow_bw * 1.3, "{shallow_bw} -> {deep_bw}");
    // But never past the bank pipe.
    assert!(deep_bw < 16.8);
}

#[test]
fn local_only_numa_caps_multi_spe_memory_bandwidth() {
    let cfg = CellConfig {
        numa: NumaPolicy::LocalOnly,
        ..CellConfig::default()
    };
    let one_bank = CellSystem::new(cfg);
    let mut b = TransferPlan::builder();
    for spe in 0..4 {
        b = b.get_from_memory(spe, 1 << 20, 16 * 1024, SyncPolicy::AfterAll);
    }
    let plan = b.build().unwrap();
    let p = Placement::identity();
    let capped = one_bank.try_run(&p, &plan).unwrap().sum_gbps;
    let spread = CellSystem::blade().try_run(&p, &plan).unwrap().sum_gbps;
    assert!(capped < 16.8, "one bank cannot exceed its pipe: {capped}");
    assert!(spread > capped, "two banks must win: {spread} vs {capped}");
}

#[test]
fn pipelined_occupancy_is_an_upper_bound() {
    let mut cfg = CellConfig::default();
    cfg.eib.occupancy = RingOccupancy::Pipelined;
    let ideal = CellSystem::new(cfg);
    let real = CellSystem::blade();
    let plan = cycle_plan();
    let p = Placement::from_mapping([7, 2, 5, 0, 3, 6, 1, 4]).unwrap();
    let i = ideal.try_run(&p, &plan).unwrap().aggregate_gbps;
    let r = real.try_run(&p, &plan).unwrap().aggregate_gbps;
    assert!(i >= r, "wormhole pipelining can only help: {i} vs {r}");
}

#[test]
fn a_slower_command_bus_caps_dense_traffic() {
    let cfg = CellConfig {
        cmd_issue_interval: 4, // one coherence command per 4 bus cycles
        ..CellConfig::default()
    };
    let slow_snoop = CellSystem::new(cfg);
    let plan = cycle_plan();
    let p = Placement::identity();
    let s = slow_snoop.try_run(&p, &plan).unwrap().aggregate_gbps;
    let f = CellSystem::blade()
        .try_run(&p, &plan)
        .unwrap()
        .aggregate_gbps;
    // 1 command / 4 cycles x 128 B = 33.6 GB/s fabric-wide ceiling.
    assert!(s <= 33.7, "command bus must cap the fabric: {s}");
    assert!(f > s);
}

#[test]
fn sub_packet_dma_elements_are_painful() {
    // The paper: "it is possible to program DMA transfers of less than
    // 128 Bytes, [but] the experiments show a very high performance
    // degradation."
    let sys = CellSystem::blade();
    let p = Placement::identity();
    let tiny = TransferPlan::builder()
        .exchange_with(0, 1, 64 << 10, 16, SyncPolicy::AfterAll)
        .build()
        .unwrap();
    let small = TransferPlan::builder()
        .exchange_with(0, 1, 64 << 10, 128, SyncPolicy::AfterAll)
        .build()
        .unwrap();
    let t = sys.try_run(&p, &tiny).unwrap().aggregate_gbps;
    let s = sys.try_run(&p, &small).unwrap().aggregate_gbps;
    assert!(t < s / 4.0, "16 B DMAs: {t} vs 128 B DMAs: {s}");
}

#[test]
fn identity_and_explicit_mapping_agree() {
    let sys = CellSystem::blade();
    let plan = pair_plan();
    let a = sys.try_run(&Placement::identity(), &plan).unwrap();
    let b = sys
        .try_run(
            &Placement::from_mapping([0, 1, 2, 3, 4, 5, 6, 7]).unwrap(),
            &plan,
        )
        .unwrap();
    assert_eq!(a.cycles, b.cycles);
}
