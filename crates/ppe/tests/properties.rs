//! Property tests for the PPE pipeline model.

use cellsim_ppe::{CacheLevel, PpeKernelSpec, PpeModel, PpeOp};
use proptest::prelude::*;

fn elem() -> impl Strategy<Value = u32> {
    prop_oneof![Just(1u32), Just(2), Just(4), Just(8), Just(16)]
}

fn op() -> impl Strategy<Value = PpeOp> {
    prop_oneof![Just(PpeOp::Load), Just(PpeOp::Store), Just(PpeOp::Copy)]
}

proptest! {
    /// Bandwidth is monotone non-decreasing in element size for any op,
    /// level and thread count.
    #[test]
    fn bandwidth_monotone_in_element_size(
        op in op(),
        threads in 1usize..=2,
        buffer_kib in prop_oneof![Just(8u64), Just(128), Just(4096)],
    ) {
        let model = PpeModel::default();
        let mut prev = 0.0f64;
        for e in [1u32, 2, 4, 8, 16] {
            let r = model.run(&PpeKernelSpec {
                op,
                elem_bytes: e,
                buffer_bytes: buffer_kib << 10,
                threads,
            }).unwrap();
            prop_assert!(r.bandwidth_gbps >= prev * 0.999,
                "{:?} {}B: {} < {}", op, e, r.bandwidth_gbps, prev);
            prev = r.bandwidth_gbps;
        }
    }

    /// Two threads never aggregate slower than one at the same residency
    /// level. (Across a level boundary the weak-scaled footprint can
    /// legitimately fall out of a cache — e.g. two 257 KiB store streams
    /// spill the L2 — so the buffers here pin the level.)
    #[test]
    fn smt_never_hurts_at_fixed_level(
        op in op(),
        e in elem(),
        buffer_kib in prop_oneof![Just(4u64), Just(64), Just(2048)],
    ) {
        let model = PpeModel::default();
        let run = |threads| {
            let r = model.run(&PpeKernelSpec {
                op,
                elem_bytes: e,
                buffer_bytes: buffer_kib << 10,
                threads,
            }).unwrap();
            (r.level, r.bandwidth_gbps)
        };
        let (l1, one) = run(1);
        let (l2, two) = run(2);
        prop_assume!(l1 == l2);
        prop_assert!(two >= one * 0.98, "{} threads... {} vs {}", 2, two, one);
    }

    /// Closer cache levels are never slower for loads.
    #[test]
    fn cache_levels_order_load_bandwidth(e in elem(), threads in 1usize..=2) {
        let model = PpeModel::default();
        let run = |buffer: u64| model.run(&PpeKernelSpec {
            op: PpeOp::Load,
            elem_bytes: e,
            buffer_bytes: buffer,
            threads,
        }).unwrap();
        let l1 = run(8 << 10);
        let l2 = run(128 << 10);
        let mem = run(4 << 20);
        prop_assert_eq!(l1.level, CacheLevel::L1);
        prop_assert_eq!(l2.level, CacheLevel::L2);
        prop_assert_eq!(mem.level, CacheLevel::Memory);
        prop_assert!(l1.bandwidth_gbps >= l2.bandwidth_gbps * 0.999);
        prop_assert!(l2.bandwidth_gbps >= mem.bandwidth_gbps * 0.999);
    }

    /// Cycle counts scale linearly with buffer size (streaming kernels
    /// have no super-linear effects).
    #[test]
    fn cycles_scale_linearly(op in op(), e in elem()) {
        let model = PpeModel::default();
        let run = |buffer: u64| model.run(&PpeKernelSpec {
            op,
            elem_bytes: e,
            buffer_bytes: buffer,
            threads: 1,
        }).unwrap().cpu_cycles;
        // Same residency level for both sizes (both memory-resident).
        let base = run(2 << 20);
        let double = run(4 << 20);
        let ratio = double as f64 / base as f64;
        prop_assert!((ratio - 2.0).abs() < 0.05, "ratio={}", ratio);
    }

    /// The model never reports more bandwidth than the 33.6 GB/s L1 link.
    #[test]
    fn bandwidth_respects_the_link_peak(
        op in op(),
        e in elem(),
        threads in 1usize..=2,
        buffer_kib in 4u64..1024,
    ) {
        let model = PpeModel::default();
        let r = model.run(&PpeKernelSpec {
            op,
            elem_bytes: e,
            buffer_bytes: buffer_kib << 10,
            threads,
        }).unwrap();
        prop_assert!(r.bandwidth_gbps <= 33.6 + 1e-9, "{}", r.bandwidth_gbps);
    }
}
