//! Model of the Cell BE **Power Processor Element** (PPE).
//!
//! The PPE is a 2-way SMT, in-order PowerPC core with a 32 KB write-through
//! L1 and a 512 KB L2, both with 128-byte lines. The ISPASS 2007 paper
//! streams load/store/copy kernels over buffers sized to each level of the
//! hierarchy (its Figures 3, 4 and 6). The measured behaviour is governed
//! by a handful of structural limits, all modelled here:
//!
//! * **Issue**: one scalar load or store per CPU cycle per thread (halved
//!   when both SMT threads run); VMX 16-byte loads sustain only one every
//!   two cycles, which is why 16 B loads are no faster than 8 B.
//! * **Line refill**: a thread's L1 misses are serviced at most one line
//!   per recycle interval, *independent of where the line comes from* —
//!   the reason the paper finds L2-resident and memory-resident load
//!   bandwidth identical, and the reason two threads double it.
//! * **Store gather**: the write-through L1 sends every store to the L2
//!   store-gather queue, which drains one line per interval per thread and
//!   lets the core run a bounded number of lines ahead.
//! * **L2→memory write queue**: a single shared drain, far slower — the
//!   paper's "memory store under 6 GB/s".
//!
//! # Example
//!
//! ```
//! use cellsim_ppe::{PpeKernelSpec, PpeModel, PpeOp};
//!
//! let model = PpeModel::default();
//! let r = model.run(&PpeKernelSpec {
//!     op: PpeOp::Load,
//!     elem_bytes: 8,
//!     buffer_bytes: 16 * 1024, // L1-resident
//!     threads: 1,
//! })?;
//! // One 8-byte load per 2.1 GHz cycle = 16.8 GB/s.
//! assert!((r.bandwidth_gbps - 16.8).abs() < 0.1);
//! # Ok::<(), cellsim_ppe::PpeError>(())
//! ```

mod model;

pub use model::{CacheLevel, PpeConfig, PpeError, PpeKernelSpec, PpeModel, PpeOp, PpeRunResult};
