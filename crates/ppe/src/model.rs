//! The per-line PPU pipeline simulation.

use std::error::Error;
use std::fmt;

use cellsim_kernel::MachineClock;

/// The streamed micro-benchmark operation (paper Figures 3/4/6 a–c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PpeOp {
    /// Stream reads over one buffer.
    Load,
    /// Stream writes over one buffer.
    Store,
    /// Read one buffer, write a second; bandwidth counts both directions.
    Copy,
}

/// Where a kernel's working set resides after the warm-up lap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CacheLevel {
    /// Fits in the 32 KB L1.
    L1,
    /// Fits in the 512 KB L2.
    L2,
    /// Streams from main memory.
    Memory,
}

impl fmt::Display for CacheLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheLevel::L1 => write!(f, "L1"),
            CacheLevel::L2 => write!(f, "L2"),
            CacheLevel::Memory => write!(f, "memory"),
        }
    }
}

/// Structural parameters of the PPE. Times are **CPU** cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PpeConfig {
    /// L1 data-cache capacity (32 KB).
    pub l1_bytes: u64,
    /// L2 capacity (512 KB).
    pub l2_bytes: u64,
    /// Cache-line size (128 B on both levels).
    pub line_bytes: u32,
    /// Issue cost of a scalar (≤8 B) load.
    pub scalar_load_issue: u64,
    /// Issue cost of a VMX 16 B load (2: the measured "16 B no better
    /// than 8 B" effect).
    pub vmx_load_issue: u64,
    /// Issue cost of a scalar store.
    pub scalar_store_issue: u64,
    /// Issue cost of a VMX 16 B store.
    pub vmx_store_issue: u64,
    /// Per-thread line-refill recycle: minimum CPU cycles between L1 line
    /// fills, wherever the data comes from.
    pub reload_recycle: u64,
    /// Per-thread store-gather drain: CPU cycles per line written to L2.
    pub store_drain_l2: u64,
    /// Shared L2→memory write drain: CPU cycles per line written to DRAM.
    pub store_drain_mem: u64,
    /// Lines of stores the core may run ahead of the drain.
    pub store_gather_entries: u64,
}

impl Default for PpeConfig {
    fn default() -> Self {
        PpeConfig {
            l1_bytes: 32 * 1024,
            l2_bytes: 512 * 1024,
            line_bytes: 128,
            scalar_load_issue: 1,
            vmx_load_issue: 2,
            scalar_store_issue: 1,
            vmx_store_issue: 1,
            reload_recycle: 56,
            store_drain_l2: 28,
            store_drain_mem: 100,
            store_gather_entries: 8,
        }
    }
}

/// One micro-benchmark configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PpeKernelSpec {
    /// Load, store or copy.
    pub op: PpeOp,
    /// Access granularity: 1, 2, 4, 8 or 16 bytes.
    pub elem_bytes: u32,
    /// Bytes traversed per thread (each thread owns an independent
    /// buffer — the paper's weak-scaling protocol).
    pub buffer_bytes: u64,
    /// Active SMT threads: 1 or 2.
    pub threads: usize,
}

/// Result of running a kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpeRunResult {
    /// Wall-clock CPU cycles for the slowest thread.
    pub cpu_cycles: u64,
    /// Bytes counted toward bandwidth (copy counts both directions).
    pub bytes_moved: u64,
    /// Aggregate sustained bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Residency level implied by the total footprint.
    pub level: CacheLevel,
}

/// Why a kernel specification was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PpeError {
    /// Element size is not 1, 2, 4, 8 or 16.
    BadElementSize(u32),
    /// Thread count is not 1 or 2 (the PPU is 2-way SMT).
    BadThreadCount(usize),
    /// Zero-length buffer.
    EmptyBuffer,
}

impl fmt::Display for PpeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PpeError::BadElementSize(b) => {
                write!(f, "element size {b} is not 1, 2, 4, 8 or 16")
            }
            PpeError::BadThreadCount(t) => write!(f, "thread count {t} is not 1 or 2"),
            PpeError::EmptyBuffer => write!(f, "buffer must be non-empty"),
        }
    }
}

impl Error for PpeError {}

/// The PPE pipeline model. See the [crate-level docs](crate) for the
/// structures it captures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpeModel {
    cfg: PpeConfig,
    clock: MachineClock,
}

impl Default for PpeModel {
    fn default() -> Self {
        PpeModel::new(PpeConfig::default(), MachineClock::default())
    }
}

impl PpeModel {
    /// Builds a model with explicit structural parameters.
    pub fn new(cfg: PpeConfig, clock: MachineClock) -> PpeModel {
        PpeModel { cfg, clock }
    }

    /// The structural parameters in use.
    pub fn config(&self) -> &PpeConfig {
        &self.cfg
    }

    /// The residency level of `spec`'s total footprint (buffers for every
    /// thread, two per thread for copy), assuming a warm cache.
    pub fn level_for(&self, spec: &PpeKernelSpec) -> CacheLevel {
        let per_thread = match spec.op {
            PpeOp::Copy => 2 * spec.buffer_bytes,
            _ => spec.buffer_bytes,
        };
        let footprint = per_thread * spec.threads as u64;
        if footprint <= self.cfg.l1_bytes {
            CacheLevel::L1
        } else if footprint <= self.cfg.l2_bytes {
            CacheLevel::L2
        } else {
            CacheLevel::Memory
        }
    }

    /// Runs one streaming kernel to completion and reports its bandwidth.
    ///
    /// # Errors
    ///
    /// Returns a [`PpeError`] for an invalid element size, thread count,
    /// or empty buffer.
    pub fn run(&self, spec: &PpeKernelSpec) -> Result<PpeRunResult, PpeError> {
        if !matches!(spec.elem_bytes, 1 | 2 | 4 | 8 | 16) {
            return Err(PpeError::BadElementSize(spec.elem_bytes));
        }
        if !matches!(spec.threads, 1 | 2) {
            return Err(PpeError::BadThreadCount(spec.threads));
        }
        if spec.buffer_bytes == 0 {
            return Err(PpeError::EmptyBuffer);
        }

        let level = self.level_for(spec);
        let line = u64::from(self.cfg.line_bytes);
        let lines = spec.buffer_bytes.div_ceil(line);
        let elems_per_line = line / u64::from(spec.elem_bytes.min(self.cfg.line_bytes));

        // Per-instruction issue costs, inflated by SMT sharing.
        let smt = spec.threads as u64;
        let load_issue = if spec.elem_bytes == 16 {
            self.cfg.vmx_load_issue
        } else {
            self.cfg.scalar_load_issue
        } * smt;
        let store_issue = if spec.elem_bytes == 16 {
            self.cfg.vmx_store_issue
        } else {
            self.cfg.scalar_store_issue
        } * smt;

        let issue_per_line = match spec.op {
            PpeOp::Load => elems_per_line * load_issue,
            PpeOp::Store => elems_per_line * store_issue,
            PpeOp::Copy => elems_per_line * (load_issue + store_issue),
        };

        let loads_miss_l1 = level != CacheLevel::L1 && spec.op != PpeOp::Store;
        let stores_present = spec.op != PpeOp::Load;
        // Per-thread store drain for cache-resident targets; shared for
        // memory-resident ones.
        let drain_interval = match level {
            CacheLevel::Memory => self.cfg.store_drain_mem,
            _ => self.cfg.store_drain_l2,
        };
        let drain_shared = level == CacheLevel::Memory;

        // Per-thread state.
        let mut t = vec![0u64; spec.threads];
        let mut reload_next = vec![0u64; spec.threads];
        let mut drain_done = vec![std::collections::VecDeque::<u64>::new(); spec.threads];
        let mut shared_drain_tail = 0u64;

        for _line in 0..lines {
            for th in 0..spec.threads {
                // Instruction issue for this line.
                let mut line_end = t[th] + issue_per_line;
                // Line refill gate for miss streams.
                if loads_miss_l1 {
                    line_end = line_end.max(reload_next[th]);
                    reload_next[th] = line_end + self.cfg.reload_recycle;
                }
                if stores_present {
                    // The store-gather queue drains this line...
                    let prev_tail = if drain_shared {
                        shared_drain_tail
                    } else {
                        *drain_done[th].back().unwrap_or(&0)
                    };
                    let done = prev_tail.max(line_end) + drain_interval;
                    if drain_shared {
                        shared_drain_tail = done;
                    }
                    let q = &mut drain_done[th];
                    q.push_back(done);
                    // ...and the core may only run a bounded number of
                    // lines ahead of it.
                    while q.len() as u64 > self.cfg.store_gather_entries {
                        let oldest = q.pop_front().expect("non-empty");
                        line_end = line_end.max(oldest);
                    }
                }
                t[th] = line_end;
            }
        }

        // The run ends when the slowest thread finishes and its stores
        // have drained.
        let mut end = 0u64;
        for th in 0..spec.threads {
            let drained = drain_done[th].back().copied().unwrap_or(0);
            end = end.max(t[th]).max(drained);
        }

        let per_thread_bytes = match spec.op {
            PpeOp::Copy => 2 * spec.buffer_bytes,
            _ => spec.buffer_bytes,
        };
        let bytes_moved = per_thread_bytes * spec.threads as u64;
        let seconds = end as f64 / self.clock.cpu_hz();
        Ok(PpeRunResult {
            cpu_cycles: end,
            bytes_moved,
            bandwidth_gbps: bytes_moved as f64 / seconds / 1e9,
            level,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(op: PpeOp, elem: u32, buffer: u64, threads: usize) -> PpeRunResult {
        PpeModel::default()
            .run(&PpeKernelSpec {
                op,
                elem_bytes: elem,
                buffer_bytes: buffer,
                threads,
            })
            .unwrap()
    }

    const L1_BUF: u64 = 16 * 1024;
    const L2_BUF: u64 = 256 * 1024;
    const MEM_BUF: u64 = 8 * 1024 * 1024;

    #[test]
    fn l1_load_8b_hits_half_link_peak() {
        let r = run(PpeOp::Load, 8, L1_BUF, 1);
        assert_eq!(r.level, CacheLevel::L1);
        assert!((r.bandwidth_gbps - 16.8).abs() < 0.2, "{r:?}");
    }

    #[test]
    fn l1_load_16b_no_better_than_8b() {
        let r8 = run(PpeOp::Load, 8, L1_BUF, 1);
        let r16 = run(PpeOp::Load, 16, L1_BUF, 1);
        assert!((r8.bandwidth_gbps - r16.bandwidth_gbps).abs() < 0.2);
    }

    #[test]
    fn l1_load_scales_with_element_size() {
        let b4 = run(PpeOp::Load, 4, L1_BUF, 1).bandwidth_gbps;
        let b2 = run(PpeOp::Load, 2, L1_BUF, 1).bandwidth_gbps;
        let b1 = run(PpeOp::Load, 1, L1_BUF, 1).bandwidth_gbps;
        assert!((b4 - 8.4).abs() < 0.2, "b4={b4}");
        assert!((b2 - 4.2).abs() < 0.2, "b2={b2}");
        assert!((b1 - 2.1).abs() < 0.2, "b1={b1}");
    }

    #[test]
    fn l1_store_is_slower_than_l1_load() {
        let load = run(PpeOp::Load, 16, L1_BUF, 1).bandwidth_gbps;
        let store = run(PpeOp::Store, 16, L1_BUF, 1).bandwidth_gbps;
        assert!(store < load, "write-through drain must bind stores");
        assert!(store > 8.0, "store should still be near the drain rate");
    }

    #[test]
    fn l2_load_is_much_slower_and_doubles_with_smt() {
        let one = run(PpeOp::Load, 8, L2_BUF, 1).bandwidth_gbps;
        let two = run(PpeOp::Load, 8, L2_BUF, 2).bandwidth_gbps;
        assert!(one < 6.0, "one={one}");
        assert!(
            (two / one - 2.0).abs() < 0.1,
            "SMT should double: {two}/{one}"
        );
    }

    #[test]
    fn l2_store_is_about_twice_l2_load_single_thread() {
        let load = run(PpeOp::Load, 16, L2_BUF, 1).bandwidth_gbps;
        let store = run(PpeOp::Store, 16, L2_BUF, 1).bandwidth_gbps;
        let ratio = store / load;
        assert!((1.6..=2.4).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn memory_load_equals_l2_load() {
        let l2 = run(PpeOp::Load, 8, L2_BUF, 1).bandwidth_gbps;
        let mem = run(PpeOp::Load, 8, MEM_BUF, 1).bandwidth_gbps;
        assert!(
            (l2 - mem).abs() / l2 < 0.05,
            "the paper finds these equal: l2={l2} mem={mem}"
        );
    }

    #[test]
    fn memory_store_and_copy_stay_under_six() {
        for op in [PpeOp::Store, PpeOp::Copy] {
            for threads in [1, 2] {
                let bw = run(op, 16, MEM_BUF, threads).bandwidth_gbps;
                assert!(bw < 6.0, "{op:?} x{threads} = {bw}");
            }
        }
    }

    #[test]
    fn memory_store_is_much_slower_than_l2_store() {
        let l2 = run(PpeOp::Store, 16, L2_BUF, 1).bandwidth_gbps;
        let mem = run(PpeOp::Store, 16, MEM_BUF, 1).bandwidth_gbps;
        assert!(mem < l2 / 2.0, "l2={l2} mem={mem}");
    }

    #[test]
    fn copy_counts_both_directions() {
        let r = run(PpeOp::Copy, 8, L1_BUF, 1);
        assert_eq!(r.bytes_moved, 2 * L1_BUF);
        // Half of the 33.6 GB/s L1 link peak, as the paper reports.
        assert!((r.bandwidth_gbps - 16.8).abs() < 0.3, "{r:?}");
    }

    #[test]
    fn copy_16b_beats_copy_8b() {
        let b8 = run(PpeOp::Copy, 8, L1_BUF, 1).bandwidth_gbps;
        let b16 = run(PpeOp::Copy, 16, L1_BUF, 1).bandwidth_gbps;
        assert!(b16 > b8 * 1.1, "b8={b8} b16={b16}");
    }

    #[test]
    fn level_classification_counts_footprint() {
        let m = PpeModel::default();
        let spec = |op, buffer, threads| PpeKernelSpec {
            op,
            elem_bytes: 8,
            buffer_bytes: buffer,
            threads,
        };
        assert_eq!(m.level_for(&spec(PpeOp::Load, 16 << 10, 1)), CacheLevel::L1);
        // Two threads' buffers exceed L1 together.
        assert_eq!(m.level_for(&spec(PpeOp::Load, 24 << 10, 2)), CacheLevel::L2);
        // Copy doubles the footprint.
        assert_eq!(m.level_for(&spec(PpeOp::Copy, 24 << 10, 1)), CacheLevel::L2);
        assert_eq!(
            m.level_for(&spec(PpeOp::Load, 4 << 20, 1)),
            CacheLevel::Memory
        );
    }

    #[test]
    fn invalid_specs_rejected() {
        let m = PpeModel::default();
        let base = PpeKernelSpec {
            op: PpeOp::Load,
            elem_bytes: 8,
            buffer_bytes: 1024,
            threads: 1,
        };
        assert_eq!(
            m.run(&PpeKernelSpec {
                elem_bytes: 3,
                ..base
            }),
            Err(PpeError::BadElementSize(3))
        );
        assert_eq!(
            m.run(&PpeKernelSpec { threads: 3, ..base }),
            Err(PpeError::BadThreadCount(3))
        );
        assert_eq!(
            m.run(&PpeKernelSpec {
                buffer_bytes: 0,
                ..base
            }),
            Err(PpeError::EmptyBuffer)
        );
    }
}
