//! Property tests for the SPE models.

use cellsim_kernel::MachineClock;
use cellsim_spe::{LocalStore, LsOp, SpuLsModel, LS_BYTES};
use proptest::prelude::*;

proptest! {
    /// LocalStore behaves like a flat 256 KB array.
    #[test]
    fn local_store_matches_flat_model(
        writes in proptest::collection::vec(
            (0u32..(LS_BYTES as u32 - 256), proptest::collection::vec(any::<u8>(), 1..256)),
            1..16,
        ),
    ) {
        let mut ls = LocalStore::new();
        let mut flat = vec![0u8; LS_BYTES];
        for (off, data) in &writes {
            ls.write(*off, data);
            flat[*off as usize..*off as usize + data.len()].copy_from_slice(data);
        }
        for (off, data) in &writes {
            prop_assert_eq!(ls.read(*off, data.len()), &flat[*off as usize..*off as usize + data.len()]);
        }
    }

    /// SPU↔LS bandwidth is monotone in element size and bounded by the
    /// 33.6 GB/s quadword port.
    #[test]
    fn spu_bandwidth_monotone_and_bounded(total in 1024u64..1 << 22) {
        let model = SpuLsModel::default();
        let clock = MachineClock::default();
        for op in [LsOp::Load, LsOp::Store, LsOp::Copy] {
            let mut prev = 0.0;
            for e in [1u32, 2, 4, 8, 16] {
                let bw = model.bandwidth_gbps(&clock, op, e, total).unwrap();
                prop_assert!(bw >= prev * 0.999);
                prop_assert!(bw <= 33.6 + 1e-9);
                prev = bw;
            }
        }
    }

    /// Cycle counts are exactly linear in the element count.
    #[test]
    fn spu_cycles_linear(elems in 1u64..10_000, e in prop_oneof![Just(4u32), Just(16)]) {
        let model = SpuLsModel::default();
        let one = model.cpu_cycles(LsOp::Load, e, u64::from(e)).unwrap();
        let many = model.cpu_cycles(LsOp::Load, e, elems * u64::from(e)).unwrap();
        prop_assert_eq!(many, one * elems);
    }
}
