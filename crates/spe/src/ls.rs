//! The 256 KB Local Store.

use std::fmt;

/// Local Store capacity in bytes.
pub const LS_BYTES: usize = 256 * 1024;

/// One SPE's Local Store: a flat, private 256 KB scratchpad.
///
/// The Local Store is the *only* memory an SPU can address directly;
/// everything else arrives by DMA. The store here is functional (it holds
/// real bytes) so that examples can run actual data through the simulated
/// machine; the bandwidth experiments use only its geometry.
///
/// ```
/// use cellsim_spe::LocalStore;
/// let mut ls = LocalStore::new();
/// ls.write(128, b"stream me");
/// assert_eq!(ls.read(128, 9), b"stream me");
/// ```
#[derive(Clone)]
pub struct LocalStore {
    data: Box<[u8; LS_BYTES]>,
}

impl LocalStore {
    /// A zero-filled Local Store.
    pub fn new() -> LocalStore {
        LocalStore {
            data: vec![0u8; LS_BYTES]
                .into_boxed_slice()
                .try_into()
                .expect("sized exactly"),
        }
    }

    /// Reads `len` bytes starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the range runs past the 256 KB boundary; the MFC
    /// validates ranges before any transfer, so reaching this is a bug.
    pub fn read(&self, offset: u32, len: usize) -> &[u8] {
        let start = offset as usize;
        let end = start.checked_add(len).expect("length overflow");
        assert!(end <= LS_BYTES, "local-store read out of range");
        &self.data[start..end]
    }

    /// Writes `bytes` starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the range runs past the 256 KB boundary.
    pub fn write(&mut self, offset: u32, bytes: &[u8]) {
        let start = offset as usize;
        let end = start.checked_add(bytes.len()).expect("length overflow");
        assert!(end <= LS_BYTES, "local-store write out of range");
        self.data[start..end].copy_from_slice(bytes);
    }

    /// Fills the whole store with `value` (handy for test patterns).
    pub fn fill(&mut self, value: u8) {
        self.data.fill(value);
    }
}

impl Default for LocalStore {
    fn default() -> Self {
        LocalStore::new()
    }
}

impl fmt::Debug for LocalStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocalStore")
            .field("bytes", &LS_BYTES)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_bytes() {
        let mut ls = LocalStore::new();
        ls.write(1000, &[1, 2, 3, 4]);
        assert_eq!(ls.read(1000, 4), &[1, 2, 3, 4]);
        assert_eq!(ls.read(999, 1), &[0]);
    }

    #[test]
    fn boundary_access_is_allowed() {
        let mut ls = LocalStore::new();
        ls.write((LS_BYTES - 4) as u32, &[9, 9, 9, 9]);
        assert_eq!(ls.read((LS_BYTES - 4) as u32, 4), &[9, 9, 9, 9]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn overrun_read_panics() {
        let ls = LocalStore::new();
        let _ = ls.read((LS_BYTES - 2) as u32, 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn overrun_write_panics() {
        let mut ls = LocalStore::new();
        ls.write((LS_BYTES - 1) as u32, &[0, 0]);
    }

    #[test]
    fn fill_sets_every_byte() {
        let mut ls = LocalStore::new();
        ls.fill(0xAB);
        assert!(ls.read(0, LS_BYTES).iter().all(|&b| b == 0xAB));
    }
}
