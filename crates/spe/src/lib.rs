//! Model of a **Synergistic Processor Element** (SPE).
//!
//! An SPE is the SPU core plus its 256 KB Local Store (the MFC is modelled
//! separately in `cellsim-mfc`). This crate provides:
//!
//! * [`LocalStore`] — a functional 256 KB scratchpad, so examples can move
//!   real bytes through the simulated fabric;
//! * [`SpuLsModel`] — the analytic SPU↔LS load/store pipeline model behind
//!   the paper's §4.2.2 experiment. The SPU ISA only has 16-byte loads, so
//!   a quadword access per cycle hits the 33.6 GB/s peak while narrower
//!   accesses pay extract/merge overhead.
//!
//! # Example
//!
//! ```
//! use cellsim_kernel::MachineClock;
//! use cellsim_spe::{LsOp, SpuLsModel};
//!
//! let model = SpuLsModel::default();
//! let clock = MachineClock::default();
//! // Full-quadword loads reach the 33.6 GB/s peak the paper reports.
//! let bw = model.bandwidth_gbps(&clock, LsOp::Load, 16, 1 << 20).unwrap();
//! assert!((bw - 33.6).abs() < 1e-6);
//! ```

mod ls;
mod spu;

pub use ls::{LocalStore, LS_BYTES};
pub use spu::{BadElementSize, LsOp, SpuLsConfig, SpuLsModel};
