//! Analytic model of the SPU's load/store path to its Local Store.
//!
//! The SPU reads or writes one 16-byte quadword per CPU cycle — there are
//! no narrower memory instructions. Loading a scalar therefore costs a
//! quadword load plus an extract (rotate) instruction, and *storing* a
//! scalar is a read-modify-write: load the quadword, insert the scalar,
//! store the quadword back. Brokenshire's optimization notes (the paper's
//! reference [4]) describe exactly this overhead; the paper's §4.2.2
//! confirms the 33.6 GB/s quadword peak at 2.1 GHz.

use std::error::Error;
use std::fmt;

use cellsim_kernel::MachineClock;

/// The micro-benchmark operation on the Local Store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LsOp {
    /// Stream reads.
    Load,
    /// Stream writes.
    Store,
    /// Read one buffer, write another. Bandwidth counts both directions,
    /// as the paper (and STREAM) do.
    Copy,
}

/// Per-element CPU-cycle costs of the SPU load/store pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpuLsConfig {
    /// Cycles per full-quadword (16 B) load. 1 on the CBE.
    pub quadword_load_cycles: u64,
    /// Cycles per full-quadword store. 1 on the CBE.
    pub quadword_store_cycles: u64,
    /// Cycles per sub-quadword load: `lq` plus an extract, which
    /// dual-issues on the other pipe — still 1 per cycle when unrolled.
    pub scalar_load_cycles: u64,
    /// Cycles per sub-quadword store: the `lq`/modify/`stq` sequence keeps
    /// the load-store pipe busy for 2 cycles and adds a merge.
    pub scalar_store_cycles: u64,
}

impl Default for SpuLsConfig {
    fn default() -> Self {
        SpuLsConfig {
            quadword_load_cycles: 1,
            quadword_store_cycles: 1,
            scalar_load_cycles: 1,
            scalar_store_cycles: 3,
        }
    }
}

/// Error returned for an element size the SPU cannot address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BadElementSize(pub u32);

impl fmt::Display for BadElementSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "element size {} is not 1, 2, 4, 8 or 16", self.0)
    }
}

impl Error for BadElementSize {}

/// The SPU↔Local-Store bandwidth model (paper §4.2.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpuLsModel {
    cfg: SpuLsConfig,
}

impl SpuLsModel {
    /// Builds a model with explicit pipeline costs.
    pub fn new(cfg: SpuLsConfig) -> SpuLsModel {
        SpuLsModel { cfg }
    }

    /// The pipeline costs in use.
    pub fn config(&self) -> &SpuLsConfig {
        &self.cfg
    }

    /// CPU cycles to stream `total_bytes` with `elem_bytes`-sized
    /// accesses. For [`LsOp::Copy`], `total_bytes` is the buffer size (the
    /// amount copied).
    ///
    /// # Errors
    ///
    /// Returns [`BadElementSize`] unless `elem_bytes ∈ {1,2,4,8,16}`.
    pub fn cpu_cycles(
        &self,
        op: LsOp,
        elem_bytes: u32,
        total_bytes: u64,
    ) -> Result<u64, BadElementSize> {
        if !matches!(elem_bytes, 1 | 2 | 4 | 8 | 16) {
            return Err(BadElementSize(elem_bytes));
        }
        let elems = total_bytes.div_ceil(u64::from(elem_bytes));
        let quad = elem_bytes == 16;
        let per_elem = match op {
            LsOp::Load => {
                if quad {
                    self.cfg.quadword_load_cycles
                } else {
                    self.cfg.scalar_load_cycles
                }
            }
            LsOp::Store => {
                if quad {
                    self.cfg.quadword_store_cycles
                } else {
                    self.cfg.scalar_store_cycles
                }
            }
            LsOp::Copy => {
                if quad {
                    self.cfg.quadword_load_cycles + self.cfg.quadword_store_cycles
                } else {
                    self.cfg.scalar_load_cycles + self.cfg.scalar_store_cycles
                }
            }
        };
        Ok(elems * per_elem)
    }

    /// Sustained bandwidth in GB/s. Copy counts bytes both read and
    /// written (2 × `total_bytes`), matching the paper's accounting.
    ///
    /// # Errors
    ///
    /// Returns [`BadElementSize`] unless `elem_bytes ∈ {1,2,4,8,16}`.
    pub fn bandwidth_gbps(
        &self,
        clock: &MachineClock,
        op: LsOp,
        elem_bytes: u32,
        total_bytes: u64,
    ) -> Result<f64, BadElementSize> {
        let cycles = self.cpu_cycles(op, elem_bytes, total_bytes)?;
        let moved = match op {
            LsOp::Copy => 2 * total_bytes,
            _ => total_bytes,
        };
        let seconds = cycles as f64 / clock.cpu_hz();
        Ok(moved as f64 / seconds / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadword_load_hits_the_papers_peak() {
        let model = SpuLsModel::default();
        let clock = MachineClock::default();
        let bw = model
            .bandwidth_gbps(&clock, LsOp::Load, 16, 1 << 20)
            .unwrap();
        assert!((bw - 33.6).abs() < 1e-6, "bw={bw}");
    }

    #[test]
    fn scalar_load_bandwidth_scales_with_element_size() {
        let model = SpuLsModel::default();
        let clock = MachineClock::default();
        let bw4 = model
            .bandwidth_gbps(&clock, LsOp::Load, 4, 1 << 20)
            .unwrap();
        let bw8 = model
            .bandwidth_gbps(&clock, LsOp::Load, 8, 1 << 20)
            .unwrap();
        assert!((bw8 / bw4 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn scalar_stores_pay_read_modify_write() {
        let model = SpuLsModel::default();
        let clock = MachineClock::default();
        let load = model
            .bandwidth_gbps(&clock, LsOp::Load, 4, 1 << 20)
            .unwrap();
        let store = model
            .bandwidth_gbps(&clock, LsOp::Store, 4, 1 << 20)
            .unwrap();
        assert!(store < load / 2.0, "RMW store must be much slower");
    }

    #[test]
    fn copy_counts_both_directions() {
        let model = SpuLsModel::default();
        let clock = MachineClock::default();
        // Quadword copy: 2 cycles per 16 B moved, 32 B counted -> 33.6.
        let bw = model
            .bandwidth_gbps(&clock, LsOp::Copy, 16, 1 << 20)
            .unwrap();
        assert!((bw - 33.6).abs() < 1e-6);
    }

    #[test]
    fn invalid_element_size_is_an_error() {
        let model = SpuLsModel::default();
        assert_eq!(
            model.cpu_cycles(LsOp::Load, 3, 1024),
            Err(BadElementSize(3))
        );
        assert_eq!(
            model.cpu_cycles(LsOp::Load, 32, 1024),
            Err(BadElementSize(32))
        );
    }

    #[test]
    fn cycle_counts_are_exact() {
        let model = SpuLsModel::default();
        assert_eq!(model.cpu_cycles(LsOp::Load, 16, 1600).unwrap(), 100);
        assert_eq!(model.cpu_cycles(LsOp::Store, 1, 16).unwrap(), 48);
    }
}
