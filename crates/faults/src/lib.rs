//! Deterministic fault-injection plans for the `cellsim` fabric.
//!
//! Real Cell deployments ran degraded by design: PS3 dies shipped with
//! one of the eight SPEs fused off for yield, and production fabrics see
//! transient memory NACKs, derated bus windows, and throttled banks. A
//! [`FaultPlan`] describes such a degraded machine declaratively — which
//! physical SPEs are fused, which EIB rings are out or derated during
//! which cycle windows, how the XDR banks throttle and NACK, and how the
//! MFC retries — so the same healthy fabric model can be re-run under
//! any degradation scenario.
//!
//! Determinism is the design constraint everything here serves:
//!
//! * Plans are plain data parsed from JSON (via the workspace's
//!   serde-free [`cellsim_kernel::json`] reader) and re-emitted
//!   canonically by [`FaultPlan::to_json`], so a plan has a stable
//!   [`FaultPlan::fingerprint`] for run-cache identity.
//! * All *randomized* fault decisions (transient bank NACKs) come from
//!   [`NackStream`]s seeded per consumer from the plan seed via
//!   [`cellsim_kernel::rng::derive_seed`] — never from shared state — so
//!   a sweep produces bit-identical reports at any `--jobs` count.
//! * Windowed faults ([`Window`]) are pure functions of simulated time:
//!   the consuming models ask "is cycle `t` degraded?" and "when is the
//!   next boundary after `t`?" and schedule accordingly.
//!
//! An empty plan ([`FaultPlan::is_empty`]) is behaviourally identical to
//! running with no plan at all; the fabric relies on that to keep the
//! committed baseline bit-exact.

use std::collections::BTreeMap;
use std::fmt;

use cellsim_kernel::json::{self, JsonValue};
use cellsim_kernel::rng::derive_seed;

/// Version tag accepted in plan files (the `"version"` member).
pub const FAULT_PLAN_VERSION: u64 = 1;

/// Number of physical SPEs a fused mask can describe.
const SPE_COUNT: u8 = 8;

/// A half-open window of simulated time, `[start, start + cycles)`, in
/// bus cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// First degraded cycle.
    pub start: u64,
    /// Length of the window; plans with zero-length windows are invalid.
    pub cycles: u64,
}

impl Window {
    /// One past the last degraded cycle (saturating).
    pub fn end(&self) -> u64 {
        self.start.saturating_add(self.cycles)
    }

    /// Whether `now` falls inside the window.
    pub fn contains(&self, now: u64) -> bool {
        now >= self.start && now < self.end()
    }

    /// The next window boundary (start or end) strictly after `now`, if
    /// any. Consumers fold this into their "next interesting cycle"
    /// scheduling so a blocked resource always has a wake-up time.
    pub fn next_boundary_after(&self, now: u64) -> Option<u64> {
        if now < self.start {
            Some(self.start)
        } else if now < self.end() {
            Some(self.end())
        } else {
            None
        }
    }
}

/// A window during which a resource runs at reduced capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DerateWindow {
    /// When the derating applies.
    pub window: Window,
    /// Remaining capacity in percent, `1..=100` (100 = healthy).
    pub capacity_percent: u32,
}

/// A window during which one EIB ring grants no new transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingOutage {
    /// Global ring index (the arbiter's ring order: clockwise rings
    /// first, then counter-clockwise).
    pub ring: usize,
    /// When the ring is out.
    pub window: Window,
}

/// EIB faults: ring-segment outages and bus-wide bandwidth derating.
///
/// Both affect only *newly granted* transfers — a transfer already on a
/// ring when a window opens completes at the rate it was granted with,
/// which mirrors how a real arbiter drains in-flight traffic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EibFaults {
    /// Per-ring outage windows.
    pub ring_outages: Vec<RingOutage>,
    /// Bus-wide derating windows; overlapping windows take the minimum
    /// capacity.
    pub derate: Vec<DerateWindow>,
}

impl EibFaults {
    /// No EIB faults configured.
    pub fn is_empty(&self) -> bool {
        self.ring_outages.is_empty() && self.derate.is_empty()
    }

    /// Whether ring `ring` is out at `now`.
    pub fn ring_out(&self, ring: usize, now: u64) -> bool {
        self.ring_outages
            .iter()
            .any(|o| o.ring == ring && o.window.contains(now))
    }

    /// Effective bus capacity at `now` in percent (100 = healthy).
    pub fn capacity_percent(&self, now: u64) -> u32 {
        self.derate
            .iter()
            .filter(|d| d.window.contains(now))
            .map(|d| d.capacity_percent)
            .min()
            .unwrap_or(100)
    }

    /// The next fault-window boundary strictly after `now`, if any.
    pub fn next_boundary_after(&self, now: u64) -> Option<u64> {
        let outages = self
            .ring_outages
            .iter()
            .filter_map(|o| o.window.next_boundary_after(now));
        let derates = self
            .derate
            .iter()
            .filter_map(|d| d.window.next_boundary_after(now));
        outages.chain(derates).min()
    }
}

/// Faults on one XDR bank: service-rate throttling and transient NACKs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BankFaults {
    /// Windows during which the bank services at reduced rate;
    /// overlapping windows take the minimum capacity.
    pub throttle: Vec<DerateWindow>,
    /// Probability (parts per million, `0..=1_000_000`) that an access
    /// is NACKed and must be retried by the requesting MFC.
    pub nack_ppm: u32,
}

impl BankFaults {
    /// No faults on this bank.
    pub fn is_empty(&self) -> bool {
        self.throttle.is_empty() && self.nack_ppm == 0
    }

    /// Effective service capacity at `now` in percent (100 = healthy).
    pub fn capacity_percent(&self, now: u64) -> u32 {
        self.throttle
            .iter()
            .filter(|d| d.window.contains(now))
            .map(|d| d.capacity_percent)
            .min()
            .unwrap_or(100)
    }
}

/// MFC faults: fewer outstanding-transfer slots and command-queue
/// stall windows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MfcFaults {
    /// Cap on concurrently outstanding packets (clamped to the
    /// configured `max_outstanding_packets`; `None` = healthy).
    pub slot_limit: Option<u32>,
    /// Windows during which the command unroller issues nothing.
    pub queue_stalls: Vec<Window>,
}

impl MfcFaults {
    /// No MFC faults configured.
    pub fn is_empty(&self) -> bool {
        self.slot_limit.is_none() && self.queue_stalls.is_empty()
    }

    /// If `now` is inside a stall window, the cycle the stall lifts
    /// (the latest end over all windows containing `now`).
    pub fn stalled_until(&self, now: u64) -> Option<u64> {
        self.queue_stalls
            .iter()
            .filter(|w| w.contains(now))
            .map(Window::end)
            .max()
    }
}

/// Bounded-exponential-backoff retry policy for NACKed accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed per DMA command before it is abandoned and
    /// counted as retries-exhausted.
    pub max_retries: u32,
    /// Backoff before the first retry, in bus cycles (≥ 1).
    pub backoff_base: u64,
    /// Ceiling on any single backoff, in bus cycles (≥ `backoff_base`).
    pub backoff_cap: u64,
}

impl Default for RetryPolicy {
    /// Eight retries, 32-cycle initial backoff, 4096-cycle cap.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 8,
            backoff_base: 32,
            backoff_cap: 4096,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry `attempt` (1-based): `base · 2^(attempt−1)`,
    /// capped at `backoff_cap`, never less than one cycle.
    pub fn backoff(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1);
        // Shifting past the leading zeros would drop bits, not saturate.
        let raw = if shift >= self.backoff_base.leading_zeros() {
            u64::MAX
        } else {
            self.backoff_base << shift
        };
        raw.min(self.backoff_cap).max(1)
    }
}

/// A deterministic per-consumer NACK decision stream.
///
/// Each bank owns one stream, seeded from the plan seed and the bank's
/// stream index via [`derive_seed`], and advances it once per decision.
/// Because the fabric's event loop is single-threaded and deterministic,
/// the decision sequence — and therefore the whole report — is
/// bit-identical no matter how the surrounding sweep is parallelized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NackStream {
    state: u64,
    ppm: u32,
}

impl NackStream {
    /// A stream for consumer `stream_index` of the plan seeded `seed`,
    /// NACKing with probability `ppm` parts per million.
    pub fn new(seed: u64, stream_index: u64, ppm: u32) -> Self {
        NackStream {
            state: derive_seed(seed, stream_index),
            ppm,
        }
    }

    /// A stream that never NACKs.
    pub fn disabled() -> Self {
        NackStream { state: 0, ppm: 0 }
    }

    /// Draws the next decision: `true` = NACK this access.
    pub fn roll(&mut self) -> bool {
        if self.ppm == 0 {
            return false;
        }
        // SplitMix64: Weyl increment then avalanche.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % 1_000_000) < u64::from(self.ppm)
    }
}

/// Why a plan file was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// The file is not well-formed JSON.
    Json(json::JsonError),
    /// The JSON is well-formed but describes an invalid plan.
    Invalid(String),
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::Json(e) => write!(f, "fault plan: {e}"),
            FaultPlanError::Invalid(msg) => write!(f, "fault plan: {msg}"),
        }
    }
}

impl std::error::Error for FaultPlanError {}

impl From<json::JsonError> for FaultPlanError {
    fn from(e: json::JsonError) -> Self {
        FaultPlanError::Json(e)
    }
}

/// A complete, validated degradation scenario.
///
/// The default plan is empty: no fused SPEs, no windows, no NACKs —
/// behaviourally identical to a healthy machine.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for every randomized fault decision in this plan.
    pub seed: u64,
    /// Physical SPE indices (0..8) fused off; `Placement` helpers keep
    /// active logical SPEs away from these.
    pub fused_spes: Vec<u8>,
    /// EIB ring outages and derating.
    pub eib: EibFaults,
    /// Faults on the local XDR bank.
    pub local_bank: BankFaults,
    /// Faults on the remote XDR bank.
    pub remote_bank: BankFaults,
    /// MFC slot reduction and queue stalls.
    pub mfc: MfcFaults,
    /// Retry semantics for NACKed accesses.
    pub retry: RetryPolicy,
}

/// FNV-1a over a byte string (matches `cellsim_core::exec`'s local FNV).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl FaultPlan {
    /// Whether this plan injects nothing (behaviourally identical to a
    /// healthy machine; the seed and retry policy are then irrelevant).
    pub fn is_empty(&self) -> bool {
        self.fused_spes.is_empty()
            && self.eib.is_empty()
            && self.local_bank.is_empty()
            && self.remote_bank.is_empty()
            && self.mfc.is_empty()
    }

    /// Bitmask of fused physical SPEs (bit `k` = SPE `k` fused).
    pub fn fused_mask(&self) -> u8 {
        self.fused_spes.iter().fold(0u8, |m, &s| m | (1 << s))
    }

    /// A stable identity for run-cache keys: FNV-1a over the canonical
    /// JSON. Empty plans fingerprint to 0, the same key as "no plan",
    /// because they are behaviourally identical.
    pub fn fingerprint(&self) -> u64 {
        if self.is_empty() {
            return 0;
        }
        fnv1a(self.to_json().as_bytes())
    }

    /// Checks plan invariants (window sanity, ranges, retry bounds).
    ///
    /// # Errors
    ///
    /// [`FaultPlanError::Invalid`] naming the first offending field.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        let bad = |msg: String| Err(FaultPlanError::Invalid(msg));
        let check_window = |what: &str, w: &Window| {
            if w.cycles == 0 {
                return bad(format!("{what}: zero-length window at cycle {}", w.start));
            }
            Ok(())
        };
        let check_derate = |what: &str, d: &DerateWindow| {
            check_window(what, &d.window)?;
            if d.capacity_percent == 0 || d.capacity_percent > 100 {
                return bad(format!(
                    "{what}: capacity_percent must be 1..=100, got {}",
                    d.capacity_percent
                ));
            }
            Ok(())
        };

        let mut seen = [false; SPE_COUNT as usize];
        for &spe in &self.fused_spes {
            if spe >= SPE_COUNT {
                return bad(format!(
                    "fused_spes: physical SPE {spe} out of range (0..8)"
                ));
            }
            if std::mem::replace(&mut seen[spe as usize], true) {
                return bad(format!("fused_spes: SPE {spe} listed twice"));
            }
        }
        if self.fused_spes.len() >= SPE_COUNT as usize {
            return bad("fused_spes: at least one SPE must remain".into());
        }
        for o in &self.eib.ring_outages {
            if o.ring >= 16 {
                return bad(format!("eib.ring_outages: ring {} out of range", o.ring));
            }
            check_window("eib.ring_outages", &o.window)?;
        }
        for d in &self.eib.derate {
            check_derate("eib.derate", d)?;
        }
        for (name, bank) in [("local", &self.local_bank), ("remote", &self.remote_bank)] {
            for d in &bank.throttle {
                check_derate(&format!("banks.{name}.throttle"), d)?;
            }
            if bank.nack_ppm > 1_000_000 {
                return bad(format!(
                    "banks.{name}.nack_ppm must be 0..=1000000, got {}",
                    bank.nack_ppm
                ));
            }
        }
        if self.mfc.slot_limit == Some(0) {
            return bad("mfc.slot_limit must be at least 1".into());
        }
        for w in &self.mfc.queue_stalls {
            check_window("mfc.queue_stalls", w)?;
        }
        if self.retry.max_retries > 64 {
            return bad(format!(
                "retry.max_retries must be 0..=64, got {}",
                self.retry.max_retries
            ));
        }
        if self.retry.backoff_base == 0 {
            return bad("retry.backoff_base must be at least 1".into());
        }
        if self.retry.backoff_cap < self.retry.backoff_base {
            return bad("retry.backoff_cap must be >= retry.backoff_base".into());
        }
        Ok(())
    }

    /// Parses and validates a plan file.
    ///
    /// Every section is optional; `{}` is the empty plan. Unknown keys
    /// are rejected so typos degrade loudly instead of silently running
    /// healthy.
    ///
    /// # Errors
    ///
    /// [`FaultPlanError`] for malformed JSON or invalid plan contents.
    pub fn parse(text: &str) -> Result<FaultPlan, FaultPlanError> {
        let doc = json::parse(text)?;
        let top = expect_obj(&doc, "plan")?;
        reject_unknown(
            top,
            &[
                "version",
                "seed",
                "fused_spes",
                "eib",
                "banks",
                "mfc",
                "retry",
            ],
            "plan",
        )?;
        if let Some(v) = top.get("version") {
            let version = expect_u64(v, "version")?;
            if version != FAULT_PLAN_VERSION {
                return Err(FaultPlanError::Invalid(format!(
                    "unsupported plan version {version} (expected {FAULT_PLAN_VERSION})"
                )));
            }
        }
        let mut plan = FaultPlan {
            seed: opt_u64(top, "seed")?.unwrap_or(0),
            ..FaultPlan::default()
        };
        if let Some(v) = top.get("fused_spes") {
            for item in expect_array(v, "fused_spes")? {
                let spe = expect_u64(item, "fused_spes entry")?;
                plan.fused_spes.push(
                    u8::try_from(spe)
                        .map_err(|_| invalid(format!("fused_spes: SPE {spe} out of range")))?,
                );
            }
        }
        if let Some(v) = top.get("eib") {
            let eib = expect_obj(v, "eib")?;
            reject_unknown(eib, &["ring_outages", "derate"], "eib")?;
            if let Some(v) = eib.get("ring_outages") {
                for item in expect_array(v, "eib.ring_outages")? {
                    let o = expect_obj(item, "eib.ring_outages entry")?;
                    reject_unknown(o, &["ring", "start", "cycles"], "eib.ring_outages entry")?;
                    plan.eib.ring_outages.push(RingOutage {
                        ring: req_u64(o, "ring", "eib.ring_outages")? as usize,
                        window: parse_window(o, "eib.ring_outages")?,
                    });
                }
            }
            if let Some(v) = eib.get("derate") {
                plan.eib.derate = parse_derates(v, "eib.derate")?;
            }
        }
        if let Some(v) = top.get("banks") {
            let banks = expect_obj(v, "banks")?;
            reject_unknown(banks, &["local", "remote"], "banks")?;
            if let Some(v) = banks.get("local") {
                plan.local_bank = parse_bank(v, "banks.local")?;
            }
            if let Some(v) = banks.get("remote") {
                plan.remote_bank = parse_bank(v, "banks.remote")?;
            }
        }
        if let Some(v) = top.get("mfc") {
            let mfc = expect_obj(v, "mfc")?;
            reject_unknown(mfc, &["slot_limit", "queue_stalls"], "mfc")?;
            if let Some(limit) = opt_u64(mfc, "slot_limit")? {
                plan.mfc.slot_limit = Some(
                    u32::try_from(limit)
                        .map_err(|_| invalid(format!("mfc.slot_limit {limit} out of range")))?,
                );
            }
            if let Some(v) = mfc.get("queue_stalls") {
                for item in expect_array(v, "mfc.queue_stalls")? {
                    let w = expect_obj(item, "mfc.queue_stalls entry")?;
                    reject_unknown(w, &["start", "cycles"], "mfc.queue_stalls entry")?;
                    plan.mfc
                        .queue_stalls
                        .push(parse_window(w, "mfc.queue_stalls")?);
                }
            }
        }
        if let Some(v) = top.get("retry") {
            let retry = expect_obj(v, "retry")?;
            reject_unknown(
                retry,
                &["max_retries", "backoff_base", "backoff_cap"],
                "retry",
            )?;
            let defaults = RetryPolicy::default();
            plan.retry = RetryPolicy {
                max_retries: match opt_u64(retry, "max_retries")? {
                    Some(n) => u32::try_from(n)
                        .map_err(|_| invalid(format!("retry.max_retries {n} out of range")))?,
                    None => defaults.max_retries,
                },
                backoff_base: opt_u64(retry, "backoff_base")?.unwrap_or(defaults.backoff_base),
                backoff_cap: opt_u64(retry, "backoff_cap")?.unwrap_or(defaults.backoff_cap),
            };
        }
        plan.validate()?;
        Ok(plan)
    }

    /// Emits the canonical JSON form: every section present, fixed key
    /// order, no whitespace. `parse(to_json(p)) == p` for valid plans,
    /// and the output is the byte string [`FaultPlan::fingerprint`]
    /// hashes.
    pub fn to_json(&self) -> String {
        let windows = |ws: &[Window]| {
            let items: Vec<String> = ws
                .iter()
                .map(|w| format!("{{\"start\":{},\"cycles\":{}}}", w.start, w.cycles))
                .collect();
            format!("[{}]", items.join(","))
        };
        let derates = |ds: &[DerateWindow]| {
            let items: Vec<String> = ds
                .iter()
                .map(|d| {
                    format!(
                        "{{\"start\":{},\"cycles\":{},\"capacity_percent\":{}}}",
                        d.window.start, d.window.cycles, d.capacity_percent
                    )
                })
                .collect();
            format!("[{}]", items.join(","))
        };
        let bank = |b: &BankFaults| {
            format!(
                "{{\"throttle\":{},\"nack_ppm\":{}}}",
                derates(&b.throttle),
                b.nack_ppm
            )
        };
        let outages: Vec<String> = self
            .eib
            .ring_outages
            .iter()
            .map(|o| {
                format!(
                    "{{\"ring\":{},\"start\":{},\"cycles\":{}}}",
                    o.ring, o.window.start, o.window.cycles
                )
            })
            .collect();
        let fused: Vec<String> = self.fused_spes.iter().map(u8::to_string).collect();
        format!(
            "{{\"version\":{},\"seed\":{},\"fused_spes\":[{}],\
             \"eib\":{{\"ring_outages\":[{}],\"derate\":{}}},\
             \"banks\":{{\"local\":{},\"remote\":{}}},\
             \"mfc\":{{\"slot_limit\":{},\"queue_stalls\":{}}},\
             \"retry\":{{\"max_retries\":{},\"backoff_base\":{},\"backoff_cap\":{}}}}}",
            FAULT_PLAN_VERSION,
            self.seed,
            fused.join(","),
            outages.join(","),
            derates(&self.eib.derate),
            bank(&self.local_bank),
            bank(&self.remote_bank),
            match self.mfc.slot_limit {
                Some(n) => n.to_string(),
                None => "null".into(),
            },
            windows(&self.mfc.queue_stalls),
            self.retry.max_retries,
            self.retry.backoff_base,
            self.retry.backoff_cap,
        )
    }

    /// Cycles in `[0, run_cycles)` covered by *any* fault window (the
    /// union over EIB outages/derates, bank throttles, and MFC stalls)
    /// — the "degraded-window cycles" reported in fault metrics.
    pub fn degraded_cycles(&self, run_cycles: u64) -> u64 {
        let mut spans: Vec<(u64, u64)> = Vec::new();
        let mut push = |w: &Window| {
            let start = w.start.min(run_cycles);
            let end = w.end().min(run_cycles);
            if end > start {
                spans.push((start, end));
            }
        };
        for o in &self.eib.ring_outages {
            push(&o.window);
        }
        for d in &self.eib.derate {
            push(&d.window);
        }
        for bank in [&self.local_bank, &self.remote_bank] {
            for d in &bank.throttle {
                push(&d.window);
            }
        }
        for w in &self.mfc.queue_stalls {
            push(w);
        }
        spans.sort_unstable();
        let mut covered = 0u64;
        let mut reach = 0u64;
        for (start, end) in spans {
            let from = start.max(reach);
            if end > from {
                covered += end - from;
                reach = end;
            }
        }
        covered
    }
}

fn invalid(msg: String) -> FaultPlanError {
    FaultPlanError::Invalid(msg)
}

fn expect_obj<'a>(
    v: &'a JsonValue,
    what: &str,
) -> Result<&'a BTreeMap<String, JsonValue>, FaultPlanError> {
    v.as_object()
        .ok_or_else(|| invalid(format!("{what} must be a JSON object")))
}

fn expect_array<'a>(v: &'a JsonValue, what: &str) -> Result<&'a [JsonValue], FaultPlanError> {
    v.as_array()
        .ok_or_else(|| invalid(format!("{what} must be a JSON array")))
}

fn expect_u64(v: &JsonValue, what: &str) -> Result<u64, FaultPlanError> {
    v.as_u64()
        .ok_or_else(|| invalid(format!("{what} must be a non-negative integer")))
}

fn opt_u64(map: &BTreeMap<String, JsonValue>, key: &str) -> Result<Option<u64>, FaultPlanError> {
    // An explicit `null` means the same as an absent key: `to_json`
    // emits `"slot_limit":null` for healthy MFCs, and the canonical
    // round-trip `parse(to_json(p)) == p` has to hold for such plans.
    match map.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => expect_u64(v, key).map(Some),
    }
}

fn req_u64(
    map: &BTreeMap<String, JsonValue>,
    key: &str,
    what: &str,
) -> Result<u64, FaultPlanError> {
    let v = map
        .get(key)
        .ok_or_else(|| invalid(format!("{what}: missing \"{key}\"")))?;
    expect_u64(v, &format!("{what}.{key}"))
}

fn reject_unknown(
    map: &BTreeMap<String, JsonValue>,
    known: &[&str],
    what: &str,
) -> Result<(), FaultPlanError> {
    for key in map.keys() {
        if !known.contains(&key.as_str()) {
            return Err(invalid(format!("{what}: unknown key \"{key}\"")));
        }
    }
    Ok(())
}

fn parse_window(map: &BTreeMap<String, JsonValue>, what: &str) -> Result<Window, FaultPlanError> {
    Ok(Window {
        start: req_u64(map, "start", what)?,
        cycles: req_u64(map, "cycles", what)?,
    })
}

fn parse_derates(v: &JsonValue, what: &str) -> Result<Vec<DerateWindow>, FaultPlanError> {
    let mut out = Vec::new();
    for item in expect_array(v, what)? {
        let d = expect_obj(item, &format!("{what} entry"))?;
        reject_unknown(
            d,
            &["start", "cycles", "capacity_percent"],
            &format!("{what} entry"),
        )?;
        out.push(DerateWindow {
            window: parse_window(d, what)?,
            capacity_percent: u32::try_from(req_u64(d, "capacity_percent", what)?)
                .map_err(|_| invalid(format!("{what}: capacity_percent out of range")))?,
        });
    }
    Ok(out)
}

fn parse_bank(v: &JsonValue, what: &str) -> Result<BankFaults, FaultPlanError> {
    let bank = expect_obj(v, what)?;
    reject_unknown(bank, &["throttle", "nack_ppm"], what)?;
    let mut out = BankFaults::default();
    if let Some(v) = bank.get("throttle") {
        out.throttle = parse_derates(v, &format!("{what}.throttle"))?;
    }
    if let Some(ppm) = opt_u64(bank, "nack_ppm")? {
        out.nack_ppm =
            u32::try_from(ppm).map_err(|_| invalid(format!("{what}.nack_ppm out of range")))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FaultPlan {
        FaultPlan {
            seed: 7,
            fused_spes: vec![7],
            eib: EibFaults {
                ring_outages: vec![RingOutage {
                    ring: 1,
                    window: Window {
                        start: 100,
                        cycles: 50,
                    },
                }],
                derate: vec![DerateWindow {
                    window: Window {
                        start: 0,
                        cycles: 1000,
                    },
                    capacity_percent: 25,
                }],
            },
            local_bank: BankFaults {
                throttle: vec![DerateWindow {
                    window: Window {
                        start: 10,
                        cycles: 20,
                    },
                    capacity_percent: 50,
                }],
                nack_ppm: 2000,
            },
            remote_bank: BankFaults::default(),
            mfc: MfcFaults {
                slot_limit: Some(2),
                queue_stalls: vec![Window {
                    start: 5,
                    cycles: 5,
                }],
            },
            retry: RetryPolicy::default(),
        }
    }

    #[test]
    fn windows_contain_and_bound() {
        let w = Window {
            start: 10,
            cycles: 5,
        };
        assert!(!w.contains(9));
        assert!(w.contains(10));
        assert!(w.contains(14));
        assert!(!w.contains(15));
        assert_eq!(w.next_boundary_after(0), Some(10));
        assert_eq!(w.next_boundary_after(10), Some(15));
        assert_eq!(w.next_boundary_after(14), Some(15));
        assert_eq!(w.next_boundary_after(15), None);
    }

    #[test]
    fn eib_faults_answer_time_queries() {
        let plan = sample_plan();
        assert!(plan.eib.ring_out(1, 120));
        assert!(!plan.eib.ring_out(0, 120));
        assert!(!plan.eib.ring_out(1, 150));
        assert_eq!(plan.eib.capacity_percent(500), 25);
        assert_eq!(plan.eib.capacity_percent(1000), 100);
        assert_eq!(plan.eib.next_boundary_after(0), Some(100));
        assert_eq!(plan.eib.next_boundary_after(120), Some(150));
    }

    #[test]
    fn retry_backoff_is_bounded_exponential() {
        let policy = RetryPolicy {
            max_retries: 8,
            backoff_base: 32,
            backoff_cap: 100,
        };
        assert_eq!(policy.backoff(1), 32);
        assert_eq!(policy.backoff(2), 64);
        assert_eq!(policy.backoff(3), 100, "capped");
        assert_eq!(policy.backoff(60), 100, "no overflow at large attempts");
    }

    #[test]
    fn nack_stream_is_deterministic_and_respects_ppm() {
        let mut a = NackStream::new(7, 0, 500_000);
        let mut b = NackStream::new(7, 0, 500_000);
        let draws_a: Vec<bool> = (0..64).map(|_| a.roll()).collect();
        let draws_b: Vec<bool> = (0..64).map(|_| b.roll()).collect();
        assert_eq!(draws_a, draws_b);
        assert!(draws_a.iter().any(|&d| d) && draws_a.iter().any(|&d| !d));
        let mut never = NackStream::new(7, 0, 0);
        assert!((0..1000).all(|_| !never.roll()));
        let mut always = NackStream::new(7, 0, 1_000_000);
        assert!((0..1000).all(|_| always.roll()));
    }

    #[test]
    fn streams_decorrelate_by_index() {
        let mut a = NackStream::new(7, 0, 500_000);
        let mut b = NackStream::new(7, 1, 500_000);
        let draws_a: Vec<bool> = (0..64).map(|_| a.roll()).collect();
        let draws_b: Vec<bool> = (0..64).map(|_| b.roll()).collect();
        assert_ne!(draws_a, draws_b);
    }

    #[test]
    fn empty_plan_parses_and_fingerprints_to_zero() {
        let plan = FaultPlan::parse("{}").unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.fingerprint(), 0);
        assert_eq!(plan, FaultPlan::default());
        // A non-empty plan fingerprints away from the healthy key.
        assert_ne!(sample_plan().fingerprint(), 0);
    }

    #[test]
    fn canonical_json_round_trips() {
        let plan = sample_plan();
        let json = plan.to_json();
        let back = FaultPlan::parse(&json).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.to_json(), json);
        assert_eq!(back.fingerprint(), plan.fingerprint());
    }

    #[test]
    fn healthy_mfc_round_trips_through_its_own_json() {
        // `to_json` writes `"slot_limit":null` when no limit is set; the
        // parser must read that back as absent, not reject the document
        // the serializer itself produced.
        let mut plan = sample_plan();
        plan.mfc.slot_limit = None;
        let json = plan.to_json();
        assert!(json.contains("\"slot_limit\":null"), "json: {json}");
        let back = FaultPlan::parse(&json).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn parse_accepts_sparse_documents() {
        let plan =
            FaultPlan::parse(r#"{"seed": 3, "banks": {"remote": {"nack_ppm": 10}}}"#).unwrap();
        assert_eq!(plan.seed, 3);
        assert_eq!(plan.remote_bank.nack_ppm, 10);
        assert!(plan.local_bank.is_empty());
        assert_eq!(plan.retry, RetryPolicy::default());
    }

    #[test]
    fn parse_rejects_bad_documents() {
        for (doc, why) in [
            ("[]", "non-object"),
            (r#"{"version": 2}"#, "bad version"),
            (r#"{"sed": 1}"#, "unknown key"),
            (r#"{"fused_spes": [8]}"#, "SPE out of range"),
            (r#"{"fused_spes": [0,0]}"#, "duplicate SPE"),
            (r#"{"fused_spes": [0,1,2,3,4,5,6,7]}"#, "no SPE left"),
            (
                r#"{"eib": {"derate": [{"start":0,"cycles":0,"capacity_percent":50}]}}"#,
                "zero-length window",
            ),
            (
                r#"{"eib": {"derate": [{"start":0,"cycles":5,"capacity_percent":0}]}}"#,
                "zero capacity",
            ),
            (
                r#"{"banks": {"local": {"nack_ppm": 1000001}}}"#,
                "ppm over 1e6",
            ),
            (r#"{"mfc": {"slot_limit": 0}}"#, "zero slots"),
            (
                r#"{"retry": {"backoff_base": 8, "backoff_cap": 4}}"#,
                "cap below base",
            ),
        ] {
            assert!(FaultPlan::parse(doc).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn degraded_cycles_unions_and_clips() {
        let plan = sample_plan();
        // Windows: [100,150) ∪ [0,1000) ∪ [10,30) ∪ [5,10) = [0,1000).
        assert_eq!(plan.degraded_cycles(2000), 1000);
        assert_eq!(plan.degraded_cycles(400), 400, "clipped to the run");
        assert_eq!(FaultPlan::default().degraded_cycles(1000), 0);
    }

    #[test]
    fn fused_mask_matches_list() {
        let plan = FaultPlan {
            fused_spes: vec![0, 7],
            ..FaultPlan::default()
        };
        assert_eq!(plan.fused_mask(), 0b1000_0001);
    }
}
