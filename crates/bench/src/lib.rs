//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Each ablation varies one structural parameter of the simulated blade
//! and reports the bandwidth of the experiment that parameter governs,
//! using the same [`Figure`] rendering as the paper reproductions.
//!
//! Every ablation accepts a shared [`SweepExecutor`] (`_with` variants),
//! so the sweep parallelizes under `--jobs` and repeated machine/plan
//! points are answered from the run cache. Machine variants never alias
//! in the cache: the [`RunKey`](cellsim_core::exec::RunKey) includes the
//! [`CellConfig`] fingerprint, so e.g. the four-ring point of
//! [`ablation_rings`] and the circuit-hold point of
//! [`ablation_occupancy`] (the same stock machine and plan) share runs,
//! while every other variant simulates its own.

use std::sync::Arc;

use cellsim_core::exec::{RunSpec, SweepExecutor, Workload};
use cellsim_core::experiments::ExperimentConfig;
use cellsim_core::report::{Figure, Point, Series};
use cellsim_core::{CellConfig, CellSystem, FabricReport, Placement, SyncPolicy, TransferPlan};
use cellsim_eib::RingOccupancy;
use cellsim_mem::NumaPolicy;

/// Mean of `reduce` over the placement lottery, swept on `exec`.
fn sweep_mean(
    exec: &SweepExecutor,
    system: &CellSystem,
    cfg: &ExperimentConfig,
    workload: Workload,
    plan: &Arc<TransferPlan>,
    reduce: fn(&FabricReport) -> f64,
) -> f64 {
    let specs = (0..cfg.placements)
        .map(|k| {
            RunSpec::new(
                system,
                workload.clone(),
                Placement::lottery(cfg.seed, k as u64),
                Arc::clone(plan),
            )
        })
        .collect();
    let reports = exec.run(specs);
    reports.iter().map(|r| reduce(r)).sum::<f64>() / cfg.placements as f64
}

fn cycle8_plan(cfg: &ExperimentConfig, elem: u32) -> TransferPlan {
    let mut b = TransferPlan::builder();
    for spe in 0..8 {
        b = b.exchange_with(
            spe,
            (spe + 1) % 8,
            cfg.volume_per_spe,
            elem,
            SyncPolicy::AfterAll,
        );
    }
    b.build().expect("valid plan")
}

fn cycle8_workload(cfg: &ExperimentConfig, elem: u32) -> Workload {
    Workload {
        pattern: "cycle",
        spes: 8,
        volume: cfg.volume_per_spe,
        elem,
        list: false,
        sync: SyncPolicy::AfterAll,
        params: 0,
    }
}

fn mem_get_workload(cfg: &ExperimentConfig, spes: u8, elem: u32) -> Workload {
    Workload {
        pattern: "mem-get",
        spes,
        volume: cfg.volume_per_spe,
        elem,
        list: false,
        sync: SyncPolicy::AfterAll,
        params: 0,
    }
}

/// Single-SPE memory GET bandwidth versus the MFC's outstanding-packet
/// budget: the Little's-law knob behind the paper's 10 GB/s single-SPE
/// ceiling. Runs on `exec` (identity placement: one run per budget).
pub fn ablation_outstanding_with(exec: &SweepExecutor, cfg: &ExperimentConfig) -> Figure {
    let plan = Arc::new(
        TransferPlan::builder()
            .get_from_memory(0, cfg.volume_per_spe, 16 * 1024, SyncPolicy::AfterAll)
            .build()
            .expect("valid plan"),
    );
    let points = [2usize, 4, 8, 16, 32]
        .into_iter()
        .map(|budget| {
            let mut machine = CellConfig::default();
            machine.mfc.max_outstanding_packets = budget;
            let system = CellSystem::new(machine);
            let specs = vec![RunSpec::new(
                &system,
                mem_get_workload(cfg, 1, 16 * 1024),
                Placement::identity(),
                Arc::clone(&plan),
            )];
            Point {
                x: format!("{budget}"),
                gbps: exec.run(specs)[0].aggregate_gbps,
            }
        })
        .collect();
    Figure {
        id: "A1".into(),
        title: "1-SPE memory GET vs MFC outstanding-packet budget".into(),
        x_label: "budget".into(),
        series: vec![Series {
            label: "GET".into(),
            points,
        }],
    }
}

/// [`ablation_outstanding_with`] on a private executor.
pub fn ablation_outstanding(cfg: &ExperimentConfig) -> Figure {
    ablation_outstanding_with(&SweepExecutor::default(), cfg)
}

/// 8-SPE cycle bandwidth versus the number of EIB rings per direction:
/// how much of the machine's behaviour the four-ring topology explains.
pub fn ablation_rings_with(exec: &SweepExecutor, cfg: &ExperimentConfig) -> Figure {
    let plan = Arc::new(cycle8_plan(cfg, 16 * 1024));
    let points = [1usize, 2, 4]
        .into_iter()
        .map(|rings| {
            let mut machine = CellConfig::default();
            machine.eib.rings_per_direction = rings;
            let system = CellSystem::new(machine);
            Point {
                x: format!("{}", 2 * rings),
                gbps: sweep_mean(
                    exec,
                    &system,
                    cfg,
                    cycle8_workload(cfg, 16 * 1024),
                    &plan,
                    |r| r.aggregate_gbps,
                ),
            }
        })
        .collect();
    Figure {
        id: "A2".into(),
        title: "8-SPE cycle vs total EIB ring count".into(),
        x_label: "rings".into(),
        series: vec![Series {
            label: "cycle".into(),
            points,
        }],
    }
}

/// [`ablation_rings_with`] on a private executor.
pub fn ablation_rings(cfg: &ExperimentConfig) -> Figure {
    ablation_rings_with(&SweepExecutor::default(), cfg)
}

/// Four-SPE memory GET bandwidth under each NUMA placement policy: why
/// spreading buffers over both banks beats one bank.
pub fn ablation_numa_with(exec: &SweepExecutor, cfg: &ExperimentConfig) -> Figure {
    let mut b = TransferPlan::builder();
    for spe in 0..4 {
        b = b.get_from_memory(spe, cfg.volume_per_spe, 16 * 1024, SyncPolicy::AfterAll);
    }
    let plan = Arc::new(b.build().expect("valid plan"));
    let policies = [
        ("local-only", NumaPolicy::LocalOnly),
        ("round-robin", NumaPolicy::RoundRobinRegions),
        (
            "interleave-64K",
            NumaPolicy::InterleavePages {
                page_bytes: 64 << 10,
            },
        ),
    ];
    let points = policies
        .into_iter()
        .map(|(name, policy)| {
            let machine = CellConfig {
                numa: policy,
                ..CellConfig::default()
            };
            let system = CellSystem::new(machine);
            Point {
                x: name.into(),
                gbps: sweep_mean(
                    exec,
                    &system,
                    cfg,
                    mem_get_workload(cfg, 4, 16 * 1024),
                    &plan,
                    |r| r.sum_gbps,
                ),
            }
        })
        .collect();
    Figure {
        id: "A3".into(),
        title: "4-SPE memory GET vs NUMA policy".into(),
        x_label: "policy".into(),
        series: vec![Series {
            label: "GET".into(),
            points,
        }],
    }
}

/// [`ablation_numa_with`] on a private executor.
pub fn ablation_numa(cfg: &ExperimentConfig) -> Figure {
    ablation_numa_with(&SweepExecutor::default(), cfg)
}

/// 8-SPE cycle bandwidth under circuit-hold versus idealized pipelined
/// ring occupancy: how much the arbiter's conservative path holding
/// costs under saturation.
pub fn ablation_occupancy_with(exec: &SweepExecutor, cfg: &ExperimentConfig) -> Figure {
    let plan = Arc::new(cycle8_plan(cfg, 16 * 1024));
    let points = [
        ("circuit-hold", RingOccupancy::CircuitHold),
        ("pipelined", RingOccupancy::Pipelined),
    ]
    .into_iter()
    .map(|(name, occ)| {
        let mut machine = CellConfig::default();
        machine.eib.occupancy = occ;
        let system = CellSystem::new(machine);
        Point {
            x: name.into(),
            gbps: sweep_mean(
                exec,
                &system,
                cfg,
                cycle8_workload(cfg, 16 * 1024),
                &plan,
                |r| r.aggregate_gbps,
            ),
        }
    })
    .collect();
    Figure {
        id: "A4".into(),
        title: "8-SPE cycle vs ring occupancy model".into(),
        x_label: "model".into(),
        series: vec![Series {
            label: "cycle".into(),
            points,
        }],
    }
}

/// [`ablation_occupancy_with`] on a private executor.
pub fn ablation_occupancy(cfg: &ExperimentConfig) -> Figure {
    ablation_occupancy_with(&SweepExecutor::default(), cfg)
}

/// Runs every ablation on `exec`.
pub fn all_ablations_with(exec: &SweepExecutor, cfg: &ExperimentConfig) -> Vec<Figure> {
    vec![
        ablation_outstanding_with(exec, cfg),
        ablation_rings_with(exec, cfg),
        ablation_numa_with(exec, cfg),
        ablation_occupancy_with(exec, cfg),
    ]
}

/// Runs every ablation on a private executor.
pub fn all_ablations(cfg: &ExperimentConfig) -> Vec<Figure> {
    all_ablations_with(&SweepExecutor::default(), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            volume_per_spe: 256 << 10,
            dma_elem_sizes: vec![16384],
            placements: 2,
            seed: 5,
        }
    }

    #[test]
    fn outstanding_budget_is_monotonic_until_bank_peak() {
        let fig = ablation_outstanding(&tiny());
        let pts = &fig.series[0].points;
        assert!(pts[0].gbps < pts[2].gbps, "2 < 8 outstanding");
        // Beyond the bank's sustainable rate, more budget stops helping.
        assert!(pts[4].gbps <= pts[2].gbps * 1.8);
    }

    #[test]
    fn fewer_rings_hurt_the_cycle() {
        let fig = ablation_rings(&tiny());
        let pts = &fig.series[0].points;
        assert!(pts[0].gbps < pts[1].gbps, "2 rings < 4 rings");
    }

    #[test]
    fn numa_spreading_beats_local_only() {
        let fig = ablation_numa(&tiny());
        let local = fig.value("GET", "local-only").unwrap();
        let rr = fig.value("GET", "round-robin").unwrap();
        assert!(rr > local, "round-robin {rr} must beat local-only {local}");
    }

    #[test]
    fn pipelined_occupancy_is_at_least_as_fast() {
        let fig = ablation_occupancy(&tiny());
        let hold = fig.value("cycle", "circuit-hold").unwrap();
        let pipe = fig.value("cycle", "pipelined").unwrap();
        assert!(pipe >= hold * 0.95, "hold={hold} pipe={pipe}");
    }

    #[test]
    fn stock_machine_points_share_runs_across_ablations() {
        let exec = SweepExecutor::new(1);
        let cfg = tiny();
        ablation_rings_with(&exec, &cfg);
        let after_rings = exec.stats();
        // The circuit-hold point of A4 is the stock machine running the
        // same cycle plan as A2's four-ring point.
        ablation_occupancy_with(&exec, &cfg);
        let after_occ = exec.stats();
        assert!(after_occ.hits >= after_rings.hits + cfg.placements as u64);
    }
}
