//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Each ablation varies one structural parameter of the simulated blade
//! and reports the bandwidth of the experiment that parameter governs,
//! using the same [`Figure`] rendering as the paper reproductions.

use cellsim_core::experiments::ExperimentConfig;
use cellsim_core::report::{Figure, Point, Series};
use cellsim_core::{CellConfig, CellSystem, Placement, SyncPolicy, TransferPlan};
use cellsim_eib::RingOccupancy;
use cellsim_mem::NumaPolicy;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mean_aggregate(system: &CellSystem, plan: &TransferPlan, cfg: &ExperimentConfig) -> f64 {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.placements)
        .map(|_| {
            system
                .run(&Placement::random(&mut rng), plan)
                .aggregate_gbps
        })
        .sum::<f64>()
        / cfg.placements as f64
}

fn cycle8_plan(cfg: &ExperimentConfig, elem: u32) -> TransferPlan {
    let mut b = TransferPlan::builder();
    for spe in 0..8 {
        b = b.exchange_with(
            spe,
            (spe + 1) % 8,
            cfg.volume_per_spe,
            elem,
            SyncPolicy::AfterAll,
        );
    }
    b.build().expect("valid plan")
}

/// Single-SPE memory GET bandwidth versus the MFC's outstanding-packet
/// budget: the Little's-law knob behind the paper's 10 GB/s single-SPE
/// ceiling.
pub fn ablation_outstanding(cfg: &ExperimentConfig) -> Figure {
    let plan = TransferPlan::builder()
        .get_from_memory(0, cfg.volume_per_spe, 16 * 1024, SyncPolicy::AfterAll)
        .build()
        .expect("valid plan");
    let points = [2usize, 4, 8, 16, 32]
        .into_iter()
        .map(|budget| {
            let mut machine = CellConfig::default();
            machine.mfc.max_outstanding_packets = budget;
            let system = CellSystem::new(machine);
            Point {
                x: format!("{budget}"),
                gbps: system.run(&Placement::identity(), &plan).aggregate_gbps,
            }
        })
        .collect();
    Figure {
        id: "A1".into(),
        title: "1-SPE memory GET vs MFC outstanding-packet budget".into(),
        x_label: "budget".into(),
        series: vec![Series {
            label: "GET".into(),
            points,
        }],
    }
}

/// 8-SPE cycle bandwidth versus the number of EIB rings per direction:
/// how much of the machine's behaviour the four-ring topology explains.
pub fn ablation_rings(cfg: &ExperimentConfig) -> Figure {
    let plan = cycle8_plan(cfg, 16 * 1024);
    let points = [1usize, 2, 4]
        .into_iter()
        .map(|rings| {
            let mut machine = CellConfig::default();
            machine.eib.rings_per_direction = rings;
            let system = CellSystem::new(machine);
            Point {
                x: format!("{}", 2 * rings),
                gbps: mean_aggregate(&system, &plan, cfg),
            }
        })
        .collect();
    Figure {
        id: "A2".into(),
        title: "8-SPE cycle vs total EIB ring count".into(),
        x_label: "rings".into(),
        series: vec![Series {
            label: "cycle".into(),
            points,
        }],
    }
}

/// Four-SPE memory GET bandwidth under each NUMA placement policy: why
/// spreading buffers over both banks beats one bank.
pub fn ablation_numa(cfg: &ExperimentConfig) -> Figure {
    let mut b = TransferPlan::builder();
    for spe in 0..4 {
        b = b.get_from_memory(spe, cfg.volume_per_spe, 16 * 1024, SyncPolicy::AfterAll);
    }
    let plan = b.build().expect("valid plan");
    let policies = [
        ("local-only", NumaPolicy::LocalOnly),
        ("round-robin", NumaPolicy::RoundRobinRegions),
        (
            "interleave-64K",
            NumaPolicy::InterleavePages {
                page_bytes: 64 << 10,
            },
        ),
    ];
    let points = policies
        .into_iter()
        .map(|(name, policy)| {
            let machine = CellConfig {
                numa: policy,
                ..CellConfig::default()
            };
            let system = CellSystem::new(machine);
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let mean = (0..cfg.placements)
                .map(|_| system.run(&Placement::random(&mut rng), &plan).sum_gbps)
                .sum::<f64>()
                / cfg.placements as f64;
            Point {
                x: name.into(),
                gbps: mean,
            }
        })
        .collect();
    Figure {
        id: "A3".into(),
        title: "4-SPE memory GET vs NUMA policy".into(),
        x_label: "policy".into(),
        series: vec![Series {
            label: "GET".into(),
            points,
        }],
    }
}

/// 8-SPE cycle bandwidth under circuit-hold versus idealized pipelined
/// ring occupancy: how much the arbiter's conservative path holding
/// costs under saturation.
pub fn ablation_occupancy(cfg: &ExperimentConfig) -> Figure {
    let plan = cycle8_plan(cfg, 16 * 1024);
    let points = [
        ("circuit-hold", RingOccupancy::CircuitHold),
        ("pipelined", RingOccupancy::Pipelined),
    ]
    .into_iter()
    .map(|(name, occ)| {
        let mut machine = CellConfig::default();
        machine.eib.occupancy = occ;
        let system = CellSystem::new(machine);
        Point {
            x: name.into(),
            gbps: mean_aggregate(&system, &plan, cfg),
        }
    })
    .collect();
    Figure {
        id: "A4".into(),
        title: "8-SPE cycle vs ring occupancy model".into(),
        x_label: "model".into(),
        series: vec![Series {
            label: "cycle".into(),
            points,
        }],
    }
}

/// Runs every ablation.
pub fn all_ablations(cfg: &ExperimentConfig) -> Vec<Figure> {
    vec![
        ablation_outstanding(cfg),
        ablation_rings(cfg),
        ablation_numa(cfg),
        ablation_occupancy(cfg),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            volume_per_spe: 256 << 10,
            dma_elem_sizes: vec![16384],
            placements: 2,
            seed: 5,
        }
    }

    #[test]
    fn outstanding_budget_is_monotonic_until_bank_peak() {
        let fig = ablation_outstanding(&tiny());
        let pts = &fig.series[0].points;
        assert!(pts[0].gbps < pts[2].gbps, "2 < 8 outstanding");
        // Beyond the bank's sustainable rate, more budget stops helping.
        assert!(pts[4].gbps <= pts[2].gbps * 1.8);
    }

    #[test]
    fn fewer_rings_hurt_the_cycle() {
        let fig = ablation_rings(&tiny());
        let pts = &fig.series[0].points;
        assert!(pts[0].gbps < pts[1].gbps, "2 rings < 4 rings");
    }

    #[test]
    fn numa_spreading_beats_local_only() {
        let fig = ablation_numa(&tiny());
        let local = fig.value("GET", "local-only").unwrap();
        let rr = fig.value("GET", "round-robin").unwrap();
        assert!(rr > local, "round-robin {rr} must beat local-only {local}");
    }

    #[test]
    fn pipelined_occupancy_is_at_least_as_fast() {
        let fig = ablation_occupancy(&tiny());
        let hold = fig.value("cycle", "circuit-hold").unwrap();
        let pipe = fig.value("cycle", "pipelined").unwrap();
        assert!(pipe >= hold * 0.95, "hold={hold} pipe={pipe}");
    }
}
