//! Queries the per-run trace stores recorded by `repro --run-dir` and
//! `cellsim-serve --run-dir`.
//!
//! ```text
//! cellsim-trace <dir> [command] [filters] [--format text|csv|json]
//!
//! <dir> is either one run's directory (holding manifest.json and
//! trace.bin) or a sweep root (one subdirectory per run key); commands
//! cover every run found, in sorted order.
//!
//! commands:
//!   summary             one line per run: identity, bandwidth, event and
//!                       packet totals, stall digest (default)
//!   events              list events passing the filters; --limit N caps
//!                       the listing (default 200, 0 = unlimited)
//!   counts              event counts by phase, after filters, summed
//!                       over the selected runs
//!   check               reconcile every store against its manifest's
//!                       FabricMetrics digest: full-decode recount ==
//!                       indexed trailer == manifest; deliver events ==
//!                       packets; delivered bytes == total bytes; issues
//!                       == packets + abandoned; checksums match
//!   top-stalls [N]      the N runs with the most stall cycles
//!                       (default 10), worst first
//!   chrome --out <f>    write one run's store as Chrome tracing JSON
//!                       (open with chrome://tracing or Perfetto)
//!
//! filters (events/counts):
//!   --spe N             initiating logical SPE (0-7)
//!   --phase <p>         issue | mem | grant | deliver
//!   --path <p>          mem-get | mem-put | ls-get | ls-put
//!   --cycle-from N      at or after bus cycle N
//!   --cycle-to N        at or before bus cycle N (inclusive)
//!
//! output:
//!   --format <f>        text (default) | csv | json
//!   --limit N           events listed per run (events command only)
//!
//! exit codes:
//!   0  success
//!   1  check found a reconciliation drift
//!   2  a store or manifest is corrupt, truncated, or unreadable
//!   3  bad invocation
//! ```
//!
//! Every failure is reported as a message and an exit code, never a
//! panic — a truncated `trace.bin` is a diagnosable condition, not a
//! crash.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cellsim_core::tracestore::{
    parse_path, Manifest, TraceFilter, TraceKind, TraceStore, TraceStoreError, MANIFEST_FILE,
};
use cellsim_core::CellConfig;

const EXIT_DRIFT: u8 = 1;
const EXIT_CORRUPT: u8 = 2;
const EXIT_BAD_INVOCATION: u8 = 3;

/// Listing cap of the `events` command when `--limit` is not given.
const DEFAULT_EVENT_LIMIT: u64 = 200;

/// Writes one stdout line, exiting cleanly when the reader hung up —
/// `cellsim-trace events | head` must end the pipeline, not panic.
fn out(args: std::fmt::Arguments) {
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = stdout
        .write_fmt(args)
        .and_then(|()| stdout.write_all(b"\n"))
    {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        eprintln!("error: stdout: {e}");
        std::process::exit(i32::from(EXIT_BAD_INVOCATION));
    }
}

macro_rules! outln {
    ($($arg:tt)*) => { out(format_args!($($arg)*)) };
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Csv,
    Json,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Command {
    Summary,
    Events,
    Counts,
    Check,
    TopStalls(usize),
    Chrome,
}

struct Args {
    dir: PathBuf,
    command: Command,
    filter: TraceFilter,
    format: Format,
    limit: u64,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut dir = None;
    let mut command = None;
    let mut filter = TraceFilter::default();
    let mut format = Format::Text;
    let mut limit = DEFAULT_EVENT_LIMIT;
    let mut out = None;
    let mut argv = std::env::args().skip(1).peekable();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--spe" => {
                let n = argv.next().ok_or("--spe needs a value")?;
                let spe: u8 = n.parse().map_err(|_| format!("bad SPE: {n}"))?;
                if spe > 7 {
                    return Err(format!("--spe must be 0-7, got {spe}"));
                }
                filter.spe = Some(spe);
            }
            "--phase" => {
                let p = argv.next().ok_or("--phase needs a value")?;
                filter.kind = Some(
                    TraceKind::parse(&p)
                        .ok_or(format!("bad phase: {p} (issue|mem|grant|deliver)"))?,
                );
            }
            "--path" => {
                let p = argv.next().ok_or("--path needs a value")?;
                filter.path = Some(
                    parse_path(&p)
                        .ok_or(format!("bad path: {p} (mem-get|mem-put|ls-get|ls-put)"))?,
                );
            }
            "--cycle-from" => {
                let n = argv.next().ok_or("--cycle-from needs a value")?;
                filter.cycle_from = Some(n.parse().map_err(|_| format!("bad cycle: {n}"))?);
            }
            "--cycle-to" => {
                let n = argv.next().ok_or("--cycle-to needs a value")?;
                filter.cycle_to = Some(n.parse().map_err(|_| format!("bad cycle: {n}"))?);
            }
            "--format" => {
                let f = argv.next().ok_or("--format needs a value")?;
                format = match f.as_str() {
                    "text" => Format::Text,
                    "csv" => Format::Csv,
                    "json" => Format::Json,
                    other => return Err(format!("bad format: {other} (text|csv|json)")),
                };
            }
            "--limit" => {
                let n = argv.next().ok_or("--limit needs a value")?;
                limit = n.parse().map_err(|_| format!("bad limit: {n}"))?;
            }
            "--out" => {
                let f = argv.next().ok_or("--out needs a file path")?;
                out = Some(PathBuf::from(f));
            }
            "--help" | "-h" => {
                outln!(
                    "cellsim-trace <dir> [summary|events|counts|check|top-stalls [N]|\
                     chrome --out <file>]\n       \
                     [--spe N] [--phase issue|mem|grant|deliver] \
                     [--path mem-get|mem-put|ls-get|ls-put]\n       \
                     [--cycle-from N] [--cycle-to N] [--format text|csv|json] \
                     [--limit N]\n\n\
                     <dir> is a run directory (manifest.json + trace.bin) or a sweep \
                     root of them.\n\n\
                     exit codes:\n  \
                     0  success\n  \
                     1  check found a reconciliation drift\n  \
                     2  a store or manifest is corrupt, truncated, or unreadable\n  \
                     3  bad invocation"
                );
                std::process::exit(0);
            }
            "summary" | "events" | "counts" | "check" | "chrome" if command.is_none() => {
                command = Some(match arg.as_str() {
                    "summary" => Command::Summary,
                    "events" => Command::Events,
                    "counts" => Command::Counts,
                    "check" => Command::Check,
                    _ => Command::Chrome,
                });
            }
            "top-stalls" if command.is_none() => {
                let n = match argv.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let n = argv.next().expect("peeked");
                        n.parse()
                            .map_err(|_| format!("bad top-stalls count: {n}"))?
                    }
                    _ => 10,
                };
                command = Some(Command::TopStalls(n));
            }
            other if dir.is_none() && !other.starts_with("--") => {
                dir = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Args {
        dir: dir.ok_or("usage: cellsim-trace <dir> [command] (see --help)")?,
        command: command.unwrap_or(Command::Summary),
        filter,
        format,
        limit,
        out,
    })
}

/// One discovered run: its directory name (the key fingerprint for
/// sweep roots, the directory's own name for a direct run dir) and its
/// parsed manifest.
struct Run {
    name: String,
    dir: PathBuf,
    manifest: Manifest,
}

impl Run {
    fn open_store(&self) -> Result<TraceStore, CliError> {
        TraceStore::open(&self.dir.join(&self.manifest.trace_file))
            .map_err(|e| CliError::Corrupt(format!("{}: {e}", self.name)))
    }
}

/// CLI failures, ordered by exit code.
enum CliError {
    /// Exit 2: a store or manifest failed to open or validate.
    Corrupt(String),
    /// Exit 3: the invocation cannot be satisfied.
    Usage(String),
}

impl CliError {
    fn report(&self) -> ExitCode {
        match self {
            CliError::Corrupt(msg) => {
                eprintln!("error: {msg}");
                ExitCode::from(EXIT_CORRUPT)
            }
            CliError::Usage(msg) => {
                eprintln!("error: {msg}");
                ExitCode::from(EXIT_BAD_INVOCATION)
            }
        }
    }
}

/// Finds the runs under `dir`: the directory itself when it holds a
/// manifest, else every immediate subdirectory that does, sorted by
/// name so output order is deterministic.
fn discover(dir: &Path) -> Result<Vec<Run>, CliError> {
    let load = |name: String, dir: PathBuf| -> Result<Run, CliError> {
        let manifest = Manifest::load(&dir)
            .map_err(|e| CliError::Corrupt(format!("{}: {e}", dir.display())))?;
        Ok(Run {
            name,
            dir,
            manifest,
        })
    };
    if dir.join(MANIFEST_FILE).is_file() {
        let name = dir.file_name().map_or_else(
            || dir.display().to_string(),
            |n| n.to_string_lossy().into_owned(),
        );
        return Ok(vec![load(name, dir.to_path_buf())?]);
    }
    let entries = std::fs::read_dir(dir)
        .map_err(|e| CliError::Usage(format!("could not read {}: {e}", dir.display())))?;
    let mut names: Vec<String> = entries
        .filter_map(Result::ok)
        .filter(|e| e.path().join(MANIFEST_FILE).is_file())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(CliError::Usage(format!(
            "{} holds no run: no {MANIFEST_FILE} in it or any subdirectory",
            dir.display()
        )));
    }
    names
        .into_iter()
        .map(|name| {
            let sub = dir.join(&name);
            load(name, sub)
        })
        .collect()
}

fn summary(runs: &[Run], format: Format) {
    match format {
        Format::Text => {
            outln!(
                "{:<16} {:>8} {:>4} {:>10} {:>6} {:>5} {:>10} {:>8} {:>9} {:>8} {:>12} {:>9}",
                "run",
                "pattern",
                "spes",
                "volume",
                "elem",
                "list",
                "cycles",
                "gbps",
                "events",
                "packets",
                "stall-cycles",
                "dominant"
            );
            for r in runs {
                let m = &r.manifest;
                outln!(
                    "{:<16} {:>8} {:>4} {:>10} {:>6} {:>5} {:>10} {:>8.2} {:>9} {:>8} {:>12} {:>9}",
                    r.name,
                    m.pattern,
                    m.spes,
                    m.volume,
                    m.elem,
                    m.key.contains("\"list\":true"),
                    m.cycles,
                    m.aggregate_gbps,
                    m.events,
                    m.packets,
                    m.stall_cycles,
                    m.dominant_stall
                );
            }
        }
        Format::Csv => {
            outln!(
                "run,pattern,spes,volume,elem,cycles,total_bytes,gbps,events,packets,\
                 abandoned,stall_cycles,dominant_stall,trace_events,trace_bytes"
            );
            for r in runs {
                let m = &r.manifest;
                outln!(
                    "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                    r.name,
                    m.pattern,
                    m.spes,
                    m.volume,
                    m.elem,
                    m.cycles,
                    m.total_bytes,
                    m.aggregate_gbps,
                    m.events,
                    m.packets,
                    m.abandoned,
                    m.stall_cycles,
                    m.dominant_stall,
                    m.trace_events,
                    m.trace_bytes
                );
            }
        }
        Format::Json => {
            outln!("[");
            for (i, r) in runs.iter().enumerate() {
                let m = &r.manifest;
                outln!(
                    "{{\"run\":\"{}\",\"pattern\":\"{}\",\"spes\":{},\"volume\":{},\
                     \"elem\":{},\"cycles\":{},\"total_bytes\":{},\"gbps\":{},\
                     \"events\":{},\"packets\":{},\"abandoned\":{},\"stall_cycles\":{},\
                     \"dominant_stall\":\"{}\",\"trace_events\":{},\"trace_bytes\":{}}}{}",
                    r.name,
                    m.pattern,
                    m.spes,
                    m.volume,
                    m.elem,
                    m.cycles,
                    m.total_bytes,
                    m.aggregate_gbps,
                    m.events,
                    m.packets,
                    m.abandoned,
                    m.stall_cycles,
                    m.dominant_stall,
                    m.trace_events,
                    m.trace_bytes,
                    if i + 1 < runs.len() { "," } else { "" }
                );
            }
            outln!("]");
        }
    }
}

fn events(runs: &[Run], args: &Args) -> Result<(), CliError> {
    match args.format {
        Format::Text => outln!(
            "{:<16} {:>12} {:>7} {:>3} {:>7} {:>4} {:>4} {:>6}",
            "run",
            "cycle",
            "phase",
            "spe",
            "path",
            "aux",
            "hops",
            "bytes"
        ),
        Format::Csv => outln!("run,cycle,phase,spe,path,aux,hops,bytes"),
        Format::Json => outln!("["),
    }
    let mut listed = 0u64;
    let mut total = 0u64;
    for r in runs {
        let store = r.open_store()?;
        store
            .for_each(&args.filter, |e| {
                total += 1;
                if args.limit != 0 && listed >= args.limit {
                    return Ok(());
                }
                listed += 1;
                match args.format {
                    Format::Text => outln!(
                        "{:<16} {:>12} {:>7} {:>3} {:>7} {:>4} {:>4} {:>6}",
                        r.name,
                        e.at,
                        e.kind.name(),
                        e.spe,
                        e.path.name(),
                        e.aux,
                        e.hops,
                        e.bytes
                    ),
                    Format::Csv => outln!(
                        "{},{},{},{},{},{},{},{}",
                        r.name,
                        e.at,
                        e.kind.name(),
                        e.spe,
                        e.path.name(),
                        e.aux,
                        e.hops,
                        e.bytes
                    ),
                    Format::Json => outln!(
                        "{{\"run\":\"{}\",\"cycle\":{},\"phase\":\"{}\",\"spe\":{},\
                         \"path\":\"{}\",\"aux\":{},\"hops\":{},\"bytes\":{}}},",
                        r.name,
                        e.at,
                        e.kind.name(),
                        e.spe,
                        e.path.name(),
                        e.aux,
                        e.hops,
                        e.bytes
                    ),
                }
                Ok(())
            })
            .map_err(|e| CliError::Corrupt(format!("{}: {e}", r.name)))?;
    }
    match args.format {
        Format::Json => outln!(
            "{{\"listed\":{listed},\"matched\":{total},\"runs\":{}}}]",
            runs.len()
        ),
        _ => eprintln!(
            "events: listed {listed} of {total} matching, {} run(s)",
            runs.len()
        ),
    }
    Ok(())
}

fn counts(runs: &[Run], args: &Args) -> Result<(), CliError> {
    let mut by_kind = [0u64; 4];
    let mut bytes = 0u64;
    for r in runs {
        let store = r.open_store()?;
        // An unfiltered count comes straight off the verified trailers;
        // filters decode only the admitted blocks.
        let unfiltered = args.filter.spe.is_none()
            && args.filter.kind.is_none()
            && args.filter.path.is_none()
            && args.filter.cycle_from.is_none()
            && args.filter.cycle_to.is_none();
        if unfiltered {
            let t = store.totals();
            by_kind[0] += t.issued;
            by_kind[1] += t.mem_accesses;
            by_kind[2] += t.grants;
            by_kind[3] += t.delivered;
            bytes += t.delivered_bytes;
        } else {
            store
                .for_each(&args.filter, |e| {
                    let slot = TraceKind::ALL
                        .iter()
                        .position(|k| *k == e.kind)
                        .expect("kind in ALL");
                    by_kind[slot] += 1;
                    if e.kind == TraceKind::Deliver {
                        bytes += u64::from(e.bytes);
                    }
                    Ok(())
                })
                .map_err(|e| CliError::Corrupt(format!("{}: {e}", r.name)))?;
        }
    }
    let total: u64 = by_kind.iter().sum();
    match args.format {
        Format::Text => {
            for (kind, n) in TraceKind::ALL.iter().zip(by_kind) {
                outln!("{:<8} {n}", kind.name());
            }
            outln!("{:<8} {total}", "total");
            outln!("{:<8} {bytes}", "delivered-bytes");
        }
        Format::Csv => {
            outln!("phase,count");
            for (kind, n) in TraceKind::ALL.iter().zip(by_kind) {
                outln!("{},{n}", kind.name());
            }
            outln!("total,{total}");
            outln!("delivered_bytes,{bytes}");
        }
        Format::Json => outln!(
            "{{\"issue\":{},\"mem\":{},\"grant\":{},\"deliver\":{},\
             \"total\":{total},\"delivered_bytes\":{bytes},\"runs\":{}}}",
            by_kind[0],
            by_kind[1],
            by_kind[2],
            by_kind[3],
            runs.len()
        ),
    }
    Ok(())
}

/// Reconciles one run's store against its manifest, returning the
/// drift descriptions (empty = clean). Corruption is an error, not a
/// drift: a store that cannot be decoded has no counts to compare.
fn check_run(run: &Run) -> Result<Vec<String>, CliError> {
    let m = &run.manifest;
    let store = run.open_store()?;
    let (counts, delivered_bytes) = store
        .recount()
        .map_err(|e| CliError::Corrupt(format!("{}: {e}", run.name)))?;
    let t = store.totals();
    let mut drifts = Vec::new();
    let mut expect = |what: &str, got: u64, want: u64| {
        if got != want {
            drifts.push(format!("{what}: store {got} != expected {want}"));
        }
    };
    // Ground-truth decode vs the indexed trailer.
    expect("recount issue", counts[0], t.issued);
    expect("recount mem", counts[1], t.mem_accesses);
    expect("recount grant", counts[2], t.grants);
    expect("recount deliver", counts[3], t.delivered);
    expect(
        "recount delivered bytes",
        delivered_bytes,
        t.delivered_bytes,
    );
    // Store vs the run's FabricMetrics digest: conservation by
    // construction — exact equality, zero drift tolerated.
    expect("deliver events vs packets", t.delivered, m.packets);
    expect(
        "delivered bytes vs total_bytes",
        t.delivered_bytes,
        m.total_bytes,
    );
    expect(
        "issue events vs packets+abandoned",
        t.issued,
        m.packets + m.abandoned,
    );
    expect(
        "embedded sim events vs metrics events",
        t.sim_events,
        m.events,
    );
    expect("embedded packets vs metrics packets", t.packets, m.packets);
    expect("trace events vs manifest", t.events, m.trace_events);
    expect("trace bytes vs manifest", store.size_bytes(), m.trace_bytes);
    let checksum = format!("{:016x}", store.payload_checksum());
    if checksum != m.trace_checksum {
        drifts.push(format!(
            "payload checksum: store {checksum} != manifest {}",
            m.trace_checksum
        ));
    }
    Ok(drifts)
}

fn check(runs: &[Run]) -> Result<bool, CliError> {
    let mut dirty = 0usize;
    for run in runs {
        let drifts = check_run(run)?;
        if drifts.is_empty() {
            continue;
        }
        dirty += 1;
        eprintln!("check: {} FAILED ({} drift(s)):", run.name, drifts.len());
        for d in &drifts {
            eprintln!("  {d}");
        }
    }
    if dirty == 0 {
        outln!(
            "check: {} run(s) reconcile exactly against their metrics digests",
            runs.len()
        );
        return Ok(true);
    }
    eprintln!("check: {dirty} of {} run(s) failed", runs.len());
    Ok(false)
}

fn top_stalls(runs: &[Run], n: usize, format: Format) {
    let mut ranked: Vec<&Run> = runs.iter().collect();
    ranked.sort_by(|a, b| {
        b.manifest
            .stall_cycles
            .cmp(&a.manifest.stall_cycles)
            .then_with(|| a.name.cmp(&b.name))
    });
    ranked.truncate(n);
    match format {
        Format::Text => {
            outln!(
                "{:<16} {:>8} {:>4} {:>6} {:>12} {:>9} {:>8}",
                "run",
                "pattern",
                "spes",
                "elem",
                "stall-cycles",
                "dominant",
                "gbps"
            );
            for r in ranked {
                let m = &r.manifest;
                outln!(
                    "{:<16} {:>8} {:>4} {:>6} {:>12} {:>9} {:>8.2}",
                    r.name,
                    m.pattern,
                    m.spes,
                    m.elem,
                    m.stall_cycles,
                    m.dominant_stall,
                    m.aggregate_gbps
                );
            }
        }
        Format::Csv => {
            outln!("run,pattern,spes,elem,stall_cycles,dominant_stall,gbps");
            for r in ranked {
                let m = &r.manifest;
                outln!(
                    "{},{},{},{},{},{},{}",
                    r.name,
                    m.pattern,
                    m.spes,
                    m.elem,
                    m.stall_cycles,
                    m.dominant_stall,
                    m.aggregate_gbps
                );
            }
        }
        Format::Json => {
            outln!("[");
            let last = ranked.len().saturating_sub(1);
            for (i, r) in ranked.iter().enumerate() {
                let m = &r.manifest;
                outln!(
                    "{{\"run\":\"{}\",\"pattern\":\"{}\",\"spes\":{},\"elem\":{},\
                     \"stall_cycles\":{},\"dominant_stall\":\"{}\",\"gbps\":{}}}{}",
                    r.name,
                    m.pattern,
                    m.spes,
                    m.elem,
                    m.stall_cycles,
                    m.dominant_stall,
                    m.aggregate_gbps,
                    if i < last { "," } else { "" }
                );
            }
            outln!("]");
        }
    }
}

fn chrome(runs: &[Run], out: Option<&Path>) -> Result<(), CliError> {
    let out = out.ok_or(CliError::Usage("chrome needs --out <file>".into()))?;
    let [run] = runs else {
        return Err(CliError::Usage(format!(
            "chrome exports one run at a time; {} holds {} — point at one \
             run's directory",
            "the given directory",
            runs.len()
        )));
    };
    let store = run.open_store()?;
    // Stores carry cycles, not seconds; project through the paper
    // machine's clock (the only machine repro records).
    let clock = CellConfig::default().clock;
    let file = std::fs::File::create(out)
        .map_err(|e| CliError::Usage(format!("could not create {}: {e}", out.display())))?;
    let mut w = std::io::BufWriter::new(file);
    store
        .export_chrome(&clock, &mut w)
        .and_then(|()| w.flush().map_err(TraceStoreError::Io))
        .map_err(|e| CliError::Corrupt(format!("{}: {e}", run.name)))?;
    eprintln!(
        "chrome: {} events ({} cycles of run {}) -> {}",
        store.totals().events,
        run.manifest.cycles,
        run.name,
        out.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(EXIT_BAD_INVOCATION);
        }
    };
    let runs = match discover(&args.dir) {
        Ok(runs) => runs,
        Err(e) => return e.report(),
    };
    let outcome = match &args.command {
        Command::Summary => {
            summary(&runs, args.format);
            Ok(true)
        }
        Command::Events => events(&runs, &args).map(|()| true),
        Command::Counts => counts(&runs, &args).map(|()| true),
        Command::Check => check(&runs),
        Command::TopStalls(n) => {
            top_stalls(&runs, *n, args.format);
            Ok(true)
        }
        Command::Chrome => chrome(&runs, args.out.as_deref()).map(|()| true),
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(EXIT_DRIFT),
        Err(e) => e.report(),
    }
}
