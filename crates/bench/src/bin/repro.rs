//! Regenerates every figure of the ISPASS 2007 paper on the simulated
//! blade and prints them as text tables.
//!
//! ```text
//! repro [--quick|--full] [--figure <id>]... [--ablations] [--seed N]
//!       [--jobs N] [--verbose]
//!
//!   --quick        reduced sweep (fast smoke run)
//!   --full         paper-scale protocol (32 MiB per SPE, slow)
//!   --figure <id>  only the named figure: 3, 4, 6, 8, 10, 12, 13,
//!                  15, 16 or 4.2.2 (repeatable)
//!   --ablations    also run the design-choice ablations
//!   --seed N       placement-lottery seed (default 0xCE11)
//!   --jobs N       worker threads for the sweeps (default: CELLSIM_JOBS
//!                  or all cores; figures are bit-identical for any N)
//!   --verbose      report run-cache hits/misses and wall-clock on stderr
//! ```
//!
//! Figure tables go to stdout; timing and cache statistics go to stderr,
//! so `repro --jobs 8 > figs.txt` captures byte-identical output to
//! `repro --jobs 1 > figs.txt`.

use std::process::ExitCode;
use std::time::Instant;

use cellsim_bench::all_ablations_with;
use cellsim_core::exec::SweepExecutor;
use cellsim_core::experiments::{
    figure10_with, figure12_with, figure13_with, figure15_with, figure16_with, figure3, figure4,
    figure6, figure8_with, section_4_2_2, ExperimentConfig, ExperimentError,
};
use cellsim_core::CellSystem;
use cellsim_kernels::roofline_figure;

struct Args {
    cfg: ExperimentConfig,
    figures: Vec<String>,
    ablations: bool,
    kernels: bool,
    csv_dir: Option<std::path::PathBuf>,
    jobs: Option<usize>,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut cfg = ExperimentConfig::default();
    let mut figures = Vec::new();
    let mut ablations = false;
    let mut kernels = false;
    let mut csv_dir = None;
    let mut jobs = None;
    let mut verbose = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => cfg = ExperimentConfig::quick(),
            "--full" => cfg = ExperimentConfig::full(),
            "--figure" => {
                let id = argv.next().ok_or("--figure needs an id")?;
                figures.push(id);
            }
            "--ablations" => ablations = true,
            "--kernels" => kernels = true,
            "--csv" => {
                let dir = argv.next().ok_or("--csv needs a directory")?;
                csv_dir = Some(std::path::PathBuf::from(dir));
            }
            "--seed" => {
                let n = argv.next().ok_or("--seed needs a value")?;
                cfg.seed = n.parse().map_err(|_| format!("bad seed: {n}"))?;
            }
            "--jobs" => {
                let n = argv.next().ok_or("--jobs needs a value")?;
                let n: usize = n.parse().map_err(|_| format!("bad job count: {n}"))?;
                if n == 0 {
                    return Err("--jobs must be >= 1".into());
                }
                jobs = Some(n);
            }
            "--verbose" => verbose = true,
            "--help" | "-h" => {
                println!(
                    "repro [--quick|--full] [--figure <id>]... [--ablations] [--kernels] \
                     [--csv <dir>] [--seed N] [--jobs N] [--verbose]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Args {
        cfg,
        figures,
        ablations,
        kernels,
        csv_dir,
        jobs,
        verbose,
    })
}

fn wanted(figures: &[String], id: &str) -> bool {
    figures.is_empty() || figures.iter().any(|f| f == id)
}

fn csv_name(id: &str) -> String {
    let slug: String = id
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    format!("figure_{slug}.csv")
}

fn emit(csv_dir: &Option<std::path::PathBuf>, fig: &cellsim_core::report::Figure) {
    println!("{fig}");
    if let Some(dir) = csv_dir {
        let _ = std::fs::create_dir_all(dir);
        if let Err(e) = std::fs::write(dir.join(csv_name(&fig.id)), fig.to_csv()) {
            eprintln!("warning: could not write CSV for figure {}: {e}", fig.id);
        }
    }
}

fn emit_spread(csv_dir: &Option<std::path::PathBuf>, fig: &cellsim_core::report::SpreadFigure) {
    println!("{fig}");
    if let Some(dir) = csv_dir {
        let _ = std::fs::create_dir_all(dir);
        if let Err(e) = std::fs::write(dir.join(csv_name(&fig.id)), fig.to_csv()) {
            eprintln!("warning: could not write CSV for figure {}: {e}", fig.id);
        }
    }
}

fn run(args: &Args, exec: &SweepExecutor) -> Result<(), ExperimentError> {
    let system = CellSystem::blade();
    let cfg = &args.cfg;
    let csv = &args.csv_dir;
    if wanted(&args.figures, "3") {
        for f in figure3(&system) {
            emit(csv, &f);
        }
    }
    if wanted(&args.figures, "4") {
        for f in figure4(&system) {
            emit(csv, &f);
        }
    }
    if wanted(&args.figures, "6") {
        for f in figure6(&system) {
            emit(csv, &f);
        }
    }
    if wanted(&args.figures, "8") {
        for f in figure8_with(exec, &system, cfg)? {
            emit(csv, &f);
        }
    }
    if wanted(&args.figures, "4.2.2") {
        emit(csv, &section_4_2_2(&system));
    }
    if wanted(&args.figures, "10") {
        emit(csv, &figure10_with(exec, &system, cfg)?);
    }
    if wanted(&args.figures, "12") {
        for f in figure12_with(exec, &system, cfg)? {
            emit(csv, &f);
        }
    }
    if wanted(&args.figures, "13") {
        for f in figure13_with(exec, &system, cfg)? {
            emit_spread(csv, &f);
        }
    }
    if wanted(&args.figures, "15") {
        for f in figure15_with(exec, &system, cfg)? {
            emit(csv, &f);
        }
    }
    if wanted(&args.figures, "16") {
        for f in figure16_with(exec, &system, cfg)? {
            emit_spread(csv, &f);
        }
    }
    if args.ablations {
        println!("— ablations —\n");
        for f in all_ablations_with(exec, cfg) {
            emit(csv, &f);
        }
    }
    if args.kernels {
        println!("— small kernels (paper §5 future work) —\n");
        emit(csv, &roofline_figure(&system));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let exec = match args.jobs {
        Some(n) => SweepExecutor::new(n),
        None => SweepExecutor::default(),
    };
    let cfg = &args.cfg;
    println!(
        "cellsim repro — 2.1 GHz CBE blade, {} KiB/SPE, {} placements, seed {:#x}\n",
        cfg.volume_per_spe >> 10,
        cfg.placements,
        cfg.seed
    );

    let start = Instant::now();
    if let Err(e) = run(&args, &exec) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let elapsed = start.elapsed();
    if args.verbose {
        let stats = exec.stats();
        eprintln!(
            "repro: {:.2?} wall clock, {} jobs, run cache: {} hits / {} misses ({:.0}% hit rate)",
            elapsed,
            exec.jobs(),
            stats.hits,
            stats.misses,
            stats.hit_rate() * 100.0
        );
    }
    ExitCode::SUCCESS
}
