//! Regenerates every figure of the ISPASS 2007 paper on the simulated
//! blade and prints them as text tables.
//!
//! ```text
//! repro [--quick|--full] [--figure <id>]... [--ablations] [--seed N]
//!       [--faults <plan.json>] [--jobs N] [--cache-dir <dir>] [--verbose]
//!       [--csv <dir>] [--metrics <dir>] [--trace-out <file>]
//!       [--run-dir <dir>] [--baseline-out <file>] [--check <file>]
//!       [--tolerance N]
//!
//!   --quick             reduced sweep (fast smoke run)
//!   --full              paper-scale protocol (32 MiB per SPE, slow)
//!   --figure <id>       only the named figure: 3, 4, 6, 8, 10, 12, 13,
//!                       15, 16, 4.2.2, gups, stencil, pairlist or
//!                       degraded (repeatable)
//!   --faults <f>        run every figure on a degraded machine: <f> is a
//!                       FaultPlan JSON (see README). Plans with
//!                       fused_spes need --figure degraded — the paper
//!                       figures drive all 8 SPEs. Incompatible with
//!                       --baseline-out/--check (baselines snapshot the
//!                       healthy blade).
//!   --ablations         also run the design-choice ablations
//!   --seed N            placement-lottery seed (default 0xCE11)
//!   --jobs N            worker threads for the sweeps (default:
//!                       CELLSIM_JOBS or all cores; figures are
//!                       bit-identical for any N)
//!   --cache-dir <dir>   persist finished runs into <dir>, one verified
//!                       JSON entry per run key; later invocations (any
//!                       --jobs) reload them bit-identically, and
//!                       corrupt or stale entries are silently
//!                       recomputed. An interrupted --full sweep resumes
//!                       where it was killed.
//!   --verbose           print each fabric figure's metrics digest to
//!                       stdout and cache statistics to stderr
//!   --csv <dir>         write each figure as CSV into <dir>
//!   --metrics <dir>     write each fabric figure's metrics digest into
//!                       <dir> as CSV and JSON
//!   --trace-out <file>  record the 8-SPE cycle at the largest swept
//!                       element size and write a Chrome tracing JSON
//!                       (open with chrome://tracing or Perfetto); the
//!                       JSON is streamed from a trace store, so --full
//!                       scale runs in bounded memory
//!   --run-dir <dir>     record a queryable trace store for every run:
//!                       one subdirectory per run key holding trace.bin
//!                       (indexed, checksummed event log) and
//!                       manifest.json (identity + metrics digest).
//!                       Query with cellsim-trace; artifacts are
//!                       byte-identical for any --jobs and are reused,
//!                       not re-recorded, when already complete
//!   --baseline-out <f>  snapshot every figure's bandwidths and latency
//!                       percentiles into <f> (JSON) and exit; uses the
//!                       active --quick/--full/--seed configuration
//!   --check <f>         re-run the experiment configuration embedded in
//!                       baseline <f> and compare; prints every drifted
//!                       figure/percentile and exits non-zero on drift
//!   --tolerance N       relative tolerance band (e.g. 0.01 = 1%):
//!                       recorded into the file with --baseline-out,
//!                       overrides the recorded band with --check
//!   --perf-baseline-out <f>  time every fabric figure (fresh uncached
//!                       executors) and snapshot events/sec, packets/sec
//!                       and simulated-cycles/sec into <f> (JSON, see
//!                       BENCH_perf.json) and exit
//!   --perf-check <f>    re-run the protocol embedded in perf snapshot
//!                       <f> (same --jobs as recorded) and compare:
//!                       deterministic work counters must match exactly,
//!                       throughput may not regress beyond the band;
//!                       speedups always pass; exits non-zero on drift
//!   --perf-band N       one-sided relative regression band (e.g. 0.5 =
//!                       fail below half the recorded throughput):
//!                       recorded with --perf-baseline-out (default
//!                       0.5), overrides the recorded band with
//!                       --perf-check
//!
//! exit codes:
//!   0  success
//!   1  --check / --perf-check found drift
//!   2  one or more runs failed (stall or panic); each failed run key is
//!      named on stderr, completed points still print (marked `*`)
//!   3  bad invocation or I/O error
//! ```
//!
//! Figure tables go to stdout; timing and cache statistics go to stderr,
//! so `repro --jobs 8 > figs.txt` captures byte-identical output to
//! `repro --jobs 1 > figs.txt`. The metrics digests are part of the
//! deterministic report (pure counters, cached with the bandwidths), so
//! `--verbose` stdout and `--metrics` files are byte-identical across
//! job counts too.

use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use cellsim_bench::all_ablations_with;
use cellsim_core::baseline::Baseline;
use cellsim_core::exec::{RunSpec, SweepExecutor, Workload};
use cellsim_core::experiments::{
    figure10_with, figure12_with, figure13_with, figure15_with, figure16_with, figure3, figure4,
    figure6, figure8_with, figure_degraded_with, figure_gups_with, figure_metrics_with,
    figure_pairlist_with, figure_stencil_with, section_4_2_2, ExperimentConfig, ExperimentError,
    FIGURE_IDS,
};
use cellsim_core::perf::PerfBaseline;
use cellsim_core::report::{Figure, MetricsTable, SpreadFigure};
use cellsim_core::tracestore::{record_run_to, TraceStore, TRACE_FILE};
use cellsim_core::{CellSystem, FaultPlan, Placement, SyncPolicy, TransferPlan};
use cellsim_kernels::roofline_figure;

struct Args {
    cfg: ExperimentConfig,
    figures: Vec<String>,
    faults: Option<FaultPlan>,
    ablations: bool,
    kernels: bool,
    csv_dir: Option<PathBuf>,
    metrics_dir: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    run_dir: Option<PathBuf>,
    baseline_out: Option<PathBuf>,
    check: Option<PathBuf>,
    tolerance: Option<f64>,
    perf_baseline_out: Option<PathBuf>,
    perf_check: Option<PathBuf>,
    perf_band: Option<f64>,
    jobs: Option<usize>,
    cache_dir: Option<PathBuf>,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut cfg = ExperimentConfig::default();
    let mut figures = Vec::new();
    let mut faults = None;
    let mut ablations = false;
    let mut kernels = false;
    let mut csv_dir = None;
    let mut metrics_dir = None;
    let mut trace_out = None;
    let mut run_dir = None;
    let mut baseline_out = None;
    let mut check = None;
    let mut tolerance = None;
    let mut perf_baseline_out = None;
    let mut perf_check = None;
    let mut perf_band = None;
    let mut jobs = None;
    let mut cache_dir = None;
    let mut verbose = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => cfg = ExperimentConfig::quick(),
            "--full" => cfg = ExperimentConfig::full(),
            "--figure" => {
                let id = argv.next().ok_or("--figure needs an id")?;
                if !FIGURE_IDS.contains(&id.as_str()) {
                    return Err(format!(
                        "unknown figure id: {id} (valid: {})",
                        FIGURE_IDS.join(", ")
                    ));
                }
                figures.push(id);
            }
            "--faults" => {
                let file = argv.next().ok_or("--faults needs a plan file")?;
                let text = std::fs::read_to_string(&file)
                    .map_err(|e| format!("could not read {file}: {e}"))?;
                faults = Some(FaultPlan::parse(&text).map_err(|e| format!("{file}: {e}"))?);
            }
            "--ablations" => ablations = true,
            "--kernels" => kernels = true,
            "--csv" => {
                let dir = argv.next().ok_or("--csv needs a directory")?;
                csv_dir = Some(PathBuf::from(dir));
            }
            "--metrics" => {
                let dir = argv.next().ok_or("--metrics needs a directory")?;
                metrics_dir = Some(PathBuf::from(dir));
            }
            "--trace-out" => {
                let file = argv.next().ok_or("--trace-out needs a file path")?;
                trace_out = Some(PathBuf::from(file));
            }
            "--run-dir" => {
                let dir = argv.next().ok_or("--run-dir needs a directory")?;
                run_dir = Some(PathBuf::from(dir));
            }
            "--baseline-out" => {
                let file = argv.next().ok_or("--baseline-out needs a file path")?;
                baseline_out = Some(PathBuf::from(file));
            }
            "--check" => {
                let file = argv.next().ok_or("--check needs a baseline file")?;
                check = Some(PathBuf::from(file));
            }
            "--tolerance" => {
                let n = argv.next().ok_or("--tolerance needs a value")?;
                let t: f64 = n.parse().map_err(|_| format!("bad tolerance: {n}"))?;
                tolerance = Some(t);
            }
            "--perf-baseline-out" => {
                let file = argv.next().ok_or("--perf-baseline-out needs a file path")?;
                perf_baseline_out = Some(PathBuf::from(file));
            }
            "--perf-check" => {
                let file = argv.next().ok_or("--perf-check needs a perf file")?;
                perf_check = Some(PathBuf::from(file));
            }
            "--perf-band" => {
                let n = argv.next().ok_or("--perf-band needs a value")?;
                let b: f64 = n.parse().map_err(|_| format!("bad perf band: {n}"))?;
                if b.is_nan() || b < 0.0 {
                    return Err(format!("--perf-band must be >= 0, got {n}"));
                }
                perf_band = Some(b);
            }
            "--seed" => {
                let n = argv.next().ok_or("--seed needs a value")?;
                cfg.seed = n.parse().map_err(|_| format!("bad seed: {n}"))?;
            }
            "--jobs" => {
                let n = argv.next().ok_or("--jobs needs a value")?;
                let n: usize = n.parse().map_err(|_| format!("bad job count: {n}"))?;
                if n == 0 {
                    return Err("--jobs must be >= 1".into());
                }
                jobs = Some(n);
            }
            "--cache-dir" => {
                let dir = argv.next().ok_or("--cache-dir needs a directory")?;
                cache_dir = Some(PathBuf::from(dir));
            }
            "--verbose" => verbose = true,
            "--help" | "-h" => {
                println!(
                    "repro [--quick|--full] [--figure <id>]... [--faults <plan.json>] \
                     [--ablations] [--kernels] [--csv <dir>] [--metrics <dir>] \
                     [--trace-out <file>] [--run-dir <dir>] [--baseline-out <file>] \
                     [--check <file>] [--tolerance N] [--perf-baseline-out <file>] \
                     [--perf-check <file>] [--perf-band N] [--seed N] [--jobs N] \
                     [--cache-dir <dir>] [--verbose]\n\n\
                     figure ids: {}\n\n\
                     exit codes:\n  \
                     0  success\n  \
                     1  --check / --perf-check found drift\n  \
                     2  one or more runs failed (stall or panic); failed run keys \
                     are named on stderr\n  \
                     3  bad invocation or I/O error",
                    FIGURE_IDS.join(", ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if let Some(plan) = &faults {
        if baseline_out.is_some() || check.is_some() {
            return Err("--faults cannot combine with --baseline-out/--check \
                 (baselines snapshot the healthy blade)"
                .into());
        }
        if perf_baseline_out.is_some() || perf_check.is_some() {
            return Err(
                "--faults cannot combine with --perf-baseline-out/--perf-check \
                 (perf snapshots time the healthy blade)"
                    .into(),
            );
        }
        if plan.fused_mask() != 0 {
            let only_degraded = !figures.is_empty() && figures.iter().all(|f| f == "degraded");
            if !only_degraded || trace_out.is_some() {
                return Err(
                    "fault plans with fused_spes need --figure degraded: the paper \
                     figures and --trace-out drive all 8 SPEs"
                        .into(),
                );
            }
        }
    }
    Ok(Args {
        cfg,
        figures,
        faults,
        ablations,
        kernels,
        csv_dir,
        metrics_dir,
        trace_out,
        run_dir,
        baseline_out,
        check,
        tolerance,
        perf_baseline_out,
        perf_check,
        perf_band,
        jobs,
        cache_dir,
        verbose,
    })
}

/// Exit codes, enumerated in `--help`: success is `ExitCode::SUCCESS`.
const EXIT_DRIFT: u8 = 1;
const EXIT_FAILED_RUNS: u8 = 2;
const EXIT_BAD_INVOCATION: u8 = 3;

/// Relative tolerance recorded by `--baseline-out` when `--tolerance`
/// is not given: 1%, wide enough for float formatting, far tighter than
/// any modelling change moves a figure.
const DEFAULT_TOLERANCE: f64 = 0.01;

fn wanted(figures: &[String], id: &str) -> bool {
    figures.is_empty() || figures.iter().any(|f| f == id)
}

fn slug(id: &str) -> String {
    id.chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect()
}

fn write_artifact(dir: &Path, name: &str, contents: &str) -> Result<(), String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("could not create directory {}: {e}", dir.display()))?;
    let path = dir.join(name);
    std::fs::write(&path, contents).map_err(|e| format!("could not write {}: {e}", path.display()))
}

/// A result table repro can print and export: both figure shapes.
trait Emittable: fmt::Display {
    fn id(&self) -> &str;
    fn to_csv(&self) -> String;
}

impl Emittable for Figure {
    fn id(&self) -> &str {
        &self.id
    }
    fn to_csv(&self) -> String {
        Figure::to_csv(self)
    }
}

impl Emittable for SpreadFigure {
    fn id(&self) -> &str {
        &self.id
    }
    fn to_csv(&self) -> String {
        SpreadFigure::to_csv(self)
    }
}

fn emit<T: Emittable>(csv_dir: &Option<PathBuf>, fig: &T) -> Result<(), String> {
    println!("{fig}");
    if let Some(dir) = csv_dir {
        let name = format!("figure_{}.csv", slug(fig.id()));
        write_artifact(dir, &name, &fig.to_csv())?;
    }
    Ok(())
}

/// Prints (under `--verbose`) and exports (under `--metrics`) the digest
/// of the runs behind figure `id`. Every run is a cache hit: the digest
/// re-sweeps exactly the figure's points on the shared executor.
fn emit_metrics(
    args: &Args,
    exec: &SweepExecutor,
    system: &CellSystem,
    id: &str,
) -> Result<(), String> {
    if !args.verbose && args.metrics_dir.is_none() {
        return Ok(());
    }
    let Some(summary) = figure_metrics_with(exec, system, &args.cfg, id).map_err(err_string)?
    else {
        return Ok(());
    };
    let table = MetricsTable {
        id: id.to_string(),
        summary,
    };
    if args.verbose {
        println!("{table}");
    }
    if let Some(dir) = &args.metrics_dir {
        write_artifact(dir, &format!("metrics_{}.csv", slug(id)), &table.to_csv())?;
        write_artifact(dir, &format!("metrics_{}.json", slug(id)), &table.to_json())?;
    }
    Ok(())
}

fn err_string(e: ExperimentError) -> String {
    e.to_string()
}

/// The machine the figures run on: the paper's blade, degraded by the
/// `--faults` plan when one was given.
fn machine(args: &Args) -> CellSystem {
    match &args.faults {
        Some(plan) => CellSystem::blade().with_faults(plan.clone()),
        None => CellSystem::blade(),
    }
}

fn run(args: &Args, exec: &SweepExecutor) -> Result<(), String> {
    let system = machine(args);
    let cfg = &args.cfg;
    let csv = &args.csv_dir;
    if wanted(&args.figures, "3") {
        for f in figure3(&system) {
            emit(csv, &f)?;
        }
    }
    if wanted(&args.figures, "4") {
        for f in figure4(&system) {
            emit(csv, &f)?;
        }
    }
    if wanted(&args.figures, "6") {
        for f in figure6(&system) {
            emit(csv, &f)?;
        }
    }
    if wanted(&args.figures, "8") {
        for f in figure8_with(exec, &system, cfg).map_err(err_string)? {
            emit(csv, &f)?;
        }
        emit_metrics(args, exec, &system, "8")?;
    }
    if wanted(&args.figures, "4.2.2") {
        emit(csv, &section_4_2_2(&system))?;
    }
    if wanted(&args.figures, "10") {
        emit(csv, &figure10_with(exec, &system, cfg).map_err(err_string)?)?;
        emit_metrics(args, exec, &system, "10")?;
    }
    if wanted(&args.figures, "12") {
        for f in figure12_with(exec, &system, cfg).map_err(err_string)? {
            emit(csv, &f)?;
        }
        emit_metrics(args, exec, &system, "12")?;
    }
    if wanted(&args.figures, "13") {
        for f in figure13_with(exec, &system, cfg).map_err(err_string)? {
            emit(csv, &f)?;
        }
        emit_metrics(args, exec, &system, "13")?;
    }
    if wanted(&args.figures, "15") {
        for f in figure15_with(exec, &system, cfg).map_err(err_string)? {
            emit(csv, &f)?;
        }
        emit_metrics(args, exec, &system, "15")?;
    }
    if wanted(&args.figures, "16") {
        for f in figure16_with(exec, &system, cfg).map_err(err_string)? {
            emit(csv, &f)?;
        }
        emit_metrics(args, exec, &system, "16")?;
    }
    if wanted(&args.figures, "gups") {
        emit(
            csv,
            &figure_gups_with(exec, &system, cfg).map_err(err_string)?,
        )?;
        emit_metrics(args, exec, &system, "gups")?;
    }
    if wanted(&args.figures, "stencil") {
        emit(
            csv,
            &figure_stencil_with(exec, &system, cfg).map_err(err_string)?,
        )?;
        emit_metrics(args, exec, &system, "stencil")?;
    }
    if wanted(&args.figures, "pairlist") {
        emit(
            csv,
            &figure_pairlist_with(exec, &system, cfg).map_err(err_string)?,
        )?;
        emit_metrics(args, exec, &system, "pairlist")?;
    }
    if wanted(&args.figures, "degraded") {
        let (fig, table) = figure_degraded_with(exec, &system, cfg).map_err(err_string)?;
        emit(csv, &fig)?;
        // The degraded digest carries the NACK/retry counters the ladder
        // exists to surface, so it prints with the figure, not only
        // under --verbose.
        println!("{table}");
        if let Some(dir) = &args.metrics_dir {
            write_artifact(dir, "metrics_degraded.csv", &table.to_csv())?;
            write_artifact(dir, "metrics_degraded.json", &table.to_json())?;
        }
    }
    if args.ablations {
        println!("— ablations —\n");
        for f in all_ablations_with(exec, cfg) {
            emit(csv, &f)?;
        }
    }
    if args.kernels {
        println!("— small kernels (paper §5 future work) —\n");
        emit(csv, &roofline_figure(&system))?;
    }
    Ok(())
}

/// Snapshots the active experiment configuration into a baseline file.
fn write_baseline(args: &Args, exec: &SweepExecutor, path: &Path) -> Result<(), String> {
    let system = CellSystem::blade();
    let tolerance = args.tolerance.unwrap_or(DEFAULT_TOLERANCE);
    let baseline = Baseline::collect(exec, &system, &args.cfg, tolerance).map_err(err_string)?;
    std::fs::write(path, baseline.to_json())
        .map_err(|e| format!("could not write {}: {e}", path.display()))?;
    eprintln!(
        "baseline: {} figures, {} spreads, {} latency digests, tolerance {:.2}% -> {}",
        baseline.figures.len(),
        baseline.spreads.len(),
        baseline.latency.len(),
        100.0 * tolerance,
        path.display()
    );
    Ok(())
}

/// Re-runs the experiment configuration embedded in the baseline at
/// `path` and reports every drifted value. `Ok(true)` means no drift.
fn check_baseline(args: &Args, exec: &SweepExecutor, path: &Path) -> Result<bool, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("could not read {}: {e}", path.display()))?;
    let baseline = Baseline::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let system = CellSystem::blade();
    let current = Baseline::collect(exec, &system, &baseline.experiment, baseline.tolerance)
        .map_err(err_string)?;
    let drifts = baseline.compare(&current, args.tolerance);
    let tolerance = args.tolerance.unwrap_or(baseline.tolerance);
    if drifts.is_empty() {
        eprintln!(
            "check: {} within {:.2}% — {} figures, {} spreads, {} latency digests",
            path.display(),
            100.0 * tolerance,
            baseline.figures.len(),
            baseline.spreads.len(),
            baseline.latency.len()
        );
        return Ok(true);
    }
    eprintln!(
        "check: {} FAILED — {} drift(s) outside {:.2}%:",
        path.display(),
        drifts.len(),
        100.0 * tolerance
    );
    for d in &drifts {
        eprintln!("  {d}");
    }
    eprintln!(
        "if the change is intentional, re-baseline with: \
         repro --baseline-out {}",
        path.display()
    );
    Ok(false)
}

fn perf_figure_line(fig: &cellsim_core::perf::PerfFigure) -> String {
    format!(
        "perf: figure {:>2}: {:>12} events in {:.3}s = {:.0} events/sec, \
         {:.0} packets/sec, {:.0} sim-cycles/sec",
        fig.id,
        fig.events,
        fig.wall_seconds,
        fig.events_per_sec(),
        fig.packets_per_sec(),
        fig.sim_cycles_per_sec()
    )
}

/// Times the active experiment configuration and snapshots the
/// throughput into a perf file (the committed `BENCH_perf.json`).
fn write_perf_baseline(args: &Args, jobs: usize, path: &Path) -> Result<(), String> {
    let system = CellSystem::blade();
    let band = args
        .perf_band
        .unwrap_or(cellsim_core::perf::DEFAULT_PERF_BAND);
    let perf = PerfBaseline::collect(jobs, &system, &args.cfg, band).map_err(err_string)?;
    std::fs::write(path, perf.to_json())
        .map_err(|e| format!("could not write {}: {e}", path.display()))?;
    for fig in &perf.figures {
        eprintln!("{}", perf_figure_line(fig));
    }
    eprintln!(
        "perf baseline: {} figures, {} jobs, {:.0} events/sec overall, \
         band {:.0}% -> {}",
        perf.figures.len(),
        perf.jobs,
        perf.total_events_per_sec(),
        100.0 * band,
        path.display()
    );
    Ok(())
}

/// Re-times the protocol embedded in the perf snapshot at `path` (with
/// the snapshot's worker count, so wall clocks compare) and reports
/// every drift. `Ok(true)` means no drift.
fn check_perf(args: &Args, path: &Path) -> Result<bool, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("could not read {}: {e}", path.display()))?;
    let baseline =
        PerfBaseline::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let system = CellSystem::blade();
    let current =
        PerfBaseline::collect(baseline.jobs, &system, &baseline.experiment, baseline.band)
            .map_err(err_string)?;
    for fig in &current.figures {
        eprintln!("{}", perf_figure_line(fig));
    }
    let band = args.perf_band.unwrap_or(baseline.band);
    let drifts = baseline.compare(&current, args.perf_band);
    if drifts.is_empty() {
        eprintln!(
            "perf check: {} within the {:.0}% band — {:.0} events/sec overall \
             (baseline {:.0})",
            path.display(),
            100.0 * band,
            current.total_events_per_sec(),
            baseline.total_events_per_sec()
        );
        return Ok(true);
    }
    eprintln!(
        "perf check: {} FAILED — {} drift(s) outside the {:.0}% band:",
        path.display(),
        drifts.len(),
        100.0 * band
    );
    for d in &drifts {
        eprintln!("  {d}");
    }
    eprintln!(
        "if the change is intentional (or this is a new reference host), \
         re-baseline with: repro --perf-baseline-out {}",
        path.display()
    );
    Ok(false)
}

/// Records the paper's most contended pattern — the 8-SPE cycle at the
/// largest swept element size — into a trace store and streams it out
/// as Chrome tracing JSON. The store is the source of truth: with
/// `--run-dir` it is the run's persisted artifact (recorded through the
/// executor, so a completed artifact is reused and the run key dedups
/// against the figure sweeps); without, it is a temporary file deleted
/// after the projection. Either way nothing buffers the whole event
/// stream, so `--full` scale runs in bounded memory.
fn write_chrome_trace(
    path: &Path,
    exec: &SweepExecutor,
    system: &CellSystem,
    cfg: &ExperimentConfig,
) -> Result<(), String> {
    let elem = *cfg
        .dma_elem_sizes
        .iter()
        .max()
        .ok_or("no element sizes configured")?;
    let mut b = TransferPlan::builder();
    for spe in 0..8 {
        b = b.exchange_with(
            spe,
            (spe + 1) % 8,
            cfg.volume_per_spe,
            elem,
            SyncPolicy::AfterAll,
        );
    }
    let plan = Arc::new(b.build().map_err(|e| e.to_string())?);
    let placement = Placement::lottery(cfg.seed, 0);
    let spec = RunSpec::new(
        system,
        Workload {
            pattern: "cycle",
            spes: 8,
            volume: cfg.volume_per_spe,
            elem,
            list: false,
            sync: SyncPolicy::AfterAll,
            params: 0,
        },
        placement,
        Arc::clone(&plan),
    );

    let (cycles, gbps, store) = if let Some(rd) = exec.run_dir() {
        let key = spec.key.clone();
        let report = exec
            .try_run_recorded(vec![spec], true)
            .pop()
            .expect("one result per spec")
            .map_err(|e| format!("trace run failed: {e}"))?;
        let store = TraceStore::open(&rd.entry_dir(&key).join(TRACE_FILE))
            .map_err(|e| format!("recorded trace store: {e}"))?;
        (report.cycles, report.aggregate_gbps, store)
    } else {
        let tmp = path.with_extension("store-tmp");
        let (report, _) = record_run_to(system, &placement, &plan, &tmp)?;
        let store = TraceStore::open(&tmp).map_err(|e| format!("recorded trace store: {e}"))?;
        let _ = std::fs::remove_file(&tmp);
        (report.cycles, report.aggregate_gbps, store)
    };

    let file = std::fs::File::create(path)
        .map_err(|e| format!("could not create {}: {e}", path.display()))?;
    let mut out = std::io::BufWriter::new(file);
    store
        .export_chrome(&system.config().clock, &mut out)
        .map_err(|e| format!("could not write {}: {e}", path.display()))?;
    out.flush()
        .map_err(|e| format!("could not write {}: {e}", path.display()))?;
    eprintln!(
        "trace: 8-SPE cycle, {} events over {} cycles ({:.1} GB/s) -> {}",
        store.totals().events,
        cycles,
        gbps,
        path.display()
    );
    Ok(())
}

/// Prints every failed run to stderr, deduplicated by run key (in-batch
/// duplicates of one key share a single failure), and returns how many
/// distinct runs failed. Draining: repro collects once, at exit.
fn report_failures(exec: &SweepExecutor) -> usize {
    let mut seen = std::collections::HashSet::new();
    let mut distinct = 0;
    for failure in exec.take_failures() {
        if seen.insert(failure.key().to_string()) {
            eprintln!("failed run: {failure}");
            distinct += 1;
        }
    }
    if distinct > 0 {
        eprintln!("repro: {distinct} run(s) failed; affected figure points are marked `*`");
    }
    distinct
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(EXIT_BAD_INVOCATION);
        }
    };
    let jobs = args
        .jobs
        .unwrap_or_else(|| cellsim_core::exec::jobs_from_env().unwrap_or(0));
    let mut exec = match &args.cache_dir {
        Some(dir) => match SweepExecutor::with_cache_dir(jobs, dir) {
            Ok(exec) => exec,
            Err(e) => {
                eprintln!("error: could not open cache dir {}: {e}", dir.display());
                return ExitCode::from(EXIT_BAD_INVOCATION);
            }
        },
        None => SweepExecutor::new(jobs),
    };
    if let Some(dir) = &args.run_dir {
        if let Err(e) = exec.set_run_dir(dir) {
            eprintln!("error: could not open run dir {}: {e}", dir.display());
            return ExitCode::from(EXIT_BAD_INVOCATION);
        }
    }
    let exec = exec;
    let cfg = &args.cfg;
    if let Some(path) = &args.baseline_out {
        return match write_baseline(&args, &exec, path) {
            Ok(()) if report_failures(&exec) > 0 => ExitCode::from(EXIT_FAILED_RUNS),
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(EXIT_BAD_INVOCATION)
            }
        };
    }
    if let Some(path) = &args.check {
        return match check_baseline(&args, &exec, path) {
            Ok(clean) => {
                if report_failures(&exec) > 0 {
                    ExitCode::from(EXIT_FAILED_RUNS)
                } else if clean {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::from(EXIT_DRIFT)
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(EXIT_BAD_INVOCATION)
            }
        };
    }
    // The perf paths build their own fresh, cache-free executors (one
    // per figure) so the recorded wall clocks measure the simulator,
    // not `--cache-dir` hits or cross-figure dedup.
    if let Some(path) = &args.perf_baseline_out {
        return match write_perf_baseline(&args, exec.jobs(), path) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(EXIT_BAD_INVOCATION)
            }
        };
    }
    if let Some(path) = &args.perf_check {
        return match check_perf(&args, path) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::from(EXIT_DRIFT),
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(EXIT_BAD_INVOCATION)
            }
        };
    }
    println!(
        "cellsim repro — 2.1 GHz CBE blade, {} KiB/SPE, {} placements, seed {:#x}{}\n",
        cfg.volume_per_spe >> 10,
        cfg.placements,
        cfg.seed,
        match &args.faults {
            Some(plan) => format!(", fault plan {:#018x}", plan.fingerprint()),
            None => String::new(),
        }
    );

    let start = Instant::now();
    if let Err(e) = run(&args, &exec) {
        eprintln!("error: {e}");
        return ExitCode::from(EXIT_BAD_INVOCATION);
    }
    if let Some(path) = &args.trace_out {
        if let Err(e) = write_chrome_trace(path, &exec, &machine(&args), cfg) {
            eprintln!("error: {e}");
            return ExitCode::from(EXIT_BAD_INVOCATION);
        }
    }
    let elapsed = start.elapsed();
    if args.verbose {
        let stats = exec.stats();
        eprintln!(
            "repro: {:.2?} wall clock, {} jobs, run cache: {} hits / {} misses ({:.0}% hit rate)",
            elapsed,
            exec.jobs(),
            stats.hits,
            stats.misses,
            stats.hit_rate() * 100.0
        );
        if let Some(disk) = exec.disk_stats() {
            eprintln!(
                "repro: disk cache: {} loaded, {} stored, {} discarded",
                disk.loaded, disk.stored, disk.discarded
            );
        }
        if let (Some(rd), Some(dir)) = (exec.run_dir(), &args.run_dir) {
            let stats = rd.stats();
            eprintln!(
                "repro: run dir: {} recorded, {} reused, {} errors -> {}",
                stats.written,
                stats.reused,
                stats.errors,
                dir.display()
            );
        }
    }
    if report_failures(&exec) > 0 {
        return ExitCode::from(EXIT_FAILED_RUNS);
    }
    ExitCode::SUCCESS
}
