//! `cellsim-client`: renders fabric figures from a `cellsim-serve`
//! daemon instead of simulating locally.
//!
//! ```text
//! cellsim-client --addr HOST:PORT [--quick|--full] [--figure <id>]...
//!                [--seed N] [--faults <plan.json>] [--stats]
//!                [--retries N] [--retry-base-ms N] [--retry-seed N]
//!
//!   --addr HOST:PORT    daemon address (required unless --help)
//!   --quick / --full    reduced / paper-scale sweep (same as repro)
//!   --figure <id>       only the named fabric figure: 8, 10, 12, 13,
//!                       15, 16, gups, stencil, pairlist (repeatable;
//!                       default: all nine)
//!   --seed N            placement lottery seed (same as repro)
//!   --faults <plan.json> fault plan applied to every batch, in-band
//!   --stats             print the daemon's counters and exit
//!   --retries N         reconnect/backoff budget per batch: attempts
//!                       after the first before giving up (default 5;
//!                       0 = fail fast)
//!   --retry-base-ms N   first backoff delay; doubles per attempt up
//!                       to a 5 s ceiling (default 100)
//!   --retry-seed N      seeds the backoff jitter, making the retry
//!                       schedule reproducible (default 0)
//!
//! exit codes: 0 ok, 2 runs failed on the daemon, 3 bad invocation
//!             or daemon unreachable/refusing
//! ```
//!
//! Batches ride a reconnect-and-resume client: if the daemon dies or
//! drains mid-batch, the client backs off, reconnects, and re-requests
//! only the runs it has not yet been answered for. Results are keyed
//! content-addressed, so a resumed figure is byte-identical to an
//! uninterrupted one.
//!
//! The client expands each figure into the exact per-placement
//! [`RunSpec`] batch `repro` would simulate (via
//! [`cellsim_core::experiments::figure_specs`]), streams it to the
//! daemon, verifies every returned report against the run key that
//! requested it, preloads the reports into a local cache-only
//! executor, and renders through the same `figureN_with` entry points.
//! The figure text is therefore byte-identical to
//! `repro --figure <id> ...` minus repro's two header lines
//! (`tail -n +3`).

use std::process::ExitCode;

use cellsim_core::exec::{RunSpec, SweepExecutor};
use cellsim_core::experiments::{
    figure10_with, figure12_with, figure13_with, figure15_with, figure16_with, figure8_with,
    figure_gups_with, figure_pairlist_with, figure_points, figure_specs, figure_stencil_with,
    ExperimentConfig, ExperimentError,
};
use cellsim_core::{CellSystem, FaultPlan};
use cellsim_serve::{Client, ClientError, ResilientClient, RetryPolicy};

const EXIT_FAILED_RUNS: u8 = 2;
const EXIT_BAD_INVOCATION: u8 = 3;

/// The fabric figures the serve protocol can replay, in render order.
const FABRIC_FIGURES: &[&str] = &[
    "8", "10", "12", "13", "15", "16", "gups", "stencil", "pairlist",
];

struct Args {
    addr: String,
    cfg: ExperimentConfig,
    figures: Vec<String>,
    faults: Option<FaultPlan>,
    stats: bool,
    retries: u32,
    retry_base_ms: u64,
    retry_seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut addr = None;
    let mut cfg = ExperimentConfig::default();
    let mut seed = None;
    let mut figures = Vec::new();
    let mut faults = None;
    let mut stats = false;
    let mut retries: u32 = 5;
    let mut retry_base_ms: u64 = 100;
    let mut retry_seed: u64 = 0;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |what: &str| argv.next().ok_or(format!("{arg} needs {what}"));
        match arg.as_str() {
            "--addr" => addr = Some(value("an address")?),
            "--quick" => cfg = ExperimentConfig::quick(),
            "--full" => cfg = ExperimentConfig::full(),
            "--seed" => {
                let n = value("a seed")?;
                seed = Some(n.parse().map_err(|_| format!("bad seed: {n}"))?);
            }
            "--figure" => {
                let id = value("an id")?;
                if !FABRIC_FIGURES.contains(&id.as_str()) {
                    return Err(format!(
                        "figure {id} is not served over the wire (fabric figures only: {})",
                        FABRIC_FIGURES.join(", ")
                    ));
                }
                figures.push(id);
            }
            "--faults" => {
                let file = value("a plan file")?;
                let text = std::fs::read_to_string(&file)
                    .map_err(|e| format!("could not read {file}: {e}"))?;
                faults = Some(FaultPlan::parse(&text).map_err(|e| format!("{file}: {e}"))?);
            }
            "--stats" => stats = true,
            "--retries" => {
                let n = value("a count")?;
                retries = n.parse().map_err(|_| format!("bad retry count: {n}"))?;
            }
            "--retry-base-ms" => {
                let n = value("a delay")?;
                retry_base_ms = n.parse().map_err(|_| format!("bad delay: {n}"))?;
            }
            "--retry-seed" => {
                let n = value("a seed")?;
                retry_seed = n.parse().map_err(|_| format!("bad seed: {n}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "cellsim-client --addr HOST:PORT [--quick|--full] [--figure <id>]... \
                     [--seed N] [--faults <plan.json>] [--stats] [--retries N] \
                     [--retry-base-ms N] [--retry-seed N]\n\n\
                     Renders fabric figures from a cellsim-serve daemon, reconnecting \
                     and resuming across daemon restarts; see README §cellsim-serve \
                     for the line protocol."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if let Some(seed) = seed {
        cfg.seed = seed;
    }
    if let Some(plan) = &faults {
        if !plan.fused_spes.is_empty() {
            return Err(
                "fault plans with fused_spes change figure semantics; run them \
                 locally via repro --figure degraded"
                    .into(),
            );
        }
    }
    let addr = addr.ok_or("missing --addr (daemon address)")?;
    Ok(Args {
        addr,
        cfg,
        figures,
        faults,
        stats,
        retries,
        retry_base_ms,
        retry_seed,
    })
}

fn err_string(e: ExperimentError) -> String {
    e.to_string()
}

/// Fetches one figure's runs from the daemon and preloads the reports
/// into `exec`. Returns the number of failed runs (reported on stderr).
fn fetch_figure(
    client: &mut ResilientClient,
    exec: &SweepExecutor,
    specs: Vec<RunSpec>,
    id: &str,
    faults: Option<&FaultPlan>,
) -> Result<usize, ClientError> {
    let outcome = client.run_batch(id, faults, &specs)?;
    let mut failed = 0;
    for (spec, result) in specs.into_iter().zip(outcome.results) {
        match result {
            Ok(report) => exec.preload(spec.key, report),
            Err(failure) => {
                eprintln!("failed run: {failure}");
                failed += 1;
            }
        }
    }
    Ok(failed)
}

fn print_stats(client: &mut Client) -> Result<(), ClientError> {
    let s = client.stats()?;
    println!(
        "cellsim-serve stats: {} connection(s), {} queued (high water {}, \
         peak {}), {} in flight, {} deduped, {} accepted, {} completed, \
         {} rejected",
        s.connections,
        s.queue_depth,
        s.high_water,
        s.queue_peak,
        s.inflight,
        s.deduped,
        s.accepted,
        s.completed,
        s.rejected
    );
    println!(
        "uptime: {} ms wall, {} simulated cycles",
        s.uptime_ms, s.uptime_cycles
    );
    println!(
        "run cache: {} hits / {} misses",
        s.cache_hits, s.cache_misses
    );
    match s.disk_entries {
        Some((entries, bytes)) => println!("disk cache: {entries} entries, {bytes} bytes"),
        None => println!("disk cache: not attached"),
    }
    Ok(())
}

fn run(args: &Args) -> Result<usize, String> {
    if args.stats {
        let mut client = Client::connect(args.addr.as_str())
            .map_err(|e| format!("could not connect to {}: {e}", args.addr))?;
        print_stats(&mut client).map_err(|e| e.to_string())?;
        return Ok(0);
    }
    let policy = RetryPolicy::new(
        std::time::Duration::from_millis(args.retry_base_ms),
        std::time::Duration::from_secs(5),
        args.retries,
        args.retry_seed,
    );
    let mut client = ResilientClient::fixed(&args.addr, policy);
    let system = match &args.faults {
        Some(plan) => CellSystem::blade().with_faults(plan.clone()),
        None => CellSystem::blade(),
    };
    let cfg = &args.cfg;
    // Replay executor: single-threaded and never asked to simulate —
    // every run the renderers request below was preloaded off the wire.
    let exec = SweepExecutor::new(1);
    let wanted = |id: &str| args.figures.is_empty() || args.figures.iter().any(|f| f == id);
    let mut failed = 0;
    for id in FABRIC_FIGURES {
        if !wanted(id) {
            continue;
        }
        let points = figure_points(cfg, id)
            .map_err(err_string)?
            .ok_or_else(|| format!("figure {id} has no fabric sweep"))?;
        let specs = figure_specs(&system, cfg, &points);
        failed += fetch_figure(&mut client, &exec, specs, id, args.faults.as_ref())
            .map_err(|e| format!("figure {id}: {e}"))?;
        match *id {
            "8" => {
                for f in figure8_with(&exec, &system, cfg).map_err(err_string)? {
                    println!("{f}");
                }
            }
            "10" => println!(
                "{}",
                figure10_with(&exec, &system, cfg).map_err(err_string)?
            ),
            "12" => {
                for f in figure12_with(&exec, &system, cfg).map_err(err_string)? {
                    println!("{f}");
                }
            }
            "13" => {
                for f in figure13_with(&exec, &system, cfg).map_err(err_string)? {
                    println!("{f}");
                }
            }
            "15" => {
                for f in figure15_with(&exec, &system, cfg).map_err(err_string)? {
                    println!("{f}");
                }
            }
            "16" => {
                for f in figure16_with(&exec, &system, cfg).map_err(err_string)? {
                    println!("{f}");
                }
            }
            "gups" => println!(
                "{}",
                figure_gups_with(&exec, &system, cfg).map_err(err_string)?
            ),
            "stencil" => println!(
                "{}",
                figure_stencil_with(&exec, &system, cfg).map_err(err_string)?
            ),
            "pairlist" => println!(
                "{}",
                figure_pairlist_with(&exec, &system, cfg).map_err(err_string)?
            ),
            _ => unreachable!("FABRIC_FIGURES is fixed"),
        }
        // Rendering re-requests exactly the preloaded keys; a failed
        // run would be re-simulated locally, so drain those records to
        // keep the process honest about where work happened.
        exec.take_failures();
    }
    Ok(failed)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(EXIT_BAD_INVOCATION);
        }
    };
    match run(&args) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(failed) => {
            eprintln!("cellsim-client: {failed} run(s) failed on the daemon");
            ExitCode::from(EXIT_FAILED_RUNS)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(EXIT_BAD_INVOCATION)
        }
    }
}
