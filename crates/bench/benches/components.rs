//! Component micro-benchmarks: the hot paths of the simulator itself.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cellsim_eib::{Eib, EibConfig, Element, FlowClass, Topology, TransferRequest};
use cellsim_kernel::{Cycle, EventQueue};
use cellsim_mem::{BankConfig, Op, XdrBank};
use cellsim_mfc::{DmaCommand, DmaKind, EffectiveAddr, Issue, LsAddr, MfcConfig, MfcEngine, TagId};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("kernel/event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1024u64 {
                q.push(Cycle::new(i * 7 % 997), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum += e;
            }
            black_box(sum)
        })
    });
}

fn bench_eib(c: &mut Criterion) {
    c.bench_function("eib/submit_arbitrate_64", |b| {
        b.iter(|| {
            let mut eib = Eib::new(Topology::cbe(), EibConfig::default());
            for i in 0..64u64 {
                let src = Element::spe((i % 8) as u8);
                let dst = Element::spe(((i + 1) % 8) as u8);
                eib.submit(
                    Cycle::ZERO,
                    i,
                    TransferRequest {
                        src,
                        dst,
                        bytes: 128,
                        class: FlowClass::MfcOut,
                    },
                );
            }
            let mut now = Cycle::ZERO;
            let mut granted = 0;
            while eib.has_pending() {
                granted += eib.arbitrate(now).len();
                if let Some(t) = eib.next_release_after(now) {
                    now = t;
                } else {
                    break;
                }
            }
            black_box(granted)
        })
    });
}

fn bench_mfc(c: &mut Criterion) {
    c.bench_function("mfc/unroll_16k_command", |b| {
        b.iter(|| {
            let mut mfc =
                MfcEngine::new(MfcConfig::default()).expect("default MFC config is valid");
            let cmd = DmaCommand::new(
                DmaKind::Get,
                LsAddr(0),
                EffectiveAddr::Memory {
                    region: cellsim_mem::RegionId(0),
                    offset: 0,
                },
                16 * 1024,
                TagId::new(0).unwrap(),
            )
            .unwrap();
            mfc.enqueue(Cycle::ZERO, cmd).unwrap();
            let mut now = Cycle::ZERO;
            let mut packets = 0;
            loop {
                match mfc.try_issue(now) {
                    Issue::Packet(p) => {
                        packets += 1;
                        mfc.packet_delivered(now, p.token);
                        now += 1;
                    }
                    Issue::Stalled { retry_at } => now = retry_at,
                    _ => break,
                }
            }
            black_box(packets)
        })
    });
}

fn bench_bank(c: &mut Criterion) {
    c.bench_function("mem/bank_submit_1k", |b| {
        b.iter(|| {
            let mut bank = XdrBank::new(BankConfig::local_xdr());
            let mut last = Cycle::ZERO;
            for i in 0..1024 {
                let op = if i % 3 == 0 { Op::Write } else { Op::Read };
                last = bank.submit(Cycle::ZERO, op, 128).data_ready;
            }
            black_box(last)
        })
    });
}

criterion_group!(benches, bench_event_queue, bench_eib, bench_mfc, bench_bank);
criterion_main!(benches);
