//! Fabric-simulation throughput: simulated bytes per host second for the
//! paper's three traffic patterns, plus the ablation configurations.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use cellsim_core::{CellSystem, Placement, SyncPolicy, TransferPlan};

const VOLUME: u64 = 512 << 10;

fn plans() -> Vec<(&'static str, TransferPlan)> {
    let pair = TransferPlan::builder()
        .exchange_with(0, 1, VOLUME, 16 * 1024, SyncPolicy::AfterAll)
        .build()
        .unwrap();
    let mut b = TransferPlan::builder();
    for spe in 0..8 {
        b = b.get_from_memory(spe, VOLUME, 16 * 1024, SyncPolicy::AfterAll);
    }
    let mem8 = b.build().unwrap();
    let mut b = TransferPlan::builder();
    for spe in 0..8 {
        b = b.exchange_with(spe, (spe + 1) % 8, VOLUME, 16 * 1024, SyncPolicy::AfterAll);
    }
    let cycle8 = b.build().unwrap();
    let small = TransferPlan::builder()
        .exchange_with(0, 1, VOLUME / 4, 128, SyncPolicy::AfterAll)
        .build()
        .unwrap();
    vec![
        ("pair_16k", pair),
        ("mem_get_8spe", mem8),
        ("cycle_8spe", cycle8),
        ("pair_128b", small),
    ]
}

fn bench_fabric(c: &mut Criterion) {
    let system = CellSystem::blade();
    let placement = Placement::identity();
    let mut g = c.benchmark_group("fabric");
    g.sample_size(10);
    for (name, plan) in plans() {
        g.throughput(Throughput::Bytes(plan.total_bytes()));
        g.bench_function(name, |b| {
            b.iter(|| black_box(system.try_run(&placement, &plan).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fabric);
criterion_main!(benches);
