//! One Criterion benchmark per paper figure: how long the simulator takes
//! to regenerate each result on a reduced sweep. Run the `repro` binary
//! for the actual tables.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cellsim_core::experiments::{
    figure10, figure12, figure13, figure15, figure16, figure3, figure4, figure6, figure8,
    section_4_2_2, ExperimentConfig,
};
use cellsim_core::CellSystem;

fn tiny() -> ExperimentConfig {
    ExperimentConfig {
        volume_per_spe: 128 << 10,
        dma_elem_sizes: vec![1024, 16384],
        placements: 2,
        seed: 0xCE11,
    }
}

fn bench_figures(c: &mut Criterion) {
    let system = CellSystem::blade();
    let cfg = tiny();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("fig03_ppe_l1", |b| b.iter(|| black_box(figure3(&system))));
    g.bench_function("fig04_ppe_l2", |b| b.iter(|| black_box(figure4(&system))));
    g.bench_function("fig06_ppe_mem", |b| b.iter(|| black_box(figure6(&system))));
    g.bench_function("fig08_spe_mem", |b| {
        b.iter(|| black_box(figure8(&system, &cfg)))
    });
    g.bench_function("sec422_spu_ls", |b| {
        b.iter(|| black_box(section_4_2_2(&system)))
    });
    g.bench_function("fig10_sync", |b| {
        b.iter(|| black_box(figure10(&system, &cfg)))
    });
    g.bench_function("fig12_couples", |b| {
        b.iter(|| black_box(figure12(&system, &cfg)))
    });
    g.bench_function("fig13_couples_spread", |b| {
        b.iter(|| black_box(figure13(&system, &cfg)))
    });
    g.bench_function("fig15_cycle", |b| {
        b.iter(|| black_box(figure15(&system, &cfg)))
    });
    g.bench_function("fig16_cycle_spread", |b| {
        b.iter(|| black_box(figure16(&system, &cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
