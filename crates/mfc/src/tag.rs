//! MFC tag groups.
//!
//! Every DMA command carries one of 32 tags; software waits for
//! completion by tag group (`mfc_write_tag_mask` + `mfc_read_tag_status`).
//! The paper's delayed-synchronization experiment is entirely about *when*
//! to perform that wait.

use std::fmt;

use crate::command::DmaError;

/// One of the 32 MFC tag-group identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TagId(u8);

impl TagId {
    /// Number of tag groups per MFC.
    pub const COUNT: usize = 32;

    /// Creates a tag.
    ///
    /// # Errors
    ///
    /// Returns [`DmaError::BadTag`] if `value >= 32`.
    pub fn new(value: u8) -> Result<TagId, DmaError> {
        if usize::from(value) >= Self::COUNT {
            return Err(DmaError::BadTag(value));
        }
        Ok(TagId(value))
    }

    /// The raw tag value (0..32).
    pub fn value(self) -> u8 {
        self.0
    }
}

impl fmt::Display for TagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag{}", self.0)
    }
}

/// Per-tag outstanding-work counters for one MFC.
///
/// A tag group is *complete* when no queued command and no in-flight
/// packet still references it.
#[derive(Debug, Clone, Default)]
pub struct TagSet {
    pending: [u32; TagId::COUNT],
}

impl TagSet {
    /// A tag set with nothing outstanding.
    pub fn new() -> TagSet {
        TagSet::default()
    }

    /// Records one unit of outstanding work on `tag`.
    pub fn retain(&mut self, tag: TagId) {
        self.pending[usize::from(tag.value())] += 1;
    }

    /// Releases one unit of outstanding work on `tag`.
    ///
    /// # Panics
    ///
    /// Panics if the tag has no outstanding work — that is a bookkeeping
    /// bug in the caller.
    pub fn release(&mut self, tag: TagId) {
        let slot = &mut self.pending[usize::from(tag.value())];
        assert!(*slot > 0, "release of idle {tag}");
        *slot -= 1;
    }

    /// Whether the tag group has outstanding work.
    pub fn is_pending(&self, tag: TagId) -> bool {
        self.pending[usize::from(tag.value())] > 0
    }

    /// Whether any work is outstanding under any tag.
    pub fn any_pending(&self) -> bool {
        self.pending.iter().any(|&c| c > 0)
    }

    /// Whether every tag in `mask` (bit *i* = tag *i*) is complete —
    /// the `mfc_read_tag_status_all` condition.
    pub fn mask_complete(&self, mask: u32) -> bool {
        (0..TagId::COUNT).all(|i| mask & (1 << i) == 0 || self.pending[i] == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_range_is_validated() {
        assert!(TagId::new(0).is_ok());
        assert!(TagId::new(31).is_ok());
        assert_eq!(TagId::new(32), Err(DmaError::BadTag(32)));
    }

    #[test]
    fn retain_release_round_trip() {
        let mut set = TagSet::new();
        let t = TagId::new(5).unwrap();
        assert!(!set.is_pending(t));
        set.retain(t);
        set.retain(t);
        assert!(set.is_pending(t));
        set.release(t);
        assert!(set.is_pending(t));
        set.release(t);
        assert!(!set.is_pending(t));
        assert!(!set.any_pending());
    }

    #[test]
    fn mask_completion_checks_only_selected_tags() {
        let mut set = TagSet::new();
        set.retain(TagId::new(3).unwrap());
        assert!(set.mask_complete(0b0001)); // tag 0 idle
        assert!(!set.mask_complete(0b1000)); // tag 3 busy
        assert!(!set.mask_complete(0b1001));
    }

    #[test]
    #[should_panic(expected = "release of idle")]
    fn releasing_idle_tag_panics() {
        let mut set = TagSet::new();
        set.release(TagId::new(0).unwrap());
    }
}
