//! The MFC DMA engine: command queue, unroller, outstanding budget.

use std::collections::VecDeque;
use std::fmt;

use cellsim_faults::{MfcFaults, RetryPolicy};
use cellsim_kernel::Cycle;

use crate::command::{
    CommandLifecycle, DmaCommand, DmaError, DmaKind, EffectiveAddr, ElementLifecycle, LsAddr,
    TargetClass,
};
use crate::list::DmaListCommand;
use crate::tag::{TagId, TagSet};

/// Why an [`MfcConfig`] cannot build an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `queue_depth` is zero.
    ZeroQueueDepth,
    /// `max_outstanding_packets` is zero.
    ZeroOutstandingBudget,
    /// `packet_bytes` is zero.
    ZeroPacketBytes,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroQueueDepth => write!(f, "MFC queue depth must be non-zero"),
            ConfigError::ZeroOutstandingBudget => {
                write!(f, "MFC outstanding-packet budget must be non-zero")
            }
            ConfigError::ZeroPacketBytes => write!(f, "MFC packet size must be non-zero"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// The engine's answer to a NACKed in-flight packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NackVerdict {
    /// Back off and re-attempt the access at `at`.
    Retry {
        /// Earliest cycle the retry may be attempted.
        at: Cycle,
        /// Which retry this is for the owning command (1-based).
        attempt: u32,
    },
    /// The owning command's retry budget is spent; the packet must be
    /// abandoned via [`MfcEngine::packet_abandoned`]. Carries the typed
    /// error for reporting.
    Exhausted(DmaError),
}

/// Structural parameters of one MFC. Times are bus cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MfcConfig {
    /// SPU command-queue depth (16 on the CBE).
    pub queue_depth: usize,
    /// Bus packets the MFC's bus interface keeps in flight. Together with
    /// the memory round-trip latency this bounds a single SPE's memory
    /// bandwidth (Little's law) — the paper's 10 GB/s single-SPE ceiling.
    pub max_outstanding_packets: usize,
    /// Bus packet payload (128 B on the CBE).
    pub packet_bytes: u32,
    /// Minimum cycles between packet issues.
    pub issue_interval: u64,
    /// Decode/startup cycles paid once per queued command. Dominates
    /// small DMA-elem transfers; amortized away by DMA lists.
    pub command_startup: u64,
    /// Extra cycles when the unroller advances to the next list element
    /// (list-element fetch from Local Store).
    pub list_element_overhead: u64,
}

impl Default for MfcConfig {
    fn default() -> Self {
        MfcConfig {
            queue_depth: 16,
            max_outstanding_packets: 8,
            packet_bytes: 128,
            issue_interval: 1,
            command_startup: 24,
            list_element_overhead: 2,
        }
    }
}

/// Opaque identifier of an issued packet; hand it back via
/// [`MfcEngine::packet_delivered`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketToken(pub u64);

/// A bus packet produced by the unroller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketOut {
    /// Identifier to report delivery with.
    pub token: PacketToken,
    /// Direction (from the initiating SPE's point of view).
    pub kind: DmaKind,
    /// Local Store side of this packet.
    pub ls: LsAddr,
    /// Effective-address side of this packet.
    pub ea: EffectiveAddr,
    /// Payload bytes (≤ `packet_bytes`).
    pub bytes: u32,
    /// Tag group of the owning command.
    pub tag: TagId,
}

/// Result of asking the engine for its next packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Issue {
    /// A packet was issued; route it through the bus and report delivery.
    Packet(PacketOut),
    /// Nothing can issue before `retry_at` (startup window or pacing).
    Stalled {
        /// Earliest cycle at which issuing may succeed.
        retry_at: Cycle,
    },
    /// The outstanding-packet budget is exhausted (or everything queued is
    /// already in flight); retry after the next delivery.
    Blocked,
    /// The command queue is empty.
    Idle,
}

/// Aggregate counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MfcStats {
    /// Commands accepted into the queue.
    pub commands: u64,
    /// Commands fully completed.
    pub completed: u64,
    /// Packets issued.
    pub packets: u64,
    /// Payload bytes fully delivered.
    pub bytes_delivered: u64,
}

#[derive(Debug)]
enum Work {
    Elem(DmaCommand),
    List(DmaListCommand),
}

impl Work {
    fn kind(&self) -> DmaKind {
        match self {
            Work::Elem(c) => c.kind(),
            Work::List(l) => l.kind(),
        }
    }
    fn tag(&self) -> TagId {
        match self {
            Work::Elem(c) => c.tag(),
            Work::List(l) => l.tag(),
        }
    }
    fn fence(&self) -> bool {
        match self {
            Work::Elem(c) => c.fence(),
            Work::List(l) => l.fence(),
        }
    }
    fn element_count(&self) -> usize {
        match self {
            Work::Elem(_) => 1,
            Work::List(l) => l.elements().len(),
        }
    }
    fn total_bytes(&self) -> u64 {
        match self {
            Work::Elem(c) => u64::from(c.bytes()),
            Work::List(l) => l.elements().iter().map(|e| u64::from(e.bytes)).sum(),
        }
    }
    fn target(&self) -> TargetClass {
        match self {
            Work::Elem(c) => TargetClass::from(&c.ea()),
            Work::List(l) => TargetClass::from(&l.ea_base()),
        }
    }
    fn element_bytes(&self, idx: usize) -> u32 {
        match self {
            Work::Elem(c) => c.bytes(),
            Work::List(l) => l.elements()[idx].bytes,
        }
    }
    /// (effective address, size) of element `idx`.
    fn element(&self, idx: usize) -> (EffectiveAddr, u32) {
        match self {
            Work::Elem(c) => (c.ea(), c.bytes()),
            Work::List(l) => {
                let el = l.elements()[idx];
                (l.ea_base().advanced(el.ea_offset), el.bytes)
            }
        }
    }
    fn ls_base(&self) -> LsAddr {
        match self {
            Work::Elem(c) => c.ls(),
            Work::List(l) => l.ls(),
        }
    }
}

#[derive(Debug)]
struct ActiveCommand {
    seq: u64,
    work: Work,
    /// Element currently being unrolled.
    elem_idx: usize,
    /// Bytes of the current element already issued.
    byte_in_elem: u64,
    /// Running Local Store cursor (elements pack contiguously).
    ls_cursor: u32,
    /// Gate before the first (or next list-element) packet may issue.
    ready_at: Cycle,
    /// Packets issued but not yet delivered.
    in_flight: u32,
    /// Lifecycle stamps accumulated while the command is in the queue;
    /// handed out whole via [`MfcEngine::take_completed`] at retirement.
    life: CommandLifecycle,
}

impl ActiveCommand {
    fn fully_issued(&self) -> bool {
        self.elem_idx >= self.work.element_count()
    }
}

#[derive(Debug, Clone, Copy)]
struct PacketMeta {
    cmd_seq: u64,
    bytes: u32,
    /// List element the packet was carved from (0 for DMA-elem).
    elem_idx: usize,
}

/// One SPE's Memory Flow Controller.
///
/// The engine is a passive state machine driven by an outer event loop:
/// [`MfcEngine::enqueue`] admits commands, [`MfcEngine::try_issue`]
/// produces bus packets, and [`MfcEngine::packet_delivered`] retires them.
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct MfcEngine {
    cfg: MfcConfig,
    queue: VecDeque<ActiveCommand>,
    /// In-flight packets, keyed by token. A flat vector beats a hash map
    /// here: the outstanding budget caps the live set at a handful of
    /// entries, and the set is never iterated in key order.
    packets: Vec<(u64, PacketMeta)>,
    tags: TagSet,
    outstanding: usize,
    next_issue: Cycle,
    /// The single command decoder: commands decode serially, pipelined
    /// with packet issue from already-decoded commands.
    decoder_free: Cycle,
    /// Round-robin pointer so the unroller interleaves ready commands
    /// (the real MFC selects among queued commands — this is what lets a
    /// get and a put stream run concurrently).
    rr: u64,
    next_seq: u64,
    next_token: u64,
    stats: MfcStats,
    /// Time-weighted outstanding-slot histogram: `occupancy[k]` is how
    /// many cycles exactly `k` packets were in flight. Bucket
    /// `max_outstanding_packets` saturated time is the Little's-law
    /// signature of the single-SPE bandwidth ceiling.
    occupancy: Vec<u64>,
    /// Cycle since which `outstanding` has held its current value.
    occ_since: Cycle,
    /// Lifecycle record of the most recently completed command, until
    /// claimed via [`MfcEngine::take_completed`]. At most one command can
    /// complete per [`MfcEngine::packet_delivered`] call, so draining
    /// right after a `true` return is lossless.
    last_completed: Option<CommandLifecycle>,
    /// Degraded-mode behaviour (slot-count reduction, queue stalls).
    faults: MfcFaults,
    /// NACK retry policy (budget + backoff).
    retry: RetryPolicy,
    /// Retired `element_records` buffers awaiting reuse, so steady-state
    /// command admission allocates nothing (see [`MfcEngine::recycle`]).
    lifecycle_pool: Vec<Vec<ElementLifecycle>>,
}

impl MfcEngine {
    /// Creates an idle engine.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the configuration has a zero queue
    /// depth, outstanding budget, or packet size.
    pub fn new(cfg: MfcConfig) -> Result<MfcEngine, ConfigError> {
        MfcEngine::with_faults(cfg, MfcFaults::default(), RetryPolicy::default())
    }

    /// Creates an idle engine with degraded-mode behaviour installed.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] under the same conditions as
    /// [`MfcEngine::new`].
    pub fn with_faults(
        cfg: MfcConfig,
        faults: MfcFaults,
        retry: RetryPolicy,
    ) -> Result<MfcEngine, ConfigError> {
        if cfg.queue_depth == 0 {
            return Err(ConfigError::ZeroQueueDepth);
        }
        if cfg.max_outstanding_packets == 0 {
            return Err(ConfigError::ZeroOutstandingBudget);
        }
        if cfg.packet_bytes == 0 {
            return Err(ConfigError::ZeroPacketBytes);
        }
        Ok(MfcEngine {
            cfg,
            queue: VecDeque::new(),
            packets: Vec::new(),
            tags: TagSet::new(),
            outstanding: 0,
            next_issue: Cycle::ZERO,
            decoder_free: Cycle::ZERO,
            rr: 0,
            next_seq: 0,
            next_token: 0,
            stats: MfcStats::default(),
            occupancy: vec![0; cfg.max_outstanding_packets + 1],
            occ_since: Cycle::ZERO,
            last_completed: None,
            faults,
            retry,
            lifecycle_pool: Vec::new(),
        })
    }

    /// The outstanding-packet budget currently in force: the configured
    /// budget, clipped by a fault-plan slot limit when one is installed.
    pub fn slot_budget(&self) -> usize {
        match self.faults.slot_limit {
            Some(limit) => (limit as usize).min(self.cfg.max_outstanding_packets),
            None => self.cfg.max_outstanding_packets,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &MfcConfig {
        &self.cfg
    }

    /// Aggregate counters.
    pub fn stats(&self) -> &MfcStats {
        &self.stats
    }

    /// Commands currently occupying queue entries.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether another command can be enqueued.
    pub fn has_space(&self) -> bool {
        self.queue.len() < self.cfg.queue_depth
    }

    /// Whether the engine has no queued commands and no packets in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.outstanding == 0
    }

    /// Tag-group status (for wait/sync decisions).
    pub fn tags(&self) -> &TagSet {
        &self.tags
    }

    /// Packets currently in flight on the bus.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Time-weighted outstanding-slot histogram: entry `k` is how many
    /// cycles exactly `k` packets were in flight. Counts are exact up to
    /// the last issue/delivery; call [`MfcEngine::flush_occupancy`] at the
    /// end of a run to account the final interval.
    pub fn occupancy_cycles(&self) -> &[u64] {
        &self.occupancy
    }

    /// Accounts the interval since the last occupancy change up to `now`.
    /// Idempotent; later issues/deliveries continue from `now`.
    pub fn flush_occupancy(&mut self, now: Cycle) {
        self.note_occupancy(now);
    }

    fn note_occupancy(&mut self, now: Cycle) {
        let dt = now.saturating_since(self.occ_since);
        self.occupancy[self.outstanding] += dt;
        self.occ_since = self.occ_since.max(now);
    }

    /// Admits a single-chunk (DMA-elem) command.
    ///
    /// # Errors
    ///
    /// Returns [`DmaError::QueueFull`] when all queue entries are occupied
    /// (a command occupies its entry until its last packet is delivered,
    /// as on the real part).
    pub fn enqueue(&mut self, now: Cycle, cmd: DmaCommand) -> Result<(), DmaError> {
        self.admit(now, Work::Elem(cmd))
    }

    /// Admits a DMA-list command.
    ///
    /// # Errors
    ///
    /// Returns [`DmaError::QueueFull`] when all queue entries are occupied.
    pub fn enqueue_list(&mut self, now: Cycle, cmd: DmaListCommand) -> Result<(), DmaError> {
        self.admit(now, Work::List(cmd))
    }

    fn admit(&mut self, now: Cycle, work: Work) -> Result<(), DmaError> {
        if !self.has_space() {
            return Err(DmaError::QueueFull);
        }
        self.tags.retain(work.tag());
        let seq = self.next_seq;
        self.next_seq += 1;
        let ls_cursor = work.ls_base().0;
        // Decode is serialized across commands but pipelined with issue.
        let decoded = now.max(self.decoder_free) + self.cfg.command_startup;
        self.decoder_free = decoded;
        let life = CommandLifecycle {
            kind: work.kind(),
            target: work.target(),
            bytes: work.total_bytes(),
            elements: u32::try_from(work.element_count()).expect("list length fits u32"),
            packets: 0,
            enqueued_at: now,
            decoded_at: decoded,
            first_issue_at: Cycle::ZERO,
            last_issue_at: Cycle::ZERO,
            first_grant_at: Cycle::ZERO,
            last_grant_at: Cycle::ZERO,
            packets_granted: 0,
            eib_wait_cycles: 0,
            bank_service_cycles: 0,
            completed_at: Cycle::ZERO,
            nacks: 0,
            retries: 0,
            retry_backoff_cycles: 0,
            exhausted: false,
            element_records: {
                let mut records = self.lifecycle_pool.pop().unwrap_or_default();
                records.extend((0..work.element_count()).map(|i| ElementLifecycle {
                    bytes: work.element_bytes(i),
                    first_issue_at: Cycle::ZERO,
                    completed_at: Cycle::ZERO,
                }));
                records
            },
        };
        self.queue.push_back(ActiveCommand {
            seq,
            work,
            elem_idx: 0,
            byte_in_elem: 0,
            ls_cursor,
            ready_at: decoded,
            in_flight: 0,
            life,
        });
        self.stats.commands += 1;
        Ok(())
    }

    /// Produces the next bus packet if structural resources allow.
    pub fn try_issue(&mut self, now: Cycle) -> Issue {
        if self.queue.is_empty() {
            return Issue::Idle;
        }
        // A fault-plan stall window freezes the unroller outright: nothing
        // issues until the longest containing window ends. Checked before
        // the budget so a stalled engine reports a concrete wake-up time.
        if let Some(until) = self.faults.stalled_until(now.as_u64()) {
            return Issue::Stalled {
                retry_at: Cycle::new(until),
            };
        }
        if self.outstanding >= self.slot_budget() {
            return Issue::Blocked;
        }
        if self.next_issue > now {
            return Issue::Stalled {
                retry_at: self.next_issue,
            };
        }
        // Round-robin over decoded, not-fully-issued commands.
        let len = self.queue.len();
        let mut pos = None;
        let mut earliest_gate: Option<Cycle> = None;
        for k in 0..len {
            let i = (self.rr as usize + k) % len;
            let c = &self.queue[i];
            if c.fully_issued() {
                continue;
            }
            // A fenced command waits until every older command of its tag
            // group has fully completed (left the queue).
            if c.work.fence() {
                let tag = c.work.tag();
                let seq = c.seq;
                let blocked = self
                    .queue
                    .iter()
                    .any(|o| o.seq < seq && o.work.tag() == tag);
                if blocked {
                    continue; // re-polled after the blocking delivery
                }
            }
            if c.ready_at <= now {
                pos = Some(i);
                break;
            }
            earliest_gate = Some(match earliest_gate {
                Some(g) => g.min(c.ready_at),
                None => c.ready_at,
            });
        }
        let Some(pos) = pos else {
            return match earliest_gate {
                // All unissued commands are still decoding/fetching.
                Some(gate) => Issue::Stalled { retry_at: gate },
                // Everything issued, awaiting delivery.
                None => Issue::Blocked,
            };
        };
        self.rr = pos as u64 + 1;
        let cmd = &mut self.queue[pos];

        // Carve the next packet out of the current element, splitting on
        // effective-address packet boundaries.
        let (ea_base, elem_bytes) = cmd.work.element(cmd.elem_idx);
        let ea = ea_base.advanced(cmd.byte_in_elem);
        let remaining = u64::from(elem_bytes) - cmd.byte_in_elem;
        let boundary =
            u64::from(self.cfg.packet_bytes) - ea.offset() % u64::from(self.cfg.packet_bytes);
        let chunk = remaining.min(boundary);
        let chunk = u32::try_from(chunk).expect("chunk fits u32");

        let packet = PacketOut {
            token: PacketToken(self.next_token),
            kind: cmd.work.kind(),
            ls: LsAddr(cmd.ls_cursor),
            ea,
            bytes: chunk,
            tag: cmd.work.tag(),
        };
        self.packets.push((
            self.next_token,
            PacketMeta {
                cmd_seq: cmd.seq,
                bytes: chunk,
                elem_idx: cmd.elem_idx,
            },
        ));
        self.next_token += 1;

        if cmd.life.packets == 0 {
            cmd.life.first_issue_at = now;
        }
        cmd.life.last_issue_at = now;
        cmd.life.packets += 1;
        if cmd.byte_in_elem == 0 {
            cmd.life.element_records[cmd.elem_idx].first_issue_at = now;
        }

        cmd.byte_in_elem += u64::from(chunk);
        cmd.ls_cursor += chunk;
        cmd.in_flight += 1;
        if cmd.byte_in_elem >= u64::from(elem_bytes) {
            cmd.elem_idx += 1;
            cmd.byte_in_elem = 0;
            if !cmd.fully_issued() {
                // List-element fetch before the next element may issue.
                cmd.ready_at = now + self.cfg.list_element_overhead;
            }
        }

        self.note_occupancy(now);
        self.outstanding += 1;
        self.next_issue = now + self.cfg.issue_interval;
        self.stats.packets += 1;
        Issue::Packet(packet)
    }

    /// Retires a delivered packet; returns `true` if this completed the
    /// owning command (its queue entry is then freed and, if it was the
    /// tag group's last work, the tag becomes quiescent).
    ///
    /// # Panics
    ///
    /// Panics if `token` was never issued or is reported twice.
    pub fn packet_delivered(&mut self, now: Cycle, token: PacketToken) -> bool {
        self.retire_packet(now, token, true)
    }

    /// Retires an in-flight packet whose access was given up on after its
    /// retry budget ran out (see [`MfcEngine::note_nack`]). Identical to
    /// [`MfcEngine::packet_delivered`] except the payload bytes are *not*
    /// credited as delivered and the owning command is marked exhausted —
    /// the queue entry, outstanding slot, and tag group still drain so the
    /// fabric keeps making progress. Returns `true` when this freed the
    /// owning command's queue entry.
    ///
    /// # Panics
    ///
    /// Panics if `token` was never issued or is reported twice.
    pub fn packet_abandoned(&mut self, now: Cycle, token: PacketToken) -> bool {
        self.retire_packet(now, token, false)
    }

    fn retire_packet(&mut self, now: Cycle, token: PacketToken, credited: bool) -> bool {
        let slot = self
            .packets
            .iter()
            .position(|&(tok, _)| tok == token.0)
            .expect("unknown or double-delivered packet token");
        let (_, meta) = self.packets.swap_remove(slot);
        assert!(self.outstanding > 0, "delivery with no packets outstanding");
        self.note_occupancy(now);
        self.outstanding -= 1;
        if credited {
            self.stats.bytes_delivered += u64::from(meta.bytes);
        }
        let pos = self
            .queue
            .iter()
            .position(|c| c.seq == meta.cmd_seq)
            .expect("delivered packet's command not in queue");
        let cmd = &mut self.queue[pos];
        cmd.in_flight -= 1;
        if !credited {
            cmd.life.exhausted = true;
        }
        let elem = &mut cmd.life.element_records[meta.elem_idx];
        elem.completed_at = elem.completed_at.max(now);
        if cmd.fully_issued() && cmd.in_flight == 0 {
            let tag = cmd.work.tag();
            let mut done = self.queue.remove(pos).expect("pos in bounds");
            done.life.completed_at = now;
            self.last_completed = Some(done.life);
            self.tags.release(tag);
            self.stats.completed += 1;
            true
        } else {
            false
        }
    }

    /// Records a transient NACK against an in-flight packet and decides
    /// its fate: a bounded-exponential-backoff retry while the owning
    /// command's budget lasts, [`NackVerdict::Exhausted`] once it is
    /// spent. Retry backoff cycles are stamped onto the command's
    /// lifecycle so latency attribution can separate retry time.
    ///
    /// # Panics
    ///
    /// Panics if `token` is not currently in flight.
    pub fn note_nack(&mut self, now: Cycle, token: PacketToken) -> NackVerdict {
        let (max_retries, policy) = (self.retry.max_retries, self.retry);
        let cmd = self.in_flight_mut(token);
        cmd.life.nacks += 1;
        if cmd.life.retries >= max_retries {
            return NackVerdict::Exhausted(DmaError::RetriesExhausted(cmd.life.retries));
        }
        cmd.life.retries += 1;
        let attempt = cmd.life.retries;
        let delay = policy.backoff(attempt);
        cmd.life.retry_backoff_cycles += delay;
        NackVerdict::Retry {
            at: now + delay,
            attempt,
        }
    }

    /// Records an EIB data-ring grant for an in-flight packet: stamps the
    /// owning command's first/last grant times and accumulates `waited`
    /// cycles of data-arbiter queueing. Call between issue and delivery.
    ///
    /// # Panics
    ///
    /// Panics if `token` is not currently in flight.
    pub fn note_grant(&mut self, now: Cycle, token: PacketToken, waited: u64) {
        let cmd = self.in_flight_mut(token);
        if cmd.life.packets_granted == 0 {
            cmd.life.first_grant_at = now;
        }
        cmd.life.last_grant_at = cmd.life.last_grant_at.max(now);
        cmd.life.packets_granted += 1;
        cmd.life.eib_wait_cycles += waited;
    }

    /// Accumulates DRAM data-pipe service cycles for an in-flight packet
    /// (its slice of bank busy time). Call between issue and delivery.
    ///
    /// # Panics
    ///
    /// Panics if `token` is not currently in flight.
    pub fn note_bank_service(&mut self, token: PacketToken, cycles: u64) {
        self.in_flight_mut(token).life.bank_service_cycles += cycles;
    }

    fn in_flight_mut(&mut self, token: PacketToken) -> &mut ActiveCommand {
        let meta = self
            .packets
            .iter()
            .find(|&&(tok, _)| tok == token.0)
            .map(|&(_, meta)| meta)
            .expect("packet token not in flight");
        let seq = meta.cmd_seq;
        self.queue
            .iter_mut()
            .find(|c| c.seq == seq)
            .expect("in-flight packet's command not in queue")
    }

    /// Claims the lifecycle record of the most recently completed command.
    /// Call right after [`MfcEngine::packet_delivered`] returns `true`;
    /// records left unclaimed are overwritten by the next completion
    /// (harnesses that don't track latency can simply never call this).
    pub fn take_completed(&mut self) -> Option<CommandLifecycle> {
        self.last_completed.take()
    }

    /// Returns a consumed [`CommandLifecycle`]'s element-record buffer to
    /// the admission pool. Optional — purely an allocation-recycling
    /// hook: harnesses that observe lifecycles and hand them back here
    /// let steady-state [`MfcEngine::enqueue`] run allocation-free.
    pub fn recycle(&mut self, life: CommandLifecycle) {
        const POOL_CAP: usize = 64;
        let mut records = life.element_records;
        if self.lifecycle_pool.len() < POOL_CAP {
            records.clear();
            self.lifecycle_pool.push(records);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellsim_mem::RegionId;

    fn tag(v: u8) -> TagId {
        TagId::new(v).unwrap()
    }

    fn mem_at(offset: u64) -> EffectiveAddr {
        EffectiveAddr::Memory {
            region: RegionId(0),
            offset,
        }
    }

    fn get(ls: u32, offset: u64, bytes: u32) -> DmaCommand {
        DmaCommand::new(DmaKind::Get, LsAddr(ls), mem_at(offset), bytes, tag(0)).unwrap()
    }

    /// Drives the engine, delivering each packet immediately, and returns
    /// the packets issued.
    fn drain(mfc: &mut MfcEngine) -> Vec<PacketOut> {
        let mut now = Cycle::ZERO;
        let mut out = Vec::new();
        loop {
            match mfc.try_issue(now) {
                Issue::Packet(p) => {
                    out.push(p);
                    mfc.packet_delivered(now, p.token);
                    now += 1;
                }
                Issue::Stalled { retry_at } => {
                    assert!(retry_at > now, "stall must make progress");
                    now = retry_at;
                }
                Issue::Blocked => panic!("blocked while delivering eagerly"),
                Issue::Idle => break,
            }
        }
        out
    }

    #[test]
    fn command_unrolls_into_aligned_packets() {
        let mut mfc = MfcEngine::new(MfcConfig::default()).unwrap();
        mfc.enqueue(Cycle::ZERO, get(0, 0, 512)).unwrap();
        let packets = drain(&mut mfc);
        assert_eq!(packets.len(), 4);
        assert!(packets.iter().all(|p| p.bytes == 128));
        assert_eq!(packets[2].ls, LsAddr(256));
        assert_eq!(packets[2].ea.offset(), 256);
        assert!(mfc.is_idle());
        assert_eq!(mfc.stats().completed, 1);
    }

    #[test]
    fn unaligned_ea_splits_on_packet_boundary() {
        // 128 bytes starting at EA offset 64: two 64-byte packets.
        let mut mfc = MfcEngine::new(MfcConfig::default()).unwrap();
        mfc.enqueue(Cycle::ZERO, get(0, 64, 128)).unwrap();
        let packets = drain(&mut mfc);
        assert_eq!(packets.len(), 2);
        assert_eq!(packets[0].bytes, 64);
        assert_eq!(packets[1].bytes, 64);
    }

    #[test]
    fn queue_depth_enforced_until_delivery() {
        let cfg = MfcConfig {
            queue_depth: 2,
            ..MfcConfig::default()
        };
        let mut mfc = MfcEngine::new(cfg).unwrap();
        mfc.enqueue(Cycle::ZERO, get(0, 0, 128)).unwrap();
        mfc.enqueue(Cycle::ZERO, get(128, 128, 128)).unwrap();
        assert_eq!(
            mfc.enqueue(Cycle::ZERO, get(256, 256, 128)),
            Err(DmaError::QueueFull)
        );
        // Decode (eager at enqueue) has long finished by cycle 100: issue
        // and deliver the first command so a queue slot frees.
        let now = Cycle::new(100);
        let Issue::Packet(p) = mfc.try_issue(now) else {
            panic!("expected packet")
        };
        assert!(mfc.packet_delivered(now, p.token));
        assert!(mfc.has_space());
        mfc.enqueue(now, get(256, 256, 128)).unwrap();
    }

    #[test]
    fn outstanding_budget_blocks_issue() {
        let cfg = MfcConfig {
            max_outstanding_packets: 2,
            command_startup: 0,
            ..MfcConfig::default()
        };
        let mut mfc = MfcEngine::new(cfg).unwrap();
        mfc.enqueue(Cycle::ZERO, get(0, 0, 1024)).unwrap();
        let mut now = Cycle::ZERO;
        let mut tokens = Vec::new();
        loop {
            match mfc.try_issue(now) {
                Issue::Packet(p) => tokens.push(p.token),
                Issue::Stalled { retry_at } => {
                    now = retry_at;
                    continue;
                }
                Issue::Blocked => break,
                Issue::Idle => panic!("should not be idle"),
            }
            now += 1;
        }
        assert_eq!(tokens.len(), 2);
        mfc.packet_delivered(now, tokens[0]);
        assert!(matches!(mfc.try_issue(now), Issue::Packet(_)));
    }

    #[test]
    fn startup_cost_paid_once_per_command() {
        let cfg = MfcConfig {
            command_startup: 24,
            ..MfcConfig::default()
        };
        let mut mfc = MfcEngine::new(cfg).unwrap();
        mfc.enqueue(Cycle::ZERO, get(0, 0, 256)).unwrap();
        // First issue attempt stalls for the startup window.
        let Issue::Stalled { retry_at } = mfc.try_issue(Cycle::ZERO) else {
            panic!("expected startup stall")
        };
        assert_eq!(retry_at, Cycle::new(24));
        assert!(matches!(mfc.try_issue(retry_at), Issue::Packet(_)));
        // Second packet of the same command: no new startup, only pacing.
        assert!(matches!(mfc.try_issue(retry_at + 1), Issue::Packet(_)));
    }

    #[test]
    fn list_pays_startup_once_and_element_overhead_between() {
        let cfg = MfcConfig {
            command_startup: 24,
            list_element_overhead: 2,
            ..MfcConfig::default()
        };
        let mut mfc = MfcEngine::new(cfg).unwrap();
        let list =
            DmaListCommand::contiguous(DmaKind::Get, LsAddr(0), mem_at(0), 128, 4, tag(0)).unwrap();
        mfc.enqueue_list(Cycle::ZERO, list).unwrap();
        let mut now = Cycle::ZERO;
        let mut issue_times = Vec::new();
        loop {
            match mfc.try_issue(now) {
                Issue::Packet(p) => {
                    issue_times.push(now);
                    mfc.packet_delivered(now, p.token);
                    now += 1;
                }
                Issue::Stalled { retry_at } => now = retry_at,
                _ => break,
            }
        }
        assert_eq!(issue_times.len(), 4);
        // First element after startup; subsequent ones 2 cycles apart.
        assert_eq!(issue_times[0], Cycle::new(24));
        assert_eq!(issue_times[1] - issue_times[0], 2);
    }

    #[test]
    fn tag_completion_tracks_the_whole_command() {
        let mut mfc = MfcEngine::new(MfcConfig {
            command_startup: 0,
            ..MfcConfig::default()
        })
        .unwrap();
        mfc.enqueue(Cycle::ZERO, get(0, 0, 256)).unwrap();
        assert!(mfc.tags().is_pending(tag(0)));
        let Issue::Packet(a) = mfc.try_issue(Cycle::ZERO) else {
            panic!()
        };
        let Issue::Packet(b) = mfc.try_issue(Cycle::new(1)) else {
            panic!()
        };
        assert!(!mfc.packet_delivered(Cycle::new(9), a.token));
        assert!(mfc.tags().is_pending(tag(0)));
        assert!(mfc.packet_delivered(Cycle::new(10), b.token));
        assert!(!mfc.tags().is_pending(tag(0)));
    }

    #[test]
    fn small_transfers_are_single_packets() {
        let mut mfc = MfcEngine::new(MfcConfig::default()).unwrap();
        mfc.enqueue(Cycle::ZERO, get(16, 16, 8)).unwrap();
        let packets = drain(&mut mfc);
        assert_eq!(packets.len(), 1);
        assert_eq!(packets[0].bytes, 8);
    }

    #[test]
    fn lifecycle_stamps_partition_the_latency() {
        use crate::command::DmaPhase;
        let mut mfc = MfcEngine::new(MfcConfig::default()).unwrap();
        mfc.enqueue(Cycle::ZERO, get(0, 0, 512)).unwrap();
        let mut now = Cycle::ZERO;
        let mut pending = Vec::new();
        loop {
            match mfc.try_issue(now) {
                Issue::Packet(p) => {
                    pending.push(p.token);
                    now += 1;
                }
                Issue::Stalled { retry_at } => now = retry_at,
                Issue::Blocked | Issue::Idle => break,
            }
        }
        // Deliver with grant + bank stamps, 10 cycles after issue ended.
        let mut done = false;
        for tok in pending {
            now += 10;
            mfc.note_grant(now, tok, 3);
            mfc.note_bank_service(tok, 5);
            done = mfc.packet_delivered(now, tok);
        }
        assert!(done);
        let life = mfc.take_completed().expect("lifecycle record");
        assert!(mfc.take_completed().is_none(), "drained exactly once");
        assert_eq!(life.bytes, 512);
        assert_eq!(life.packets, 4);
        assert_eq!(life.packets_granted, 4);
        assert_eq!(life.eib_wait_cycles, 12);
        assert_eq!(life.bank_service_cycles, 20);
        assert_eq!(life.enqueued_at, Cycle::ZERO);
        assert_eq!(life.first_issue_at, Cycle::new(24)); // command_startup
        assert_eq!(life.completed_at.saturating_since(life.enqueued_at), {
            let phases = life.phases();
            phases.iter().sum::<u64>()
        });
        assert_eq!(life.latency(), life.phases().iter().sum::<u64>());
        // Enqueue→first-issue is the startup window: queue-wait = 24.
        assert_eq!(life.phase(DmaPhase::QueueWait), 24);
        assert_eq!(life.element_records.len(), 1);
        assert_eq!(life.element_records[0].completed_at, life.completed_at);
    }

    #[test]
    fn lifecycle_without_grant_stamps_still_conserves() {
        // Harnesses that bypass the EIB (like `drain`) never call
        // note_grant; ring-wait collapses to zero, conservation holds.
        let mut mfc = MfcEngine::new(MfcConfig::default()).unwrap();
        mfc.enqueue(Cycle::ZERO, get(0, 0, 256)).unwrap();
        drain(&mut mfc);
        let life = mfc.take_completed().expect("lifecycle record");
        assert_eq!(life.packets_granted, 0);
        assert_eq!(life.latency(), life.phases().iter().sum::<u64>());
    }

    #[test]
    fn zero_config_fields_are_typed_errors() {
        let base = MfcConfig::default();
        let cases = [
            (
                MfcConfig {
                    queue_depth: 0,
                    ..base
                },
                ConfigError::ZeroQueueDepth,
            ),
            (
                MfcConfig {
                    max_outstanding_packets: 0,
                    ..base
                },
                ConfigError::ZeroOutstandingBudget,
            ),
            (
                MfcConfig {
                    packet_bytes: 0,
                    ..base
                },
                ConfigError::ZeroPacketBytes,
            ),
        ];
        for (cfg, want) in cases {
            assert_eq!(MfcEngine::new(cfg).err(), Some(want));
            assert!(!want.to_string().is_empty());
        }
    }

    #[test]
    fn slot_limit_clips_the_outstanding_budget() {
        let faults = MfcFaults {
            slot_limit: Some(2),
            ..MfcFaults::default()
        };
        let mut mfc = MfcEngine::with_faults(
            MfcConfig {
                command_startup: 0,
                ..MfcConfig::default()
            },
            faults,
            RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(mfc.slot_budget(), 2);
        mfc.enqueue(Cycle::ZERO, get(0, 0, 1024)).unwrap();
        let mut now = Cycle::ZERO;
        let mut tokens = Vec::new();
        loop {
            match mfc.try_issue(now) {
                Issue::Packet(p) => tokens.push(p.token),
                Issue::Stalled { retry_at } => {
                    now = retry_at;
                    continue;
                }
                Issue::Blocked => break,
                Issue::Idle => panic!("should not be idle"),
            }
            now += 1;
        }
        // Only 2 of the configured 8 slots usable.
        assert_eq!(tokens.len(), 2);
        mfc.packet_delivered(now, tokens[0]);
        assert!(matches!(mfc.try_issue(now), Issue::Packet(_)));
    }

    #[test]
    fn queue_stall_window_freezes_the_unroller() {
        use cellsim_faults::Window;
        let faults = MfcFaults {
            queue_stalls: vec![Window {
                start: 10,
                cycles: 30,
            }],
            ..MfcFaults::default()
        };
        let mut mfc = MfcEngine::with_faults(
            MfcConfig {
                command_startup: 0,
                ..MfcConfig::default()
            },
            faults,
            RetryPolicy::default(),
        )
        .unwrap();
        mfc.enqueue(Cycle::ZERO, get(0, 0, 256)).unwrap();
        // Before the window: issues normally.
        assert!(matches!(mfc.try_issue(Cycle::ZERO), Issue::Packet(_)));
        // Inside the window: stalled until its end.
        assert_eq!(
            mfc.try_issue(Cycle::new(10)),
            Issue::Stalled {
                retry_at: Cycle::new(40)
            }
        );
        assert_eq!(
            mfc.try_issue(Cycle::new(39)),
            Issue::Stalled {
                retry_at: Cycle::new(40)
            }
        );
        // At the boundary: issues again.
        assert!(matches!(mfc.try_issue(Cycle::new(40)), Issue::Packet(_)));
    }

    #[test]
    fn nacks_back_off_then_exhaust() {
        let retry = RetryPolicy {
            max_retries: 2,
            backoff_base: 4,
            backoff_cap: 64,
        };
        let mut mfc = MfcEngine::with_faults(
            MfcConfig {
                command_startup: 0,
                ..MfcConfig::default()
            },
            MfcFaults::default(),
            retry,
        )
        .unwrap();
        mfc.enqueue(Cycle::ZERO, get(0, 0, 128)).unwrap();
        let Issue::Packet(p) = mfc.try_issue(Cycle::ZERO) else {
            panic!("expected packet")
        };
        assert_eq!(
            mfc.note_nack(Cycle::new(5), p.token),
            NackVerdict::Retry {
                at: Cycle::new(9), // 5 + base·2^0
                attempt: 1,
            }
        );
        assert_eq!(
            mfc.note_nack(Cycle::new(9), p.token),
            NackVerdict::Retry {
                at: Cycle::new(17), // 9 + base·2^1
                attempt: 2,
            }
        );
        // Budget spent: third NACK is terminal.
        assert_eq!(
            mfc.note_nack(Cycle::new(17), p.token),
            NackVerdict::Exhausted(DmaError::RetriesExhausted(2))
        );
        // Abandon: slot and queue entry drain, no bytes credited.
        assert!(mfc.packet_abandoned(Cycle::new(20), p.token));
        assert!(mfc.is_idle());
        assert_eq!(mfc.stats().bytes_delivered, 0);
        assert_eq!(mfc.stats().completed, 1);
        assert!(!mfc.tags().is_pending(tag(0)));
        let life = mfc.take_completed().expect("lifecycle record");
        assert!(life.exhausted);
        assert_eq!(life.nacks, 3);
        assert_eq!(life.retries, 2);
        assert_eq!(life.retry_backoff_cycles, 4 + 8);
        assert_eq!(life.latency(), life.phases().iter().sum::<u64>());
    }

    #[test]
    fn retried_then_delivered_command_conserves_latency() {
        let mut mfc = MfcEngine::new(MfcConfig::default()).unwrap();
        mfc.enqueue(Cycle::ZERO, get(0, 0, 256)).unwrap();
        let mut now = Cycle::ZERO;
        let mut pending = Vec::new();
        loop {
            match mfc.try_issue(now) {
                Issue::Packet(p) => {
                    pending.push(p.token);
                    now += 1;
                }
                Issue::Stalled { retry_at } => now = retry_at,
                Issue::Blocked | Issue::Idle => break,
            }
        }
        // First packet NACKs once, retries, then both deliver.
        let NackVerdict::Retry { at, attempt } = mfc.note_nack(now, pending[0]) else {
            panic!("budget not exhausted")
        };
        assert_eq!(attempt, 1);
        let mut done = false;
        for tok in pending {
            done = mfc.packet_delivered(at + 10, tok);
        }
        assert!(done);
        let life = mfc.take_completed().expect("lifecycle record");
        assert!(!life.exhausted);
        assert_eq!(life.nacks, 1);
        assert_eq!(life.retries, 1);
        assert!(life.retry_backoff_cycles > 0);
        assert_eq!(life.bytes, 256);
        assert_eq!(life.latency(), life.phases().iter().sum::<u64>());
    }

    #[test]
    #[should_panic(expected = "unknown or double-delivered")]
    fn double_delivery_panics() {
        let mut mfc = MfcEngine::new(MfcConfig {
            command_startup: 0,
            ..MfcConfig::default()
        })
        .unwrap();
        mfc.enqueue(Cycle::ZERO, get(0, 0, 128)).unwrap();
        let Issue::Packet(p) = mfc.try_issue(Cycle::ZERO) else {
            panic!()
        };
        mfc.packet_delivered(Cycle::ZERO, p.token);
        mfc.packet_delivered(Cycle::ZERO, p.token);
    }
}
