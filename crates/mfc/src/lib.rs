//! Model of the Cell BE **Memory Flow Controller** (MFC).
//!
//! Every SPE owns an MFC: a DMA controller that moves data between the
//! SPE's Local Store and any effective address — main memory or another
//! SPE's memory-mapped Local Store. The ISPASS 2007 experiments exercise
//! exactly the structures modelled here:
//!
//! * the **16-entry SPU command queue** (saturating it is the paper's
//!   first programming rule),
//! * the CBE **DMA validity rules** — sizes of 1/2/4/8 bytes or multiples
//!   of 16 up to 16 KB, natural alignment ([`DmaCommand::validate`]),
//! * the **unroller**, which chops a command into ≤128-byte bus packets
//!   aligned to 128-byte effective-address boundaries,
//! * the bounded budget of **outstanding bus packets** — together with the
//!   memory round-trip latency, this Little's-law limit is why a single
//!   SPE sustains only ≈60 % of a bank's peak,
//! * **DMA-list commands** ([`DmaListCommand`]), which pay the command
//!   startup once and then stream list elements back-to-back — why the
//!   paper's DMA-list bandwidth is flat across element sizes,
//! * **tag groups** and the wait/sync semantics behind the paper's
//!   delayed-synchronization experiment (Figure 10).
//!
//! # Example
//!
//! ```
//! use cellsim_kernel::Cycle;
//! use cellsim_mem::RegionId;
//! use cellsim_mfc::{DmaCommand, DmaKind, EffectiveAddr, Issue, LsAddr, MfcConfig, MfcEngine, TagId};
//!
//! let mut mfc = MfcEngine::new(MfcConfig::default()).expect("default config is valid");
//! let cmd = DmaCommand::new(
//!     DmaKind::Get,
//!     LsAddr(0),
//!     EffectiveAddr::Memory { region: RegionId(0), offset: 0 },
//!     512,
//!     TagId::new(3)?,
//! )?;
//! mfc.enqueue(Cycle::ZERO, cmd)?;
//! // The engine stalls through the command-startup window, then issues
//! // four 128-byte packets.
//! let mut issued = 0;
//! let mut now = Cycle::ZERO;
//! loop {
//!     match mfc.try_issue(now) {
//!         Issue::Packet(p) => { issued += 1; now = now + 1; }
//!         Issue::Stalled { retry_at } => now = retry_at,
//!         Issue::Blocked | Issue::Idle => break,
//!     }
//! }
//! assert_eq!(issued, 4);
//! # Ok::<(), cellsim_mfc::DmaError>(())
//! ```

mod command;
mod engine;
mod list;
mod tag;

pub use command::{
    CommandLifecycle, DmaCommand, DmaError, DmaKind, DmaPhase, EffectiveAddr, ElementLifecycle,
    LsAddr, TargetClass,
};
pub use engine::{
    ConfigError, Issue, MfcConfig, MfcEngine, MfcStats, NackVerdict, PacketOut, PacketToken,
};
pub use list::{DmaListCommand, ListElement};
pub use tag::{TagId, TagSet};

/// Local Store capacity in bytes (256 KB on every CBE SPE).
pub const LOCAL_STORE_BYTES: u32 = 256 * 1024;

/// Largest single DMA transfer the MFC accepts (16 KB).
pub const MAX_DMA_BYTES: u32 = 16 * 1024;

/// Maximum number of elements in one DMA list (2048 on the CBE).
pub const MAX_LIST_ELEMENTS: usize = 2048;
