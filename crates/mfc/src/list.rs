//! DMA-list commands (`mfc_getl` / `mfc_putl`).

use crate::command::{DmaCommand, DmaError, DmaKind, EffectiveAddr, LsAddr};
use crate::tag::TagId;
use crate::{LOCAL_STORE_BYTES, MAX_LIST_ELEMENTS};

/// One element of a DMA list: a transfer size and an effective-address
/// offset. The Local Store side advances contiguously from the command's
/// base, exactly as the hardware packs list transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListElement {
    /// Effective-address offset of this element (relative to the list
    /// command's base address).
    pub ea_offset: u64,
    /// Element size; same validity rules as a plain DMA command.
    pub bytes: u32,
}

/// A DMA-list command: one MFC command that performs up to 2048 transfers.
///
/// The MFC pays the command startup once, fetches the 8-byte list elements
/// from Local Store, and streams the elements back-to-back. That
/// amortization is why the paper's DMA-list curves are flat across element
/// sizes while DMA-elem collapses below 1024 bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DmaListCommand {
    kind: DmaKind,
    ls: LsAddr,
    ea_base: EffectiveAddr,
    elements: Vec<ListElement>,
    tag: TagId,
    fence: bool,
}

impl DmaListCommand {
    /// Validates and creates a list command.
    ///
    /// # Errors
    ///
    /// Returns [`DmaError::BadListLength`] for an empty or oversized list,
    /// or the first per-element validity error (each element obeys the
    /// same size/alignment rules as a [`DmaCommand`], checked against the
    /// contiguously advancing Local Store cursor).
    pub fn new(
        kind: DmaKind,
        ls: LsAddr,
        ea_base: EffectiveAddr,
        elements: Vec<ListElement>,
        tag: TagId,
    ) -> Result<DmaListCommand, DmaError> {
        if elements.is_empty() || elements.len() > MAX_LIST_ELEMENTS {
            return Err(DmaError::BadListLength(elements.len()));
        }
        let mut ls_cursor = u64::from(ls.0);
        for el in &elements {
            let ea = ea_base.advanced(el.ea_offset);
            DmaCommand::validate(
                LsAddr(u32::try_from(ls_cursor).map_err(|_| DmaError::LocalStoreOverrun)?),
                &ea,
                el.bytes,
            )?;
            ls_cursor += u64::from(el.bytes);
            if ls_cursor > u64::from(LOCAL_STORE_BYTES) {
                return Err(DmaError::LocalStoreOverrun);
            }
        }
        Ok(DmaListCommand {
            kind,
            ls,
            ea_base,
            elements,
            tag,
            fence: false,
        })
    }

    /// Marks this list command fenced (`mfc_getlf`/`mfc_putlf`): it will
    /// not begin until every earlier command in the same tag group has
    /// completed.
    pub fn with_fence(mut self) -> DmaListCommand {
        self.fence = true;
        self
    }

    /// Whether this command is fenced against its tag group.
    pub fn fence(&self) -> bool {
        self.fence
    }

    /// Builds a list of `count` equal-sized elements covering a contiguous
    /// effective-address range — the shape every paper experiment uses.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DmaListCommand::new`].
    pub fn contiguous(
        kind: DmaKind,
        ls: LsAddr,
        ea_base: EffectiveAddr,
        element_bytes: u32,
        count: usize,
        tag: TagId,
    ) -> Result<DmaListCommand, DmaError> {
        let elements = (0..count)
            .map(|i| ListElement {
                ea_offset: i as u64 * u64::from(element_bytes),
                bytes: element_bytes,
            })
            .collect();
        DmaListCommand::new(kind, ls, ea_base, elements, tag)
    }

    /// The transfer direction.
    pub fn kind(&self) -> DmaKind {
        self.kind
    }

    /// Base Local Store address; elements pack contiguously from here.
    pub fn ls(&self) -> LsAddr {
        self.ls
    }

    /// Base effective address; element offsets are relative to this.
    pub fn ea_base(&self) -> EffectiveAddr {
        self.ea_base
    }

    /// The list elements, in transfer order.
    pub fn elements(&self) -> &[ListElement] {
        &self.elements
    }

    /// Total payload bytes across all elements.
    pub fn total_bytes(&self) -> u64 {
        self.elements.iter().map(|e| u64::from(e.bytes)).sum()
    }

    /// The tag group this command completes under.
    pub fn tag(&self) -> TagId {
        self.tag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellsim_mem::RegionId;

    fn mem() -> EffectiveAddr {
        EffectiveAddr::Memory {
            region: RegionId(0),
            offset: 0,
        }
    }

    fn tag() -> TagId {
        TagId::new(1).unwrap()
    }

    #[test]
    fn contiguous_list_builds_and_sums() {
        let l = DmaListCommand::contiguous(DmaKind::Get, LsAddr(0), mem(), 512, 8, tag()).unwrap();
        assert_eq!(l.elements().len(), 8);
        assert_eq!(l.total_bytes(), 4096);
        assert_eq!(l.elements()[3].ea_offset, 1536);
    }

    #[test]
    fn empty_and_oversized_lists_rejected() {
        assert_eq!(
            DmaListCommand::contiguous(DmaKind::Get, LsAddr(0), mem(), 128, 0, tag()),
            Err(DmaError::BadListLength(0))
        );
        assert_eq!(
            DmaListCommand::contiguous(DmaKind::Get, LsAddr(0), mem(), 16, 2049, tag()),
            Err(DmaError::BadListLength(2049))
        );
    }

    #[test]
    fn element_validity_checked_against_running_ls_cursor() {
        // Second element lands at LS offset 8 with 128-byte size: misaligned.
        let elements = vec![
            ListElement {
                ea_offset: 0,
                bytes: 8,
            },
            ListElement {
                ea_offset: 16,
                bytes: 128,
            },
        ];
        assert!(matches!(
            DmaListCommand::new(DmaKind::Put, LsAddr(0), mem(), elements, tag()),
            Err(DmaError::Misaligned { .. })
        ));
    }

    #[test]
    fn list_must_fit_local_store() {
        // 2048 elements * 16 KB = 32 MB >> 256 KB.
        assert!(matches!(
            DmaListCommand::contiguous(DmaKind::Get, LsAddr(0), mem(), 16384, 32, tag()),
            Err(DmaError::LocalStoreOverrun)
        ));
    }
}
