//! DMA commands and the CBE validity rules.

use std::error::Error;
use std::fmt;

use cellsim_mem::RegionId;

use crate::tag::TagId;
use crate::{LOCAL_STORE_BYTES, MAX_DMA_BYTES};

/// Direction of a DMA transfer, from the initiating SPE's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmaKind {
    /// Effective address → Local Store (`mfc_get`).
    Get,
    /// Local Store → effective address (`mfc_put`).
    Put,
}

/// An offset inside the initiating SPE's Local Store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LsAddr(pub u32);

/// A 64-bit effective address, resolved to its target.
///
/// On real hardware this is a flat address; the simulator keeps the
/// *meaning* (which region of main memory, or which SPE's memory-mapped
/// Local Store) so routing needs no page tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EffectiveAddr {
    /// Byte `offset` of an allocated main-memory region.
    Memory {
        /// The region (one per experiment buffer).
        region: RegionId,
        /// Byte offset within the region.
        offset: u64,
    },
    /// Byte `offset` of a (logical) SPE's Local Store.
    LocalStore {
        /// Logical SPE index (0–7).
        spe: u8,
        /// Offset within that Local Store.
        offset: u32,
    },
}

impl EffectiveAddr {
    /// The byte offset used for alignment checks.
    pub fn offset(&self) -> u64 {
        match *self {
            EffectiveAddr::Memory { offset, .. } => offset,
            EffectiveAddr::LocalStore { offset, .. } => u64::from(offset),
        }
    }

    /// Returns this address advanced by `bytes`.
    pub fn advanced(&self, bytes: u64) -> EffectiveAddr {
        match *self {
            EffectiveAddr::Memory { region, offset } => EffectiveAddr::Memory {
                region,
                offset: offset + bytes,
            },
            EffectiveAddr::LocalStore { spe, offset } => EffectiveAddr::LocalStore {
                spe,
                offset: offset + u32::try_from(bytes).expect("LS offset overflow"),
            },
        }
    }
}

/// Why a DMA command was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaError {
    /// Size is not 1, 2, 4, 8 or a multiple of 16.
    InvalidSize(u32),
    /// Size exceeds the 16 KB single-command limit.
    TooLarge(u32),
    /// Size is zero.
    Empty,
    /// LS or EA not naturally aligned, or quadword offsets differ.
    Misaligned {
        /// Local-store offset of the offending command.
        ls: u32,
        /// Effective-address offset of the offending command.
        ea: u64,
        /// The transfer size whose alignment rule was violated.
        bytes: u32,
    },
    /// The transfer runs past the end of the 256 KB Local Store.
    LocalStoreOverrun,
    /// The 16-entry MFC command queue is full.
    QueueFull,
    /// A DMA list had no elements or more than 2048.
    BadListLength(usize),
    /// Logical SPE index out of range.
    BadSpe(u8),
    /// A tag value outside 0..32.
    BadTag(u8),
}

impl fmt::Display for DmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmaError::InvalidSize(b) => {
                write!(f, "transfer size {b} is not 1, 2, 4, 8 or a multiple of 16")
            }
            DmaError::TooLarge(b) => write!(f, "transfer size {b} exceeds the 16 KB limit"),
            DmaError::Empty => write!(f, "transfer size is zero"),
            DmaError::Misaligned { ls, ea, bytes } => write!(
                f,
                "misaligned {bytes}-byte transfer (ls={ls:#x}, ea={ea:#x})"
            ),
            DmaError::LocalStoreOverrun => write!(f, "transfer overruns the 256 KB local store"),
            DmaError::QueueFull => write!(f, "MFC command queue is full"),
            DmaError::BadListLength(n) => {
                write!(f, "DMA list has {n} elements; must be 1..=2048")
            }
            DmaError::BadSpe(s) => write!(f, "logical SPE index {s} out of range"),
            DmaError::BadTag(t) => write!(f, "tag {t} out of range 0..32"),
        }
    }
}

impl Error for DmaError {}

/// A single-chunk DMA command (`mfc_get` / `mfc_put`): the paper's
/// "DMA-elem".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaCommand {
    kind: DmaKind,
    ls: LsAddr,
    ea: EffectiveAddr,
    bytes: u32,
    tag: TagId,
    fence: bool,
}

impl DmaCommand {
    /// Validates and creates a command.
    ///
    /// # Errors
    ///
    /// Returns a [`DmaError`] if the size or alignment violates the CBE
    /// rules (see [`DmaCommand::validate`]) or the transfer overruns the
    /// Local Store.
    pub fn new(
        kind: DmaKind,
        ls: LsAddr,
        ea: EffectiveAddr,
        bytes: u32,
        tag: TagId,
    ) -> Result<DmaCommand, DmaError> {
        Self::validate(ls, &ea, bytes)?;
        Ok(DmaCommand {
            kind,
            ls,
            ea,
            bytes,
            tag,
            fence: false,
        })
    }

    /// Marks this command *fenced* (`mfc_getf`/`mfc_putf`): it will not
    /// begin transferring until every earlier command in the same tag
    /// group has completed. This is how real CBE code orders a put after
    /// the get that produced its data without a blocking wait.
    pub fn with_fence(mut self) -> DmaCommand {
        self.fence = true;
        self
    }

    /// Whether this command is fenced against its tag group.
    pub fn fence(&self) -> bool {
        self.fence
    }

    /// Checks the CBE transfer rules without constructing a command:
    ///
    /// * size is 1, 2, 4, 8, or a multiple of 16, and ≤16 KB;
    /// * sub-quadword transfers are naturally aligned and LS/EA agree in
    ///   their low four bits;
    /// * quadword-multiple transfers are 16-byte aligned on both sides;
    /// * the LS range stays inside the 256 KB Local Store.
    ///
    /// # Errors
    ///
    /// Returns the specific [`DmaError`] for the first rule violated.
    pub fn validate(ls: LsAddr, ea: &EffectiveAddr, bytes: u32) -> Result<(), DmaError> {
        if bytes == 0 {
            return Err(DmaError::Empty);
        }
        if bytes > MAX_DMA_BYTES {
            return Err(DmaError::TooLarge(bytes));
        }
        let small = matches!(bytes, 1 | 2 | 4 | 8);
        if !small && !bytes.is_multiple_of(16) {
            return Err(DmaError::InvalidSize(bytes));
        }
        let ea_off = ea.offset();
        let ls_off = u64::from(ls.0);
        let align = if small { u64::from(bytes) } else { 16 };
        let misaligned = !ls_off.is_multiple_of(align)
            || !ea_off.is_multiple_of(align)
            || (small && (ls_off & 15) != (ea_off & 15));
        if misaligned {
            return Err(DmaError::Misaligned {
                ls: ls.0,
                ea: ea_off,
                bytes,
            });
        }
        if let EffectiveAddr::LocalStore { spe, offset } = *ea {
            if spe >= 8 {
                return Err(DmaError::BadSpe(spe));
            }
            if u64::from(offset) + u64::from(bytes) > u64::from(LOCAL_STORE_BYTES) {
                return Err(DmaError::LocalStoreOverrun);
            }
        }
        if u64::from(ls.0) + u64::from(bytes) > u64::from(LOCAL_STORE_BYTES) {
            return Err(DmaError::LocalStoreOverrun);
        }
        Ok(())
    }

    /// The transfer direction.
    pub fn kind(&self) -> DmaKind {
        self.kind
    }

    /// The Local Store side of the transfer.
    pub fn ls(&self) -> LsAddr {
        self.ls
    }

    /// The effective-address side of the transfer.
    pub fn ea(&self) -> EffectiveAddr {
        self.ea
    }

    /// Transfer size in bytes.
    pub fn bytes(&self) -> u32 {
        self.bytes
    }

    /// The tag group this command completes under.
    pub fn tag(&self) -> TagId {
        self.tag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(offset: u64) -> EffectiveAddr {
        EffectiveAddr::Memory {
            region: RegionId(0),
            offset,
        }
    }

    fn tag() -> TagId {
        TagId::new(0).unwrap()
    }

    #[test]
    fn valid_sizes_accepted() {
        for bytes in [1u32, 2, 4, 8, 16, 128, 1024, 16384] {
            assert!(
                DmaCommand::new(DmaKind::Get, LsAddr(0), mem(0), bytes, tag()).is_ok(),
                "size {bytes} should be valid"
            );
        }
    }

    #[test]
    fn invalid_sizes_rejected() {
        for bytes in [3u32, 5, 12, 17, 100] {
            assert_eq!(
                DmaCommand::new(DmaKind::Get, LsAddr(0), mem(0), bytes, tag()),
                Err(DmaError::InvalidSize(bytes))
            );
        }
        assert_eq!(
            DmaCommand::new(DmaKind::Get, LsAddr(0), mem(0), 0, tag()),
            Err(DmaError::Empty)
        );
        assert_eq!(
            DmaCommand::new(DmaKind::Get, LsAddr(0), mem(0), 16400, tag()),
            Err(DmaError::TooLarge(16400))
        );
    }

    #[test]
    fn natural_alignment_enforced_for_small() {
        // 8-byte transfer at an unaligned LS offset.
        assert!(matches!(
            DmaCommand::new(DmaKind::Get, LsAddr(4), mem(4), 8, tag()),
            Err(DmaError::Misaligned { .. })
        ));
        // Aligned but quadword offsets differ.
        assert!(matches!(
            DmaCommand::new(DmaKind::Get, LsAddr(8), mem(16), 8, tag()),
            Err(DmaError::Misaligned { .. })
        ));
        // Same quadword offset: fine.
        assert!(DmaCommand::new(DmaKind::Get, LsAddr(8), mem(24), 8, tag()).is_ok());
    }

    #[test]
    fn quadword_alignment_enforced_for_large() {
        assert!(matches!(
            DmaCommand::new(DmaKind::Put, LsAddr(8), mem(0), 128, tag()),
            Err(DmaError::Misaligned { .. })
        ));
        assert!(DmaCommand::new(DmaKind::Put, LsAddr(16), mem(32), 128, tag()).is_ok());
    }

    #[test]
    fn local_store_bounds_enforced() {
        assert_eq!(
            DmaCommand::new(
                DmaKind::Get,
                LsAddr(LOCAL_STORE_BYTES - 64),
                mem(0),
                128,
                tag()
            ),
            Err(DmaError::LocalStoreOverrun)
        );
        let remote = EffectiveAddr::LocalStore {
            spe: 1,
            offset: LOCAL_STORE_BYTES - 64,
        };
        assert_eq!(
            DmaCommand::new(DmaKind::Get, LsAddr(0), remote, 128, tag()),
            Err(DmaError::LocalStoreOverrun)
        );
    }

    #[test]
    fn bad_spe_index_rejected() {
        let remote = EffectiveAddr::LocalStore { spe: 9, offset: 0 };
        assert_eq!(
            DmaCommand::new(DmaKind::Get, LsAddr(0), remote, 128, tag()),
            Err(DmaError::BadSpe(9))
        );
    }

    #[test]
    fn advanced_moves_both_address_kinds() {
        assert_eq!(mem(100).advanced(28).offset(), 128);
        let ls = EffectiveAddr::LocalStore { spe: 2, offset: 64 };
        assert_eq!(ls.advanced(64).offset(), 128);
    }

    #[test]
    fn errors_display_meaningfully() {
        let e = DmaError::InvalidSize(3);
        assert!(e.to_string().contains('3'));
        let e = DmaError::QueueFull;
        assert!(!e.to_string().is_empty());
    }
}
