//! DMA commands, the CBE validity rules, and per-command lifecycle
//! records.

use std::error::Error;
use std::fmt;

use cellsim_kernel::Cycle;
use cellsim_mem::RegionId;

use crate::tag::TagId;
use crate::{LOCAL_STORE_BYTES, MAX_DMA_BYTES};

/// Direction of a DMA transfer, from the initiating SPE's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmaKind {
    /// Effective address → Local Store (`mfc_get`).
    Get,
    /// Local Store → effective address (`mfc_put`).
    Put,
}

/// An offset inside the initiating SPE's Local Store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LsAddr(pub u32);

/// A 64-bit effective address, resolved to its target.
///
/// On real hardware this is a flat address; the simulator keeps the
/// *meaning* (which region of main memory, or which SPE's memory-mapped
/// Local Store) so routing needs no page tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EffectiveAddr {
    /// Byte `offset` of an allocated main-memory region.
    Memory {
        /// The region (one per experiment buffer).
        region: RegionId,
        /// Byte offset within the region.
        offset: u64,
    },
    /// Byte `offset` of a (logical) SPE's Local Store.
    LocalStore {
        /// Logical SPE index (0–7).
        spe: u8,
        /// Offset within that Local Store.
        offset: u32,
    },
}

impl EffectiveAddr {
    /// The byte offset used for alignment checks.
    pub fn offset(&self) -> u64 {
        match *self {
            EffectiveAddr::Memory { offset, .. } => offset,
            EffectiveAddr::LocalStore { offset, .. } => u64::from(offset),
        }
    }

    /// Returns this address advanced by `bytes`.
    pub fn advanced(&self, bytes: u64) -> EffectiveAddr {
        match *self {
            EffectiveAddr::Memory { region, offset } => EffectiveAddr::Memory {
                region,
                offset: offset + bytes,
            },
            EffectiveAddr::LocalStore { spe, offset } => EffectiveAddr::LocalStore {
                spe,
                offset: offset + u32::try_from(bytes).expect("LS offset overflow"),
            },
        }
    }
}

/// Why a DMA command was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaError {
    /// Size is not 1, 2, 4, 8 or a multiple of 16.
    InvalidSize(u32),
    /// Size exceeds the 16 KB single-command limit.
    TooLarge(u32),
    /// Size is zero.
    Empty,
    /// LS or EA not naturally aligned, or quadword offsets differ.
    Misaligned {
        /// Local-store offset of the offending command.
        ls: u32,
        /// Effective-address offset of the offending command.
        ea: u64,
        /// The transfer size whose alignment rule was violated.
        bytes: u32,
    },
    /// The transfer runs past the end of the 256 KB Local Store.
    LocalStoreOverrun,
    /// The 16-entry MFC command queue is full.
    QueueFull,
    /// A DMA list had no elements or more than 2048.
    BadListLength(usize),
    /// Logical SPE index out of range.
    BadSpe(u8),
    /// A tag value outside 0..32.
    BadTag(u8),
    /// A packet's access was NACKed until the owning command's retry
    /// budget ran out; the carried count is the retries performed.
    RetriesExhausted(u32),
}

impl fmt::Display for DmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmaError::InvalidSize(b) => {
                write!(f, "transfer size {b} is not 1, 2, 4, 8 or a multiple of 16")
            }
            DmaError::TooLarge(b) => write!(f, "transfer size {b} exceeds the 16 KB limit"),
            DmaError::Empty => write!(f, "transfer size is zero"),
            DmaError::Misaligned { ls, ea, bytes } => write!(
                f,
                "misaligned {bytes}-byte transfer (ls={ls:#x}, ea={ea:#x})"
            ),
            DmaError::LocalStoreOverrun => write!(f, "transfer overruns the 256 KB local store"),
            DmaError::QueueFull => write!(f, "MFC command queue is full"),
            DmaError::BadListLength(n) => {
                write!(f, "DMA list has {n} elements; must be 1..=2048")
            }
            DmaError::BadSpe(s) => write!(f, "logical SPE index {s} out of range"),
            DmaError::BadTag(t) => write!(f, "tag {t} out of range 0..32"),
            DmaError::RetriesExhausted(n) => {
                write!(f, "access NACKed; retry budget exhausted after {n} retries")
            }
        }
    }
}

impl Error for DmaError {}

/// A single-chunk DMA command (`mfc_get` / `mfc_put`): the paper's
/// "DMA-elem".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaCommand {
    kind: DmaKind,
    ls: LsAddr,
    ea: EffectiveAddr,
    bytes: u32,
    tag: TagId,
    fence: bool,
}

impl DmaCommand {
    /// Validates and creates a command.
    ///
    /// # Errors
    ///
    /// Returns a [`DmaError`] if the size or alignment violates the CBE
    /// rules (see [`DmaCommand::validate`]) or the transfer overruns the
    /// Local Store.
    pub fn new(
        kind: DmaKind,
        ls: LsAddr,
        ea: EffectiveAddr,
        bytes: u32,
        tag: TagId,
    ) -> Result<DmaCommand, DmaError> {
        Self::validate(ls, &ea, bytes)?;
        Ok(DmaCommand {
            kind,
            ls,
            ea,
            bytes,
            tag,
            fence: false,
        })
    }

    /// Marks this command *fenced* (`mfc_getf`/`mfc_putf`): it will not
    /// begin transferring until every earlier command in the same tag
    /// group has completed. This is how real CBE code orders a put after
    /// the get that produced its data without a blocking wait.
    pub fn with_fence(mut self) -> DmaCommand {
        self.fence = true;
        self
    }

    /// Whether this command is fenced against its tag group.
    pub fn fence(&self) -> bool {
        self.fence
    }

    /// Checks the CBE transfer rules without constructing a command:
    ///
    /// * size is 1, 2, 4, 8, or a multiple of 16, and ≤16 KB;
    /// * sub-quadword transfers are naturally aligned and LS/EA agree in
    ///   their low four bits;
    /// * quadword-multiple transfers are 16-byte aligned on both sides;
    /// * the LS range stays inside the 256 KB Local Store.
    ///
    /// # Errors
    ///
    /// Returns the specific [`DmaError`] for the first rule violated.
    pub fn validate(ls: LsAddr, ea: &EffectiveAddr, bytes: u32) -> Result<(), DmaError> {
        if bytes == 0 {
            return Err(DmaError::Empty);
        }
        if bytes > MAX_DMA_BYTES {
            return Err(DmaError::TooLarge(bytes));
        }
        let small = matches!(bytes, 1 | 2 | 4 | 8);
        if !small && !bytes.is_multiple_of(16) {
            return Err(DmaError::InvalidSize(bytes));
        }
        let ea_off = ea.offset();
        let ls_off = u64::from(ls.0);
        let align = if small { u64::from(bytes) } else { 16 };
        let misaligned = !ls_off.is_multiple_of(align)
            || !ea_off.is_multiple_of(align)
            || (small && (ls_off & 15) != (ea_off & 15));
        if misaligned {
            return Err(DmaError::Misaligned {
                ls: ls.0,
                ea: ea_off,
                bytes,
            });
        }
        if let EffectiveAddr::LocalStore { spe, offset } = *ea {
            if spe >= 8 {
                return Err(DmaError::BadSpe(spe));
            }
            if u64::from(offset) + u64::from(bytes) > u64::from(LOCAL_STORE_BYTES) {
                return Err(DmaError::LocalStoreOverrun);
            }
        }
        if u64::from(ls.0) + u64::from(bytes) > u64::from(LOCAL_STORE_BYTES) {
            return Err(DmaError::LocalStoreOverrun);
        }
        Ok(())
    }

    /// The transfer direction.
    pub fn kind(&self) -> DmaKind {
        self.kind
    }

    /// The Local Store side of the transfer.
    pub fn ls(&self) -> LsAddr {
        self.ls
    }

    /// The effective-address side of the transfer.
    pub fn ea(&self) -> EffectiveAddr {
        self.ea
    }

    /// Transfer size in bytes.
    pub fn bytes(&self) -> u32 {
        self.bytes
    }

    /// The tag group this command completes under.
    pub fn tag(&self) -> TagId {
        self.tag
    }
}

/// What a command's effective address targets, for latency-path
/// classification (main memory behind the MIC/IOIF vs another SPE's
/// Local Store).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetClass {
    /// The effective address is main memory.
    Memory,
    /// The effective address is a (remote) Local Store.
    LocalStore,
}

impl From<&EffectiveAddr> for TargetClass {
    fn from(ea: &EffectiveAddr) -> TargetClass {
        match ea {
            EffectiveAddr::Memory { .. } => TargetClass::Memory,
            EffectiveAddr::LocalStore { .. } => TargetClass::LocalStore,
        }
    }
}

/// The four lifecycle phases a command's end-to-end latency partitions
/// into, in timeline order. Each phase is the span between two stamps of
/// the [`CommandLifecycle`], so the four always sum to the command's
/// end-to-end latency exactly (conservation by construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmaPhase {
    /// Enqueue → first packet issue: decode/startup, fences, waiting for
    /// the unroller behind older commands, the first outstanding slot.
    QueueWait,
    /// First → last packet issue: the unroll window, paced by the
    /// outstanding-packet budget (the Little's-law phase).
    SlotWait,
    /// Last packet issue → last EIB ring grant: command-bus snoop, source
    /// readiness and data-arbiter queueing for the trailing packets.
    RingWait,
    /// Last ring grant → completion: wire time plus bank service/retire
    /// of the trailing packets.
    Service,
}

impl DmaPhase {
    /// All phases in timeline (and reporting) order.
    pub const ALL: [DmaPhase; 4] = [
        DmaPhase::QueueWait,
        DmaPhase::SlotWait,
        DmaPhase::RingWait,
        DmaPhase::Service,
    ];

    /// Stable reporting name (`queue-wait`, `slot-wait`, `ring-wait`,
    /// `service`).
    pub fn name(self) -> &'static str {
        match self {
            DmaPhase::QueueWait => "queue-wait",
            DmaPhase::SlotWait => "slot-wait",
            DmaPhase::RingWait => "ring-wait",
            DmaPhase::Service => "service",
        }
    }
}

/// Lifecycle stamps of one element of a DMA-list command (a DMA-elem
/// command is a one-element list for this purpose).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElementLifecycle {
    /// Element payload bytes.
    pub bytes: u32,
    /// When the unroller issued the element's first packet.
    pub first_issue_at: Cycle,
    /// When the element's last packet was delivered (and, for memory
    /// PUTs, retired in DRAM).
    pub completed_at: Cycle,
}

impl ElementLifecycle {
    /// The element's transfer latency: first packet issue → last packet
    /// retired. This is the latency double-buffering depth is tuned
    /// against.
    pub fn service_latency(&self) -> u64 {
        self.completed_at.saturating_since(self.first_issue_at)
    }
}

/// The full lifecycle record of one completed MFC command, stamped at
/// every point the command passes through: enqueue, first packet issue
/// (MFC slot grant), last packet issue (fully unrolled), first/last EIB
/// ring grant, accumulated bank service, and tag-group completion (the
/// cycle the command left the queue and its tag could quiesce).
///
/// Stamps are monotone by construction of the fabric protocol; the
/// derived phase partition clamps defensively so conservation
/// (`Σ phases == end-to-end latency`) holds even for harnesses that skip
/// some stamps (e.g. driving an [`MfcEngine`](crate::MfcEngine) without
/// a bus and never reporting grants).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandLifecycle {
    /// Transfer direction.
    pub kind: DmaKind,
    /// Memory vs Local Store target.
    pub target: TargetClass,
    /// Total payload bytes.
    pub bytes: u64,
    /// List elements (1 for a DMA-elem command).
    pub elements: u32,
    /// Bus packets the command unrolled into.
    pub packets: u32,
    /// When the command was admitted into the MFC queue.
    pub enqueued_at: Cycle,
    /// When the serial decoder finished this command.
    pub decoded_at: Cycle,
    /// When the first packet issued (the command won the unroller).
    pub first_issue_at: Cycle,
    /// When the last packet issued (fully unrolled).
    pub last_issue_at: Cycle,
    /// First EIB data-ring grant over the command's packets.
    pub first_grant_at: Cycle,
    /// Last EIB data-ring grant over the command's packets.
    pub last_grant_at: Cycle,
    /// Packets that reported a ring grant (0 when the harness never
    /// stamps grants).
    pub packets_granted: u32,
    /// Σ cycles the command's packets waited at the EIB data arbiter.
    pub eib_wait_cycles: u64,
    /// Σ DRAM data-pipe service cycles of the command's packets.
    pub bank_service_cycles: u64,
    /// When the last packet was delivered/retired and the queue entry
    /// freed (tag-group completion for this command).
    pub completed_at: Cycle,
    /// Transient NACKs observed across the command's packets.
    pub nacks: u32,
    /// Retries performed in response to NACKs (≤ `nacks`; the shortfall
    /// is NACKs that found the budget already spent).
    pub retries: u32,
    /// Σ backoff cycles scheduled for those retries. Backoff elapses
    /// between issue and delivery, so it is already inside the ring-wait
    /// and service phases — this field *attributes* it, it does not add
    /// a fifth phase (the exact four-phase sum is preserved).
    pub retry_backoff_cycles: u64,
    /// Whether any packet was abandoned after exhausting its retry
    /// budget (the command's bytes were then not fully delivered).
    pub exhausted: bool,
    /// Per-element stamps, in element order.
    pub element_records: Vec<ElementLifecycle>,
}

impl CommandLifecycle {
    /// The clamped stamp timeline `[enqueue, first issue, last issue,
    /// last grant, completion]` the phase partition is cut from. Clamping
    /// makes each stamp at least its predecessor; when no grant was ever
    /// reported the grant stamp collapses onto last issue (ring-wait 0).
    fn timeline(&self) -> [Cycle; 5] {
        let t0 = self.enqueued_at;
        let t1 = self.first_issue_at.max(t0);
        let t2 = self.last_issue_at.max(t1);
        let t3 = if self.packets_granted > 0 {
            self.last_grant_at.max(t2)
        } else {
            t2
        };
        let t4 = self.completed_at.max(t3);
        [t0, t1, t2, t3, t4]
    }

    /// End-to-end latency: enqueue → completion.
    pub fn latency(&self) -> u64 {
        let t = self.timeline();
        t[4].saturating_since(t[0])
    }

    /// The four-phase partition in [`DmaPhase::ALL`] order; sums to
    /// [`CommandLifecycle::latency`] exactly.
    pub fn phases(&self) -> [u64; 4] {
        let t = self.timeline();
        [
            t[1].saturating_since(t[0]),
            t[2].saturating_since(t[1]),
            t[3].saturating_since(t[2]),
            t[4].saturating_since(t[3]),
        ]
    }

    /// Cycles spent in one phase.
    pub fn phase(&self, phase: DmaPhase) -> u64 {
        let idx = DmaPhase::ALL
            .iter()
            .position(|&p| p == phase)
            .expect("phase in ALL");
        self.phases()[idx]
    }

    /// The phase holding the most cycles (earliest phase wins ties) —
    /// the per-command dominant-phase attribution.
    pub fn dominant_phase(&self) -> DmaPhase {
        let phases = self.phases();
        let mut best = 0;
        for (i, &cycles) in phases.iter().enumerate() {
            if cycles > phases[best] {
                best = i;
            }
        }
        DmaPhase::ALL[best]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(offset: u64) -> EffectiveAddr {
        EffectiveAddr::Memory {
            region: RegionId(0),
            offset,
        }
    }

    fn tag() -> TagId {
        TagId::new(0).unwrap()
    }

    #[test]
    fn valid_sizes_accepted() {
        for bytes in [1u32, 2, 4, 8, 16, 128, 1024, 16384] {
            assert!(
                DmaCommand::new(DmaKind::Get, LsAddr(0), mem(0), bytes, tag()).is_ok(),
                "size {bytes} should be valid"
            );
        }
    }

    #[test]
    fn invalid_sizes_rejected() {
        for bytes in [3u32, 5, 12, 17, 100] {
            assert_eq!(
                DmaCommand::new(DmaKind::Get, LsAddr(0), mem(0), bytes, tag()),
                Err(DmaError::InvalidSize(bytes))
            );
        }
        assert_eq!(
            DmaCommand::new(DmaKind::Get, LsAddr(0), mem(0), 0, tag()),
            Err(DmaError::Empty)
        );
        assert_eq!(
            DmaCommand::new(DmaKind::Get, LsAddr(0), mem(0), 16400, tag()),
            Err(DmaError::TooLarge(16400))
        );
    }

    #[test]
    fn natural_alignment_enforced_for_small() {
        // 8-byte transfer at an unaligned LS offset.
        assert!(matches!(
            DmaCommand::new(DmaKind::Get, LsAddr(4), mem(4), 8, tag()),
            Err(DmaError::Misaligned { .. })
        ));
        // Aligned but quadword offsets differ.
        assert!(matches!(
            DmaCommand::new(DmaKind::Get, LsAddr(8), mem(16), 8, tag()),
            Err(DmaError::Misaligned { .. })
        ));
        // Same quadword offset: fine.
        assert!(DmaCommand::new(DmaKind::Get, LsAddr(8), mem(24), 8, tag()).is_ok());
    }

    #[test]
    fn quadword_alignment_enforced_for_large() {
        assert!(matches!(
            DmaCommand::new(DmaKind::Put, LsAddr(8), mem(0), 128, tag()),
            Err(DmaError::Misaligned { .. })
        ));
        assert!(DmaCommand::new(DmaKind::Put, LsAddr(16), mem(32), 128, tag()).is_ok());
    }

    #[test]
    fn local_store_bounds_enforced() {
        assert_eq!(
            DmaCommand::new(
                DmaKind::Get,
                LsAddr(LOCAL_STORE_BYTES - 64),
                mem(0),
                128,
                tag()
            ),
            Err(DmaError::LocalStoreOverrun)
        );
        let remote = EffectiveAddr::LocalStore {
            spe: 1,
            offset: LOCAL_STORE_BYTES - 64,
        };
        assert_eq!(
            DmaCommand::new(DmaKind::Get, LsAddr(0), remote, 128, tag()),
            Err(DmaError::LocalStoreOverrun)
        );
    }

    #[test]
    fn bad_spe_index_rejected() {
        let remote = EffectiveAddr::LocalStore { spe: 9, offset: 0 };
        assert_eq!(
            DmaCommand::new(DmaKind::Get, LsAddr(0), remote, 128, tag()),
            Err(DmaError::BadSpe(9))
        );
    }

    #[test]
    fn advanced_moves_both_address_kinds() {
        assert_eq!(mem(100).advanced(28).offset(), 128);
        let ls = EffectiveAddr::LocalStore { spe: 2, offset: 64 };
        assert_eq!(ls.advanced(64).offset(), 128);
    }

    #[test]
    fn errors_display_meaningfully() {
        let e = DmaError::InvalidSize(3);
        assert!(e.to_string().contains('3'));
        let e = DmaError::QueueFull;
        assert!(!e.to_string().is_empty());
    }
}
