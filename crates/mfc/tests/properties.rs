//! Property tests for the MFC: validation rules, unroll conservation,
//! and tag accounting.

use cellsim_kernel::Cycle;
use cellsim_mem::RegionId;
use cellsim_mfc::{
    DmaCommand, DmaKind, DmaListCommand, EffectiveAddr, Issue, LsAddr, MfcConfig, MfcEngine, TagId,
    LOCAL_STORE_BYTES, MAX_DMA_BYTES,
};
use proptest::prelude::*;

fn mem_ea() -> impl Strategy<Value = EffectiveAddr> {
    (0u64..1 << 24).prop_map(|offset| EffectiveAddr::Memory {
        region: RegionId(0),
        offset,
    })
}

/// Reference implementation of the CBE size/alignment predicate,
/// deliberately written in the naive style so it stays independent of
/// the production code.
#[allow(clippy::manual_is_multiple_of)]
fn reference_valid(ls: u32, ea: u64, bytes: u32) -> bool {
    let size_ok = matches!(bytes, 1 | 2 | 4 | 8) || (bytes > 0 && bytes % 16 == 0);
    if !size_ok || bytes > MAX_DMA_BYTES {
        return false;
    }
    let align = if bytes < 16 { u64::from(bytes) } else { 16 };
    if u64::from(ls) % align != 0 || ea % align != 0 {
        return false;
    }
    if bytes < 16 && (u64::from(ls) & 15) != (ea & 15) {
        return false;
    }
    u64::from(ls) + u64::from(bytes) <= u64::from(LOCAL_STORE_BYTES)
}

proptest! {
    /// The validator agrees with the reference predicate on arbitrary
    /// inputs.
    #[test]
    fn validation_matches_reference(
        ls in 0u32..LOCAL_STORE_BYTES,
        ea_off in 0u64..1 << 20,
        bytes in 0u32..20_000,
    ) {
        let ea = EffectiveAddr::Memory { region: RegionId(0), offset: ea_off };
        let ours = DmaCommand::validate(LsAddr(ls), &ea, bytes).is_ok();
        prop_assert_eq!(ours, reference_valid(ls, ea_off, bytes));
    }

    /// Unrolling conserves bytes, never emits oversized packets, and
    /// covers the effective-address range contiguously.
    #[test]
    fn unroll_conserves_and_aligns(
        bytes_16 in 1u32..=1024,   // transfer size in 16-byte units
        ea in mem_ea(),
        budget in 1usize..16,
    ) {
        let bytes = bytes_16 * 16;
        let ea = EffectiveAddr::Memory {
            region: RegionId(0),
            offset: ea.offset() & !15, // respect quadword alignment
        };
        let Ok(cmd) = DmaCommand::new(DmaKind::Get, LsAddr(0), ea, bytes, TagId::new(0).unwrap())
        else {
            // Only possible failure left is LS overrun; not generated here.
            return Ok(());
        };
        let cfg = MfcConfig {
            max_outstanding_packets: budget,
            command_startup: 0,
            ..MfcConfig::default()
        };
        let mut mfc = MfcEngine::new(cfg).unwrap();
        mfc.enqueue(Cycle::ZERO, cmd).unwrap();

        let mut now = Cycle::ZERO;
        let mut total = 0u64;
        let mut next_ea = ea.offset();
        loop {
            match mfc.try_issue(now) {
                Issue::Packet(p) => {
                    prop_assert!(p.bytes <= 128);
                    prop_assert_eq!(p.ea.offset(), next_ea, "contiguous EA coverage");
                    // A packet never crosses a 128-byte EA boundary.
                    let start_blk = p.ea.offset() / 128;
                    let end_blk = (p.ea.offset() + u64::from(p.bytes) - 1) / 128;
                    prop_assert_eq!(start_blk, end_blk);
                    next_ea += u64::from(p.bytes);
                    total += u64::from(p.bytes);
                    mfc.packet_delivered(now, p.token);
                    now += 1;
                }
                Issue::Stalled { retry_at } => {
                    prop_assert!(retry_at > now, "stalls must make progress");
                    now = retry_at;
                }
                Issue::Blocked => prop_assert!(false, "eager delivery never blocks"),
                Issue::Idle => break,
            }
        }
        prop_assert_eq!(total, u64::from(bytes));
        prop_assert!(mfc.is_idle());
        prop_assert_eq!(mfc.stats().bytes_delivered, u64::from(bytes));
    }

    /// List commands conserve bytes across every element and complete
    /// their tag exactly once.
    #[test]
    fn list_unroll_conserves(
        elem_16 in 1u32..=64,
        count in 1usize..32,
    ) {
        let elem = elem_16 * 16;
        prop_assume!(u64::from(elem) * count as u64 <= u64::from(LOCAL_STORE_BYTES));
        let tag = TagId::new(7).unwrap();
        let list = DmaListCommand::contiguous(
            DmaKind::Put,
            LsAddr(0),
            EffectiveAddr::Memory { region: RegionId(1), offset: 0 },
            elem,
            count,
            tag,
        )
        .unwrap();
        let expected = list.total_bytes();
        let mut mfc = MfcEngine::new(MfcConfig::default()).unwrap();
        mfc.enqueue_list(Cycle::ZERO, list).unwrap();
        prop_assert!(mfc.tags().is_pending(tag));

        let mut now = Cycle::ZERO;
        let mut total = 0u64;
        loop {
            match mfc.try_issue(now) {
                Issue::Packet(p) => {
                    total += u64::from(p.bytes);
                    mfc.packet_delivered(now, p.token);
                    now += 1;
                }
                Issue::Stalled { retry_at } => now = retry_at,
                _ => break,
            }
        }
        prop_assert_eq!(total, expected);
        prop_assert!(!mfc.tags().is_pending(tag));
    }

    /// The outstanding budget is never exceeded, whatever the command mix.
    #[test]
    fn outstanding_budget_is_hard(
        sizes in proptest::collection::vec(1u32..=32, 1..10),
        budget in 1usize..8,
    ) {
        let cfg = MfcConfig {
            max_outstanding_packets: budget,
            command_startup: 0,
            ..MfcConfig::default()
        };
        let mut mfc = MfcEngine::new(cfg).unwrap();
        let mut ls = 0u32;
        for (i, &s16) in sizes.iter().enumerate() {
            let bytes = s16 * 128;
            let cmd = DmaCommand::new(
                DmaKind::Get,
                LsAddr(ls),
                EffectiveAddr::Memory { region: RegionId(0), offset: u64::from(ls) },
                bytes.min(MAX_DMA_BYTES),
                TagId::new((i % 32) as u8).unwrap(),
            )
            .unwrap();
            ls += bytes.min(MAX_DMA_BYTES);
            if !mfc.has_space() {
                break;
            }
            mfc.enqueue(Cycle::ZERO, cmd).unwrap();
        }
        // Issue without delivering: must stop at the budget.
        let mut now = Cycle::ZERO;
        let mut in_flight = Vec::new();
        loop {
            match mfc.try_issue(now) {
                Issue::Packet(p) => {
                    in_flight.push(p.token);
                    prop_assert!(in_flight.len() <= budget);
                    now += 1;
                }
                Issue::Stalled { retry_at } => now = retry_at,
                Issue::Blocked | Issue::Idle => break,
            }
        }
        // Each command is >= 1 packet, so with any work queued the engine
        // fills its whole budget before blocking.
        prop_assert!(!in_flight.is_empty());
        if mfc.stats().commands as usize >= budget {
            prop_assert_eq!(in_flight.len(), budget);
        }
    }
}
