//! The roofline estimator: measured fabric bandwidth × intensity versus
//! SPU compute.

use cellsim_core::report::{Figure, Point, Series};
use cellsim_core::{CellSystem, Placement, SyncPolicy, TransferPlan};

use crate::compute::SpuComputeModel;
use crate::spec::{KernelSpec, Traffic};

/// Which term of the roofline binds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bound {
    /// The fabric cannot feed the SPUs fast enough.
    Memory,
    /// The SPU pipes are the limit.
    Compute,
}

/// A kernel performance estimate for one machine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelEstimate {
    /// Kernel name.
    pub name: String,
    /// Active SPEs.
    pub spes: usize,
    /// Sustained GFLOP/s (the roofline minimum).
    pub gflops: f64,
    /// The measured fabric bandwidth feeding the kernel, GB/s.
    pub bandwidth_gbps: f64,
    /// The aggregate SPU compute peak at the kernel's precision, GFLOP/s.
    pub compute_peak_gflops: f64,
    /// Which term binds.
    pub bound: Bound,
}

impl KernelEstimate {
    /// Whether the kernel is starved by the fabric.
    pub fn is_memory_bound(&self) -> bool {
        self.bound == Bound::Memory
    }
}

/// Estimates kernel performance by *running* the kernel's DMA traffic on
/// the simulated fabric.
///
/// Double buffering is assumed (the paper's rule): communication fully
/// overlaps compute, so sustained performance is
/// `min(bandwidth × intensity, compute peak)`.
#[derive(Debug)]
pub struct KernelRunner<'a> {
    system: &'a CellSystem,
    compute: SpuComputeModel,
    volume_per_spe: u64,
}

impl<'a> KernelRunner<'a> {
    /// A runner over `system` with the default measurement volume.
    pub fn new(system: &'a CellSystem) -> KernelRunner<'a> {
        KernelRunner {
            system,
            compute: SpuComputeModel::new(system.config().clock),
            volume_per_spe: 2 << 20,
        }
    }

    /// Overrides the per-SPE traffic volume used for the bandwidth
    /// measurement.
    ///
    /// # Panics
    ///
    /// Panics if `volume` is zero.
    pub fn with_volume(mut self, volume: u64) -> KernelRunner<'a> {
        assert!(volume > 0, "volume must be non-zero");
        self.volume_per_spe = volume;
        self
    }

    /// The compute model in use.
    pub fn compute_model(&self) -> &SpuComputeModel {
        &self.compute
    }

    /// Measures the fabric bandwidth available to `spec`'s traffic
    /// pattern on `spes` SPEs (GB/s of *input* stream).
    pub fn measure_bandwidth(&self, spec: &KernelSpec, spes: usize) -> f64 {
        assert!((1..=8).contains(&spes), "1..=8 SPEs");
        let elem = spec.block_bytes;
        let volume = self.volume_per_spe / u64::from(elem) * u64::from(elem);
        let volume = volume.max(u64::from(elem));
        let mut b = TransferPlan::builder();
        match spec.traffic {
            Traffic::StreamIn => {
                for spe in 0..spes {
                    b = b.get_from_memory(spe, volume, elem, SyncPolicy::AfterAll);
                }
            }
            Traffic::StreamInOut => {
                for spe in 0..spes {
                    b = b.copy_memory(spe, volume, elem, SyncPolicy::AfterAll);
                }
            }
            Traffic::Pipeline => {
                b = b.get_from_memory(0, volume, elem, SyncPolicy::AfterAll);
                for spe in 1..spes {
                    b = b.put_to_spe(spe - 1, spe, volume, elem, SyncPolicy::AfterAll);
                }
            }
        }
        let plan = b.build().expect("kernel traffic plans are valid");
        let report = self.system.try_run(&Placement::identity(), &plan).unwrap();
        match spec.traffic {
            // Copy reports read+write traffic; the useful stream is half.
            Traffic::StreamInOut => report.sum_gbps / 2.0,
            Traffic::StreamIn => report.sum_gbps,
            // A pipeline's useful rate is its ingest rate.
            Traffic::Pipeline => {
                let clock = self.system.config().clock;
                volume as f64 / clock.seconds(report.cycles) / 1e9
            }
        }
    }

    /// The full roofline estimate for `spec` on `spes` SPEs.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= spes <= 8`.
    pub fn estimate(&self, spec: &KernelSpec, spes: usize) -> KernelEstimate {
        let bandwidth_gbps = self.measure_bandwidth(spec, spes);
        let memory_term = bandwidth_gbps * spec.flops_per_byte;
        let compute_peak_gflops = self.compute.gflops_peak(spec.precision, spes);
        let (gflops, bound) = if memory_term <= compute_peak_gflops {
            (memory_term, Bound::Memory)
        } else {
            (compute_peak_gflops, Bound::Compute)
        };
        KernelEstimate {
            name: spec.name.clone(),
            spes,
            gflops,
            bandwidth_gbps,
            compute_peak_gflops,
            bound,
        }
    }
}

/// Renders the paper-kernel estimates as a figure (GFLOP/s; one series
/// per kernel, swept over SPE counts).
pub fn roofline_figure(system: &CellSystem) -> Figure {
    let runner = KernelRunner::new(system);
    let mut kernels = KernelSpec::paper_kernels();
    kernels.push(KernelSpec::matrix_multiply(64).in_double_precision());
    let series = kernels
        .iter()
        .map(|spec| Series {
            label: spec.name.clone(),
            points: [1usize, 2, 4, 8]
                .into_iter()
                .map(|spes| {
                    let est = runner.estimate(spec, spes);
                    Point {
                        x: format!("{spes}"),
                        gbps: est.gflops, // GFLOP/s in this figure
                    }
                })
                .collect(),
        })
        .collect();
    Figure {
        id: "K1".into(),
        title: "small-kernel roofline (GFLOP/s, not GB/s)".into(),
        x_label: "SPEs".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runner_system() -> CellSystem {
        CellSystem::blade()
    }

    #[test]
    fn dot_product_is_memory_bound_everywhere() {
        let sys = runner_system();
        let runner = KernelRunner::new(&sys).with_volume(512 << 10);
        for spes in [1, 4, 8] {
            let est = runner.estimate(&KernelSpec::dot_product(), spes);
            assert!(est.is_memory_bound(), "{spes} SPEs: {est:?}");
            // 0.25 flops/byte x ~10-23 GB/s: single digits of GFLOP/s.
            assert!(est.gflops < 7.0, "{est:?}");
        }
    }

    #[test]
    fn blocked_gemm_is_compute_bound() {
        let sys = runner_system();
        let runner = KernelRunner::new(&sys).with_volume(512 << 10);
        let est = runner.estimate(&KernelSpec::matrix_multiply(64), 8);
        assert_eq!(est.bound, Bound::Compute);
        assert!((est.gflops - 67.2).abs() < 1e-6, "{est:?}");
    }

    #[test]
    fn double_precision_flips_gemm_to_compute_starved() {
        let sys = runner_system();
        let runner = KernelRunner::new(&sys).with_volume(512 << 10);
        let sp = runner.estimate(&KernelSpec::matrix_multiply(64), 8);
        let dp = runner.estimate(&KernelSpec::matrix_multiply(64).in_double_precision(), 8);
        // Dongarra's point: DP is ~28x slower, so do the bulk in SP.
        assert!(
            dp.gflops < sp.gflops / 20.0,
            "sp={} dp={}",
            sp.gflops,
            dp.gflops
        );
    }

    #[test]
    fn more_spes_never_reduce_kernel_performance() {
        let sys = runner_system();
        let runner = KernelRunner::new(&sys).with_volume(256 << 10);
        let triad = KernelSpec::stream_triad();
        let g1 = runner.estimate(&triad, 1).gflops;
        let g4 = runner.estimate(&triad, 4).gflops;
        assert!(g4 > g1, "g1={g1} g4={g4}");
    }

    #[test]
    fn estimates_expose_their_terms() {
        let sys = runner_system();
        let runner = KernelRunner::new(&sys).with_volume(256 << 10);
        let est = runner.estimate(&KernelSpec::matrix_vector(), 2);
        assert!(est.bandwidth_gbps > 0.0);
        assert!(est.compute_peak_gflops > 0.0);
        assert!(est.gflops <= est.compute_peak_gflops + 1e-9);
        assert!(est.gflops <= est.bandwidth_gbps * 0.5 + 1e-9);
    }

    #[test]
    fn roofline_figure_covers_all_kernels() {
        let sys = runner_system();
        let fig = roofline_figure(&sys);
        assert_eq!(fig.series.len(), 5);
        assert!(fig.value("dot product", "8").unwrap() > 0.0);
        // GEMM at 8 SPEs hits the SP compute peak.
        let gemm = fig.value("matrix multiply (b=64)", "8").unwrap();
        assert!((gemm - 67.2).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "1..=8")]
    fn too_many_spes_rejected() {
        let sys = runner_system();
        let runner = KernelRunner::new(&sys);
        let _ = runner.estimate(&KernelSpec::dot_product(), 9);
    }
}
