//! SPU arithmetic rates.

use cellsim_kernel::MachineClock;

/// Floating-point precision of a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// 32-bit: the SPU's 4-wide SIMD pipe retires 4 FLOPs per cycle.
    Single,
    /// 64-bit: the first-generation CBE retires one DP operation every
    /// seven cycles.
    Double,
}

/// The SPU's arithmetic throughput model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpuComputeModel {
    clock: MachineClock,
    /// Single-precision FLOPs per SPU cycle (4 on the CBE).
    pub sp_flops_per_cycle: f64,
    /// Double-precision FLOPs per SPU cycle (1/7 on the CBE).
    pub dp_flops_per_cycle: f64,
}

impl SpuComputeModel {
    /// The production CBE rates under `clock`.
    pub fn new(clock: MachineClock) -> SpuComputeModel {
        SpuComputeModel {
            clock,
            sp_flops_per_cycle: 4.0,
            dp_flops_per_cycle: 1.0 / 7.0,
        }
    }

    /// FLOPs per SPU cycle at `precision`.
    pub fn flops_per_cycle(&self, precision: Precision) -> f64 {
        match precision {
            Precision::Single => self.sp_flops_per_cycle,
            Precision::Double => self.dp_flops_per_cycle,
        }
    }

    /// Peak GFLOP/s of `spes` SPUs at `precision`.
    pub fn gflops_peak(&self, precision: Precision, spes: usize) -> f64 {
        self.flops_per_cycle(precision) * self.clock.cpu_hz() * spes as f64 / 1e9
    }

    /// Peak single-precision GFLOP/s of `spes` SPUs.
    pub fn sp_gflops_peak(&self, spes: usize) -> f64 {
        self.gflops_peak(Precision::Single, spes)
    }

    /// CPU cycles to execute `flops` FLOPs on one SPU.
    pub fn cycles_for(&self, precision: Precision, flops: f64) -> f64 {
        flops / self.flops_per_cycle(precision)
    }
}

impl Default for SpuComputeModel {
    fn default() -> Self {
        SpuComputeModel::new(MachineClock::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sp_peak_matches_the_paper_headline() {
        let m = SpuComputeModel::default();
        // 4 FLOPs x 2.1 GHz = 8.4 GFLOP/s per SPU; the paper quotes
        // 16.8 per SPE counting fused multiply-adds as two.
        assert!((m.sp_gflops_peak(1) - 8.4).abs() < 1e-9);
        assert!((m.sp_gflops_peak(8) - 67.2).abs() < 1e-9);
    }

    #[test]
    fn dp_is_twenty_eight_times_slower() {
        let m = SpuComputeModel::default();
        let ratio = m.sp_gflops_peak(1) / m.gflops_peak(Precision::Double, 1);
        assert!((ratio - 28.0).abs() < 1e-9);
    }

    #[test]
    fn cycles_invert_the_rate() {
        let m = SpuComputeModel::default();
        assert_eq!(m.cycles_for(Precision::Single, 400.0), 100.0);
        assert_eq!(m.cycles_for(Precision::Double, 10.0), 70.0);
    }
}
