//! Kernel descriptors: the paper's "small kernels".

use crate::compute::Precision;

/// The DMA traffic pattern a kernel's inner loop generates per block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Traffic {
    /// Streams input from memory only (results stay in registers/LS),
    /// e.g. a reduction.
    StreamIn,
    /// Streams input from memory and writes results back, e.g. triad.
    StreamInOut,
    /// Passes blocks SPE→SPE along a software pipeline (only the head
    /// reads memory).
    Pipeline,
}

/// A streaming kernel, described by the quantities that decide its
/// performance on a bandwidth-limited machine.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpec {
    /// Human name.
    pub name: String,
    /// Useful FLOPs per byte *moved from memory* (arithmetic intensity).
    pub flops_per_byte: f64,
    /// Arithmetic precision.
    pub precision: Precision,
    /// DMA block size (bytes) the implementation streams with; the
    /// paper's rules say ≥1 KB, ideally 16 KB.
    pub block_bytes: u32,
    /// Traffic pattern.
    pub traffic: Traffic,
}

impl KernelSpec {
    /// Scalar (dot) product `Σ xᵢ·yᵢ`: 2 FLOPs per 8 input bytes.
    pub fn dot_product() -> KernelSpec {
        KernelSpec {
            name: "dot product".into(),
            flops_per_byte: 0.25,
            precision: Precision::Single,
            block_bytes: 16 * 1024,
            traffic: Traffic::StreamIn,
        }
    }

    /// STREAM triad `aᵢ = bᵢ + s·cᵢ`: 2 FLOPs per 12 bytes moved.
    pub fn stream_triad() -> KernelSpec {
        KernelSpec {
            name: "stream triad".into(),
            flops_per_byte: 2.0 / 12.0,
            precision: Precision::Single,
            block_bytes: 16 * 1024,
            traffic: Traffic::StreamInOut,
        }
    }

    /// Matrix–vector product `y = A·x` with the vector resident in LS:
    /// 2 FLOPs per 4 bytes of streamed matrix.
    pub fn matrix_vector() -> KernelSpec {
        KernelSpec {
            name: "matrix-vector".into(),
            flops_per_byte: 0.5,
            precision: Precision::Single,
            block_bytes: 16 * 1024,
            traffic: Traffic::StreamIn,
        }
    }

    /// Blocked matrix multiply with `b×b` tiles resident in LS: each
    /// streamed tile of `4b²` bytes contributes `2b³` FLOPs, i.e. `b/2`
    /// FLOPs per byte.
    pub fn matrix_multiply(tile: u32) -> KernelSpec {
        assert!(tile > 0, "tile must be non-zero");
        KernelSpec {
            name: format!("matrix multiply (b={tile})"),
            flops_per_byte: f64::from(tile) / 2.0,
            precision: Precision::Single,
            block_bytes: (4 * tile * tile).min(16 * 1024),
            traffic: Traffic::StreamInOut,
        }
    }

    /// Double-precision variant of this kernel (same traffic, the slow
    /// DP pipe).
    pub fn in_double_precision(mut self) -> KernelSpec {
        self.precision = Precision::Double;
        self.name.push_str(" (DP)");
        // Same FLOP count but each element is twice the bytes.
        self.flops_per_byte /= 2.0;
        self
    }

    /// The four kernels the paper names.
    pub fn paper_kernels() -> Vec<KernelSpec> {
        vec![
            KernelSpec::dot_product(),
            KernelSpec::stream_triad(),
            KernelSpec::matrix_vector(),
            KernelSpec::matrix_multiply(64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensities_are_correct() {
        assert_eq!(KernelSpec::dot_product().flops_per_byte, 0.25);
        assert_eq!(KernelSpec::matrix_vector().flops_per_byte, 0.5);
        assert_eq!(KernelSpec::matrix_multiply(64).flops_per_byte, 32.0);
        assert!((KernelSpec::stream_triad().flops_per_byte - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn dp_variant_halves_intensity() {
        let sp = KernelSpec::dot_product();
        let dp = KernelSpec::dot_product().in_double_precision();
        assert_eq!(dp.precision, Precision::Double);
        assert_eq!(dp.flops_per_byte, sp.flops_per_byte / 2.0);
        assert!(dp.name.contains("DP"));
    }

    #[test]
    fn gemm_block_size_respects_dma_limit() {
        let k = KernelSpec::matrix_multiply(128);
        assert!(k.block_bytes <= 16 * 1024);
    }

    #[test]
    #[should_panic(expected = "tile")]
    fn zero_tile_rejected() {
        let _ = KernelSpec::matrix_multiply(0);
    }
}
