//! Small-kernel performance estimation on the simulated Cell BE.
//!
//! The ISPASS 2007 paper closes with: *"In the near future, we plan to
//! use this experience to evaluate small kernels (scalar product, matrix
//! by vector, matrix product, streaming benchmarks…)"*. This crate is
//! that evaluation, built on the measured fabric rather than on paper
//! peaks:
//!
//! * [`SpuComputeModel`] — the SPU's arithmetic rates: 4 single-precision
//!   FLOPs per CPU cycle (8.4 GFLOP/s at 2.1 GHz), but only one
//!   double-precision operation every seven cycles — the imbalance
//!   Williams et al. and Dongarra's keynote discuss.
//! * [`KernelSpec`] — a streaming kernel described by its arithmetic
//!   intensity, block size and traffic pattern.
//! * [`KernelRunner`] — estimates sustained GFLOP/s for N SPEs by
//!   *simulating* the kernel's DMA traffic on the fabric (double-buffered,
//!   so communication overlaps compute) and taking the roofline minimum
//!   of the measured bandwidth term and the compute term.
//!
//! # Example
//!
//! ```
//! use cellsim_core::CellSystem;
//! use cellsim_kernels::{KernelRunner, KernelSpec};
//!
//! let system = CellSystem::blade();
//! let runner = KernelRunner::new(&system);
//! let dot = KernelSpec::dot_product();
//! let est = runner.estimate(&dot, 4);
//! // The scalar product is memory-bound on any number of SPEs.
//! assert!(est.is_memory_bound());
//! assert!(est.gflops < runner.compute_model().sp_gflops_peak(4));
//! ```

mod compute;
mod runner;
mod spec;

pub use compute::{Precision, SpuComputeModel};
pub use runner::{roofline_figure, Bound, KernelEstimate, KernelRunner};
pub use spec::{KernelSpec, Traffic};
