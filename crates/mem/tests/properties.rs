//! Property tests for the memory subsystem.

use cellsim_kernel::Cycle;
use cellsim_mem::{BankConfig, BankId, NumaPolicy, Op, RegionId, SparseMemory, XdrBank};
use proptest::prelude::*;

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![Just(Op::Read), Just(Op::Write)]
}

proptest! {
    /// The bank's timeline is monotone: every access starts no earlier
    /// than the previous one, data is never ready before service begins,
    /// and the pipe never serves two accesses at once.
    #[test]
    fn bank_timeline_is_monotone(ops in proptest::collection::vec((op(), 1u32..=128), 1..100)) {
        let mut bank = XdrBank::new(BankConfig::local_xdr());
        let mut prev_end = Cycle::ZERO;
        for &(o, sixteenths) in &ops {
            let a = bank.submit(Cycle::ZERO, o, sixteenths * 16);
            prop_assert!(a.start >= prev_end, "pipe overlap");
            prop_assert!(a.service_done > a.start);
            prop_assert!(a.data_ready >= a.service_done);
            prev_end = a.service_done;
        }
    }

    /// Long-run throughput never exceeds the configured pipe width.
    #[test]
    fn bank_rate_is_bounded(n in 10u64..500, remote in any::<bool>()) {
        let cfg = if remote { BankConfig::remote_xdr() } else { BankConfig::local_xdr() };
        let bpc = cfg.bytes_per_cycle;
        let mut bank = XdrBank::new(cfg);
        let mut last = Cycle::ZERO;
        for _ in 0..n {
            last = bank.submit(Cycle::ZERO, Op::Read, 128).service_done;
        }
        // The fractional-carry accumulator may run up to one cycle ahead
        // transiently; the long-run rate equals the pipe width exactly.
        let exact_cycles = n as f64 * 128.0 / bpc;
        prop_assert!(
            last.as_u64() as f64 + 1.0 >= exact_cycles,
            "served {} cycles, exact {}",
            last.as_u64(),
            exact_cycles
        );
    }

    /// Accepting at `next_accept_time` always succeeds.
    #[test]
    fn next_accept_time_is_honest(burst in 1u64..80) {
        let mut bank = XdrBank::new(BankConfig::local_xdr());
        for _ in 0..burst {
            bank.submit(Cycle::ZERO, Op::Write, 128);
        }
        let t = bank.next_accept_time(Cycle::ZERO);
        prop_assert!(bank.can_accept(t));
    }

    /// NUMA policies are pure functions of (region, offset) and always
    /// return a real bank.
    #[test]
    fn numa_policies_are_deterministic(region in 0u32..64, offset in 0u64..1 << 30) {
        for policy in [
            NumaPolicy::LocalOnly,
            NumaPolicy::RoundRobinRegions,
            NumaPolicy::InterleavePages { page_bytes: 65536 },
        ] {
            let a = policy.bank_for(RegionId(region), offset);
            let b = policy.bank_for(RegionId(region), offset);
            prop_assert_eq!(a, b);
            prop_assert!(BankId::ALL.contains(&a));
        }
    }

    /// Page interleaving puts consecutive pages on alternating banks.
    #[test]
    fn interleave_alternates(page in 0u64..1000) {
        let p = NumaPolicy::InterleavePages { page_bytes: 4096 };
        let a = p.bank_for(RegionId(0), page * 4096);
        let b = p.bank_for(RegionId(0), (page + 1) * 4096);
        prop_assert_ne!(a, b);
    }

    /// SparseMemory behaves exactly like a flat byte array.
    #[test]
    fn sparse_memory_matches_flat_model(
        writes in proptest::collection::vec(
            (0u64..16384, proptest::collection::vec(any::<u8>(), 1..200)),
            1..20,
        ),
    ) {
        let mut sparse = SparseMemory::new();
        let mut flat = vec![0u8; 32768];
        for (addr, data) in &writes {
            sparse.write(*addr, data);
            flat[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
        }
        let mut back = vec![0u8; flat.len()];
        sparse.read(0, &mut back);
        prop_assert_eq!(back, flat);
    }
}
