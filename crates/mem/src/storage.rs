//! Functional backing store for examples that move real bytes.

use std::collections::HashMap;

/// Sparse byte-addressable memory, allocated lazily in 4 KiB chunks.
///
/// The bandwidth experiments are timing-only, but the library also supports
/// *functional* DMA (examples copy real data through the simulated fabric).
/// A 64-bit address space backed by a hash map of chunks keeps that cheap:
/// untouched memory costs nothing and reads as zero.
///
/// ```
/// use cellsim_mem::SparseMemory;
/// let mut mem = SparseMemory::new();
/// mem.write(0x1000, b"hello");
/// let mut buf = [0u8; 5];
/// mem.read(0x1000, &mut buf);
/// assert_eq!(&buf, b"hello");
/// assert_eq!(mem.resident_bytes(), 4096);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SparseMemory {
    chunks: HashMap<u64, Box<[u8; SparseMemory::CHUNK]>>,
}

impl SparseMemory {
    /// Chunk granularity in bytes.
    pub const CHUNK: usize = 4096;

    /// Creates an empty memory (all zeroes).
    pub fn new() -> SparseMemory {
        SparseMemory::default()
    }

    /// Copies `buf.len()` bytes starting at `addr` into `buf`.
    /// Untouched regions read as zero.
    pub fn read(&self, addr: u64, buf: &mut [u8]) {
        let mut done = 0usize;
        while done < buf.len() {
            let a = addr + done as u64;
            let chunk_idx = a / Self::CHUNK as u64;
            let off = (a % Self::CHUNK as u64) as usize;
            let n = (Self::CHUNK - off).min(buf.len() - done);
            match self.chunks.get(&chunk_idx) {
                Some(c) => buf[done..done + n].copy_from_slice(&c[off..off + n]),
                None => buf[done..done + n].fill(0),
            }
            done += n;
        }
    }

    /// Copies `buf` into memory starting at `addr`.
    pub fn write(&mut self, addr: u64, buf: &[u8]) {
        let mut done = 0usize;
        while done < buf.len() {
            let a = addr + done as u64;
            let chunk_idx = a / Self::CHUNK as u64;
            let off = (a % Self::CHUNK as u64) as usize;
            let n = (Self::CHUNK - off).min(buf.len() - done);
            let chunk = self
                .chunks
                .entry(chunk_idx)
                .or_insert_with(|| Box::new([0u8; Self::CHUNK]));
            chunk[off..off + n].copy_from_slice(&buf[done..done + n]);
            done += n;
        }
    }

    /// Bytes currently backed by real allocations.
    pub fn resident_bytes(&self) -> usize {
        self.chunks.len() * Self::CHUNK
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let mem = SparseMemory::new();
        let mut buf = [0xAAu8; 16];
        mem.read(12_345_678, &mut buf);
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(mem.resident_bytes(), 0);
    }

    #[test]
    fn write_read_round_trip_across_chunks() {
        let mut mem = SparseMemory::new();
        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        let addr = SparseMemory::CHUNK as u64 - 100; // straddles boundaries
        mem.write(addr, &data);
        let mut back = vec![0u8; data.len()];
        mem.read(addr, &mut back);
        assert_eq!(back, data);
        // 100 B in the first chunk + 9900 B spanning three more.
        assert_eq!(mem.resident_bytes(), 4 * SparseMemory::CHUNK);
    }

    #[test]
    fn overlapping_writes_take_the_latest() {
        let mut mem = SparseMemory::new();
        mem.write(10, &[1, 1, 1, 1]);
        mem.write(12, &[2, 2]);
        let mut buf = [0u8; 4];
        mem.read(10, &mut buf);
        assert_eq!(buf, [1, 1, 2, 2]);
    }
}
