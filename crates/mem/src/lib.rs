//! Memory subsystem of the simulated Cell blade.
//!
//! The ISPASS 2007 machine is a dual-Cell blade with 256 MB of XDR DRAM per
//! chip. With `maxcpus=2` only the first chip computes, but both banks stay
//! reachable: the **local** bank sits behind the Memory Interface
//! Controller (16.8 GB/s peak at the 2.1 GHz part's bus clock) and the
//! **remote** bank behind the coherent I/O interface (IOIF0/BIF, ≈7 GB/s).
//! Which regions land on which bank — the NUMA placement — is exactly what
//! lets two or more SPEs exceed a single bank's peak in the paper's
//! Figure 8.
//!
//! This crate provides:
//!
//! * [`XdrBank`] — a latency/throughput queue model of one XDR DRAM bank
//!   with refresh and read↔write turnaround penalties.
//! * [`MemorySystem`] — both banks plus the [`NumaPolicy`] region map.
//! * [`SparseMemory`] — an optional functional byte store so examples can
//!   move real data, allocated lazily in 4 KiB chunks.
//!
//! # Example
//!
//! ```
//! use cellsim_kernel::Cycle;
//! use cellsim_mem::{BankId, MemorySystem, Op};
//!
//! let mut mem = MemorySystem::blade();
//! let access = mem.submit(Cycle::ZERO, BankId::Local, Op::Read, 128);
//! // 128 B at 16 B/cycle occupies the bank for 8 cycles; data arrives
//! // after the pipelined access latency.
//! assert_eq!(access.service_done, Cycle::new(8));
//! assert!(access.data_ready > access.service_done);
//! ```

mod bank;
mod numa;
mod storage;
mod system;

pub use bank::{Access, BankConfig, BankStats, Op, XdrBank};
pub use numa::{NumaPolicy, RegionId};
pub use storage::SparseMemory;
pub use system::{BankId, MemorySystem};
