//! Both banks plus the NUMA region map.

use cellsim_kernel::Cycle;

use crate::bank::{Access, BankConfig, Op, XdrBank};
use crate::numa::{NumaPolicy, RegionId};

/// Which physical bank an access targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BankId {
    /// The bank behind the first chip's MIC.
    Local,
    /// The second chip's bank, reached over IOIF0/BIF.
    Remote,
}

impl BankId {
    /// Both banks, local first.
    pub const ALL: [BankId; 2] = [BankId::Local, BankId::Remote];
}

/// The blade's memory: a local and a remote XDR bank behind a NUMA map.
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct MemorySystem {
    local: XdrBank,
    remote: XdrBank,
    policy: NumaPolicy,
}

impl MemorySystem {
    /// The paper's dual-Cell blade with the default NUMA policy.
    pub fn blade() -> MemorySystem {
        MemorySystem::new(
            BankConfig::local_xdr(),
            BankConfig::remote_xdr(),
            NumaPolicy::default(),
        )
    }

    /// Builds a memory system from explicit bank configurations.
    pub fn new(local: BankConfig, remote: BankConfig, policy: NumaPolicy) -> MemorySystem {
        MemorySystem {
            local: XdrBank::new(local),
            remote: XdrBank::new(remote),
            policy,
        }
    }

    /// Installs per-bank fault behaviour. The NACK decision streams are
    /// seeded from `seed` with one stream index per bank, so the two
    /// banks draw independent deterministic sequences.
    pub fn set_faults(
        &mut self,
        local: cellsim_faults::BankFaults,
        remote: cellsim_faults::BankFaults,
        seed: u64,
    ) {
        self.local.set_faults(local, seed, 0);
        self.remote.set_faults(remote, seed, 1);
    }

    /// Draws the next NACK decision for an access arriving at `bank`.
    /// Consult before [`MemorySystem::submit`]; `true` means the access
    /// was refused transiently and must be retried. Always `false`
    /// without faults installed.
    pub fn nack_roll(&mut self, bank: BankId) -> bool {
        self.bank_mut(bank).nack_roll()
    }

    /// The active NUMA policy.
    pub fn policy(&self) -> NumaPolicy {
        self.policy
    }

    /// Replaces the NUMA policy (for ablations).
    pub fn set_policy(&mut self, policy: NumaPolicy) {
        self.policy = policy;
    }

    /// The bank holding byte `offset` of `region` under the current policy.
    pub fn bank_for(&self, region: RegionId, offset: u64) -> BankId {
        self.policy.bank_for(region, offset)
    }

    /// Shared access to a bank.
    pub fn bank(&self, id: BankId) -> &XdrBank {
        match id {
            BankId::Local => &self.local,
            BankId::Remote => &self.remote,
        }
    }

    /// Queues an access on `bank`.
    pub fn submit(&mut self, now: Cycle, bank: BankId, op: Op, bytes: u32) -> Access {
        self.bank_mut(bank).submit(now, op, bytes)
    }

    /// Whether `bank` will take new work at `now`.
    pub fn can_accept(&self, bank: BankId, now: Cycle) -> bool {
        self.bank(bank).can_accept(now)
    }

    /// Earliest time `bank` will take new work.
    pub fn next_accept_time(&self, bank: BankId, now: Cycle) -> Cycle {
        self.bank(bank).next_accept_time(now)
    }

    fn bank_mut(&mut self, id: BankId) -> &mut XdrBank {
        match id {
            BankId::Local => &mut self.local,
            BankId::Remote => &mut self.remote,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banks_are_independent_queues() {
        let mut mem = MemorySystem::blade();
        let a = mem.submit(Cycle::ZERO, BankId::Local, Op::Read, 128);
        let b = mem.submit(Cycle::ZERO, BankId::Remote, Op::Read, 128);
        // Concurrent service: neither waits for the other.
        assert_eq!(a.start, Cycle::ZERO);
        assert_eq!(b.start, Cycle::ZERO);
        // The remote bank is slower per byte.
        assert!(b.service_done > a.service_done);
    }

    #[test]
    fn default_policy_spreads_regions() {
        let mem = MemorySystem::blade();
        assert_eq!(mem.bank_for(RegionId(0), 0), BankId::Local);
        assert_eq!(mem.bank_for(RegionId(1), 0), BankId::Remote);
    }

    #[test]
    fn policy_can_be_swapped() {
        let mut mem = MemorySystem::blade();
        mem.set_policy(NumaPolicy::LocalOnly);
        assert_eq!(mem.bank_for(RegionId(1), 0), BankId::Local);
    }
}
