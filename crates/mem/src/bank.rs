//! Latency/throughput model of one XDR DRAM bank.

use cellsim_faults::{BankFaults, NackStream};
use cellsim_kernel::Cycle;

/// Direction of a DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Data flows out of the bank.
    Read,
    /// Data flows into the bank.
    Write,
}

/// Structural parameters of a bank.
///
/// All times are in bus cycles (1.05 GHz on the paper's blade).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BankConfig {
    /// Sustained data-pipe width in bytes per bus cycle. 16.0 for the
    /// local XDR bank behind the MIC; ≈6.67 for the remote bank, whose
    /// bottleneck is the 7 GB/s IOIF link.
    pub bytes_per_cycle: f64,
    /// Pipelined access latency: cycles from service start to data valid.
    pub access_latency: u64,
    /// Extra cycles when the pipe switches between reads and writes.
    pub turnaround_cycles: u64,
    /// A refresh window opens every this many cycles…
    pub refresh_interval: u64,
    /// …and steals this many cycles from the data pipe.
    pub refresh_cycles: u64,
    /// Backlog horizon: the bank refuses new work when its queue already
    /// extends more than this many cycles into the future. This is the
    /// backpressure that saturating writers (the paper's PPE memory-store
    /// experiment) run into.
    pub max_backlog_cycles: u64,
}

impl BankConfig {
    /// The local XDR bank behind the MIC of a 2.1 GHz CBE.
    pub fn local_xdr() -> BankConfig {
        BankConfig {
            bytes_per_cycle: 16.0,
            access_latency: 80,
            turnaround_cycles: 2,
            refresh_interval: 3000,
            refresh_cycles: 100,
            max_backlog_cycles: 256,
        }
    }

    /// The remote bank reached over IOIF0/BIF (7 GB/s ≈ 6.67 B/cycle).
    pub fn remote_xdr() -> BankConfig {
        BankConfig {
            bytes_per_cycle: 20.0 / 3.0,
            access_latency: 130,
            turnaround_cycles: 2,
            refresh_interval: 3000,
            refresh_cycles: 100,
            max_backlog_cycles: 256,
        }
    }
}

/// Timing of one accepted access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// When the bank began serving this access.
    pub start: Cycle,
    /// When the data pipe frees (throughput constraint).
    pub service_done: Cycle,
    /// When the data is valid at the bank edge (latency constraint). For
    /// reads this is when the payload can enter the bus; for writes, when
    /// the write has retired internally.
    pub data_ready: Cycle,
}

impl Access {
    /// Data-pipe cycles this access occupied (`service_done − start`) —
    /// the bank-service share attributed to the owning DMA command.
    pub fn service_cycles(&self) -> u64 {
        self.service_done.saturating_since(self.start)
    }
}

/// Occupancy counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankStats {
    /// Accesses served.
    pub accesses: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Cycles lost to read↔write turnaround.
    pub turnaround_cycles: u64,
    /// Cycles lost to refresh.
    pub refresh_cycles: u64,
    /// Cycles the data pipe spent serving accesses.
    pub busy_cycles: u64,
    /// Accesses that found the pipe still busy with earlier work and had
    /// to queue (bank contention).
    pub conflicts: u64,
}

/// One XDR DRAM bank modelled as a latency/throughput queue.
///
/// Accesses serialize on the data pipe (`bytes_per_cycle`), pay a
/// turnaround penalty when the direction flips, lose periodic refresh
/// windows, and deliver data a fixed pipelined latency after service
/// starts. The queue is unbounded in structure but [`XdrBank::can_accept`]
/// exposes a bounded-backlog horizon for callers that model backpressure.
#[derive(Debug, Clone)]
pub struct XdrBank {
    cfg: BankConfig,
    next_free: Cycle,
    next_refresh: Cycle,
    last_op: Option<Op>,
    /// Fractional service cycles carried between accesses so the long-run
    /// rate matches `bytes_per_cycle` exactly.
    debt: f64,
    stats: BankStats,
    faults: BankFaults,
    nacks: NackStream,
}

impl XdrBank {
    /// Creates an idle bank.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not positive or `refresh_interval`
    /// is zero.
    pub fn new(cfg: BankConfig) -> XdrBank {
        assert!(
            cfg.bytes_per_cycle > 0.0 && cfg.bytes_per_cycle.is_finite(),
            "bank pipe width must be positive"
        );
        assert!(
            cfg.refresh_interval > 0,
            "refresh interval must be non-zero"
        );
        XdrBank {
            next_free: Cycle::ZERO,
            next_refresh: Cycle::new(cfg.refresh_interval),
            last_op: None,
            debt: 0.0,
            cfg,
            stats: BankStats::default(),
            faults: BankFaults::default(),
            nacks: NackStream::disabled(),
        }
    }

    /// Installs fault behaviour: throttle windows applied to later
    /// accesses, and a NACK stream seeded from the plan seed and this
    /// bank's `stream_index` (so banks draw independent, deterministic
    /// decision sequences).
    pub fn set_faults(&mut self, faults: BankFaults, seed: u64, stream_index: u64) {
        self.nacks = NackStream::new(seed, stream_index, faults.nack_ppm);
        self.faults = faults;
    }

    /// Draws the next NACK decision for an access arriving now. Callers
    /// that model retry semantics ask this *before* [`XdrBank::submit`];
    /// a `true` answer means the access was refused transiently and the
    /// requester must back off and retry. Always `false` without faults.
    pub fn nack_roll(&mut self) -> bool {
        self.nacks.roll()
    }

    /// The bank's configuration.
    pub fn config(&self) -> &BankConfig {
        &self.cfg
    }

    /// Occupancy counters.
    pub fn stats(&self) -> &BankStats {
        &self.stats
    }

    /// Whether the bank will take new work at `now` (backlog horizon).
    pub fn can_accept(&self, now: Cycle) -> bool {
        self.next_free.saturating_since(now) <= self.cfg.max_backlog_cycles
    }

    /// Earliest time at which [`XdrBank::can_accept`] becomes true.
    pub fn next_accept_time(&self, now: Cycle) -> Cycle {
        if self.can_accept(now) {
            now
        } else {
            Cycle::new(
                self.next_free
                    .as_u64()
                    .saturating_sub(self.cfg.max_backlog_cycles),
            )
        }
    }

    /// Queues one access of `bytes` bytes and returns its timing.
    ///
    /// Callers that model backpressure should consult
    /// [`XdrBank::can_accept`] first; `submit` itself never refuses work.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn submit(&mut self, now: Cycle, op: Op, bytes: u32) -> Access {
        assert!(bytes > 0, "zero-byte DRAM access");
        if self.next_free > now {
            self.stats.conflicts += 1;
        }
        let mut start = now.max(self.next_free);

        // Read/write turnaround.
        if self.last_op.is_some_and(|prev| prev != op) {
            start += self.cfg.turnaround_cycles;
            self.stats.turnaround_cycles += self.cfg.turnaround_cycles;
        }
        self.last_op = Some(op);

        // Refresh windows: every interval, the pipe stalls.
        while start >= self.next_refresh {
            start = start.max(self.next_refresh + self.cfg.refresh_cycles);
            self.next_refresh += self.cfg.refresh_interval;
            self.stats.refresh_cycles += self.cfg.refresh_cycles;
        }

        // Service time with fractional carry. Inside a throttle window
        // the pipe runs at reduced capacity.
        let capacity = self.faults.capacity_percent(start.as_u64());
        let rate = if capacity < 100 {
            self.cfg.bytes_per_cycle * f64::from(capacity) / 100.0
        } else {
            self.cfg.bytes_per_cycle
        };
        let exact = f64::from(bytes) / rate + self.debt;
        let service = exact.floor() as u64;
        self.debt = exact - service as f64;
        // Never let an access be free even if the carry says so.
        let service = service.max(1);

        let service_done = start + service;
        self.next_free = service_done;
        self.stats.accesses += 1;
        self.stats.bytes += u64::from(bytes);
        self.stats.busy_cycles += service;
        Access {
            start,
            service_done,
            data_ready: start + self.cfg.access_latency + service,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet(mut cfg: BankConfig) -> BankConfig {
        cfg.refresh_interval = u64::MAX / 4;
        cfg.turnaround_cycles = 0;
        cfg
    }

    #[test]
    fn back_to_back_reads_pipeline_at_pipe_rate() {
        let mut bank = XdrBank::new(quiet(BankConfig::local_xdr()));
        let a = bank.submit(Cycle::ZERO, Op::Read, 128);
        let b = bank.submit(Cycle::ZERO, Op::Read, 128);
        assert_eq!(a.service_done, Cycle::new(8));
        assert_eq!(b.start, Cycle::new(8));
        assert_eq!(b.service_done, Cycle::new(16));
        // Latency is pipelined: data_ready gap equals the service gap.
        assert_eq!(b.data_ready - a.data_ready, 8);
    }

    #[test]
    fn turnaround_penalizes_direction_flips() {
        let mut cfg = quiet(BankConfig::local_xdr());
        cfg.turnaround_cycles = 6;
        let mut bank = XdrBank::new(cfg);
        bank.submit(Cycle::ZERO, Op::Read, 128);
        let w = bank.submit(Cycle::ZERO, Op::Write, 128);
        assert_eq!(w.start, Cycle::new(14)); // 8 service + 6 turnaround
        let w2 = bank.submit(Cycle::ZERO, Op::Write, 128);
        assert_eq!(w2.start, Cycle::new(22)); // no penalty, same direction
        assert_eq!(bank.stats().turnaround_cycles, 6);
    }

    #[test]
    fn refresh_steals_cycles() {
        let mut cfg = quiet(BankConfig::local_xdr());
        cfg.refresh_interval = 100;
        cfg.refresh_cycles = 10;
        let mut bank = XdrBank::new(cfg);
        // Fill up to the refresh boundary.
        for _ in 0..13 {
            bank.submit(Cycle::ZERO, Op::Read, 128);
        }
        // 13 * 8 = 104 > 100: the access crossing the boundary stalls.
        let a = bank.submit(Cycle::ZERO, Op::Read, 128);
        assert!(a.start >= Cycle::new(110));
        assert_eq!(bank.stats().refresh_cycles, 10);
    }

    #[test]
    fn fractional_rate_is_exact_long_run() {
        let mut bank = XdrBank::new(quiet(BankConfig::remote_xdr()));
        let n = 1000u64;
        let mut last = Cycle::ZERO;
        for _ in 0..n {
            last = bank.submit(Cycle::ZERO, Op::Read, 128).service_done;
        }
        // 128 B / (20/3 B per cycle) = 19.2 cycles per access.
        let total = last.as_u64();
        assert!(
            (total as f64 - 19.2 * n as f64).abs() < 2.0,
            "total={total}"
        );
    }

    #[test]
    fn backlog_horizon_backpressures() {
        let mut bank = XdrBank::new(quiet(BankConfig::local_xdr()));
        assert!(bank.can_accept(Cycle::ZERO));
        for _ in 0..40 {
            bank.submit(Cycle::ZERO, Op::Write, 128);
        }
        // 40 * 8 = 320 cycles of backlog > 256 horizon.
        assert!(!bank.can_accept(Cycle::ZERO));
        let t = bank.next_accept_time(Cycle::ZERO);
        assert_eq!(t, Cycle::new(320 - 256));
        assert!(bank.can_accept(t));
    }

    #[test]
    fn throttle_window_slows_the_pipe() {
        use cellsim_faults::{DerateWindow, Window};
        let mut bank = XdrBank::new(quiet(BankConfig::local_xdr()));
        bank.set_faults(
            BankFaults {
                throttle: vec![DerateWindow {
                    window: Window {
                        start: 0,
                        cycles: 100,
                    },
                    capacity_percent: 50,
                }],
                nack_ppm: 0,
            },
            0,
            0,
        );
        // 128 B at half of 16 B/cycle: 16 service cycles, not 8.
        let a = bank.submit(Cycle::ZERO, Op::Read, 128);
        assert_eq!(a.service_done, Cycle::new(16));
        // Outside the window the pipe is healthy again.
        let b = bank.submit(Cycle::new(200), Op::Read, 128);
        assert_eq!(b.service_cycles(), 8);
    }

    #[test]
    fn nack_stream_is_deterministic_per_bank() {
        let mut a = XdrBank::new(quiet(BankConfig::local_xdr()));
        let mut b = XdrBank::new(quiet(BankConfig::local_xdr()));
        let faults = BankFaults {
            throttle: Vec::new(),
            nack_ppm: 300_000,
        };
        a.set_faults(faults.clone(), 9, 0);
        b.set_faults(faults, 9, 0);
        let rolls_a: Vec<bool> = (0..64).map(|_| a.nack_roll()).collect();
        let rolls_b: Vec<bool> = (0..64).map(|_| b.nack_roll()).collect();
        assert_eq!(rolls_a, rolls_b);
        assert!(rolls_a.iter().any(|&r| r));
        // A healthy bank never NACKs.
        let mut healthy = XdrBank::new(quiet(BankConfig::local_xdr()));
        assert!((0..64).all(|_| !healthy.nack_roll()));
    }

    #[test]
    fn small_access_still_costs_a_cycle() {
        let mut bank = XdrBank::new(quiet(BankConfig::local_xdr()));
        let a = bank.submit(Cycle::ZERO, Op::Read, 4);
        assert!(a.service_done > a.start);
    }

    #[test]
    #[should_panic(expected = "zero-byte")]
    fn zero_bytes_rejected() {
        let mut bank = XdrBank::new(BankConfig::local_xdr());
        bank.submit(Cycle::ZERO, Op::Read, 0);
    }
}
