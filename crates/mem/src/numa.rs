//! NUMA placement of memory regions across the blade's two banks.

use crate::system::BankId;

/// Identifier of an allocated memory region (one per experiment buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

/// How regions are distributed over the two banks.
///
/// The paper's blade runs a NUMA-enabled Linux with 64 KB pages and both
/// banks reachable; its Figure 8 shows aggregate bandwidth exceeding a
/// single bank's peak once two or more SPEs stream, demonstrating that the
/// OS spread the independent per-SPE buffers over both banks. The policies
/// here let the experiments reproduce (and ablate) that spreading.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NumaPolicy {
    /// Everything on the local bank — a single-chip machine, and the
    /// ablation baseline.
    LocalOnly,
    /// Region *n* lands wholly on bank *n mod 2*: models first-touch
    /// spreading of independent buffers (the default, matching the paper).
    #[default]
    RoundRobinRegions,
    /// Pages alternate banks inside every region, `page_bytes` at a time:
    /// models `numactl --interleave`.
    InterleavePages {
        /// Interleaving granularity; the blade used 64 KB pages.
        page_bytes: u64,
    },
}

impl NumaPolicy {
    /// The bank holding byte `offset` of `region`.
    ///
    /// # Panics
    ///
    /// Panics if an interleaving granularity of zero was configured.
    pub fn bank_for(self, region: RegionId, offset: u64) -> BankId {
        match self {
            NumaPolicy::LocalOnly => BankId::Local,
            NumaPolicy::RoundRobinRegions => {
                if region.0.is_multiple_of(2) {
                    BankId::Local
                } else {
                    BankId::Remote
                }
            }
            NumaPolicy::InterleavePages { page_bytes } => {
                assert!(page_bytes > 0, "interleave granularity must be non-zero");
                if (offset / page_bytes).is_multiple_of(2) {
                    BankId::Local
                } else {
                    BankId::Remote
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_only_never_goes_remote() {
        for r in 0..8 {
            assert_eq!(
                NumaPolicy::LocalOnly.bank_for(RegionId(r), 12345),
                BankId::Local
            );
        }
    }

    #[test]
    fn round_robin_alternates_by_region() {
        let p = NumaPolicy::RoundRobinRegions;
        assert_eq!(p.bank_for(RegionId(0), 0), BankId::Local);
        assert_eq!(p.bank_for(RegionId(1), 0), BankId::Remote);
        assert_eq!(p.bank_for(RegionId(2), 1 << 30), BankId::Local);
    }

    #[test]
    fn interleave_alternates_by_page() {
        let p = NumaPolicy::InterleavePages { page_bytes: 65536 };
        assert_eq!(p.bank_for(RegionId(0), 0), BankId::Local);
        assert_eq!(p.bank_for(RegionId(0), 65535), BankId::Local);
        assert_eq!(p.bank_for(RegionId(0), 65536), BankId::Remote);
        assert_eq!(p.bank_for(RegionId(5), 3 * 65536), BankId::Remote);
    }

    #[test]
    #[should_panic(expected = "granularity")]
    fn zero_page_size_panics() {
        NumaPolicy::InterleavePages { page_bytes: 0 }.bank_for(RegionId(0), 0);
    }
}
