//! Chaos tests: the daemon and client under deliberately hostile
//! conditions — a killed-and-restarted daemon mid-batch, a peer that
//! wedges its reader, injected disk faults in the shared cache dir, and
//! a graceful drain. The invariant under every one of them: clients
//! that keep asking end up with figures byte-identical to a local run,
//! and the daemon never hangs or serves corrupt data.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use cellsim_core::exec::{RunSpec, SweepExecutor};
use cellsim_core::experiments::{figure12_with, figure_points, figure_specs, ExperimentConfig};
use cellsim_core::iofault::{self, IoFaultPlan};
use cellsim_core::CellSystem;
use cellsim_serve::protocol::encode_run_request;
use cellsim_serve::{
    Client, ClientError, ResilientClient, RetryPolicy, ServeHandle, ServeOptions, Server,
};

fn tiny_cfg() -> ExperimentConfig {
    ExperimentConfig {
        volume_per_spe: 32 << 10,
        dma_elem_sizes: vec![1024],
        placements: 2,
        seed: 0xCE11,
    }
}

fn tiny_specs(system: &CellSystem, figure: &str) -> Vec<RunSpec> {
    let cfg = tiny_cfg();
    let points = figure_points(&cfg, figure)
        .expect("valid config")
        .expect("fabric figure");
    figure_specs(system, &cfg, &points)
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cellsim-chaos-test-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

struct Daemon {
    addr: std::net::SocketAddr,
    handle: ServeHandle,
    thread: thread::JoinHandle<()>,
}

fn start_daemon(opts: &ServeOptions) -> Daemon {
    let server = Server::bind("127.0.0.1:0", opts).expect("bind");
    let addr = server.local_addr().expect("bound address");
    let handle = server.handle().expect("handle");
    let thread = thread::spawn(move || server.serve().expect("serve"));
    Daemon {
        addr,
        handle,
        thread,
    }
}

impl Daemon {
    fn stop(self) {
        self.handle.shutdown();
        let _ = self.thread.join();
    }
}

/// Figure 12 rendered from a purely local simulation — the ground truth
/// every chaos scenario's output must match byte for byte.
fn local_figure12() -> Vec<String> {
    let cfg = tiny_cfg();
    let system = CellSystem::blade();
    let exec = SweepExecutor::new(1);
    figure12_with(&exec, &system, &cfg)
        .expect("local render")
        .iter()
        .map(ToString::to_string)
        .collect()
}

/// Renders figure 12 from reports fetched through `client`, exactly as
/// `cellsim-client` does.
fn render_figure12_resilient(client: &mut ResilientClient, id: &str) -> Vec<String> {
    let cfg = tiny_cfg();
    let system = CellSystem::blade();
    let specs = tiny_specs(&system, "12");
    let outcome = client.run_batch(id, None, &specs).expect("batch");
    assert_eq!(outcome.failed, 0, "healthy runs must not fail");
    let exec = SweepExecutor::new(1);
    for (spec, result) in specs.into_iter().zip(outcome.results) {
        exec.preload(spec.key, result.expect("ok result"));
    }
    figure12_with(&exec, &system, &cfg)
        .expect("render")
        .iter()
        .map(ToString::to_string)
        .collect()
}

/// Kill the daemon while a batch may be in flight, restart it on a new
/// port over the same cache dir, and let the resilient client reconnect
/// and resume. Whatever the interleaving — killed before, during, or
/// after the batch — the rendered figure must be byte-identical to a
/// local run, because resumption re-requests only unanswered runs by
/// their content-addressed keys.
#[test]
fn killed_daemon_mid_batch_resumes_byte_identical_figures() {
    let cache = temp_dir("kill-restart");
    let opts = ServeOptions {
        jobs: 1,
        workers: 1,
        cache_dir: Some(cache.clone()),
        ..ServeOptions::default()
    };
    let first = start_daemon(&opts);
    let addr_cell = Arc::new(Mutex::new(first.addr.to_string()));

    let render = {
        let addr_cell = Arc::clone(&addr_cell);
        thread::spawn(move || {
            let source = move || addr_cell.lock().expect("addr cell").clone();
            let mut client = ResilientClient::new(
                source,
                RetryPolicy::new(Duration::from_millis(25), Duration::from_millis(250), 40, 1),
            )
            .with_read_timeout(Duration::from_secs(5));
            render_figure12_resilient(&mut client, "chaos-kill")
        })
    };

    // Give the batch a moment to get going, then pull the rug: sever
    // every connection and stop accepting, as a crashed process would.
    // The replacement comes up on a new port over the same cache dir
    // *before* the kill, so retries always have somewhere to land.
    thread::sleep(Duration::from_millis(30));
    let second = start_daemon(&opts);
    *addr_cell.lock().expect("addr cell") = second.addr.to_string();
    first.handle.kill();

    let rendered = render.join().expect("client thread");
    assert_eq!(rendered, local_figure12(), "resume must be bit-exact");

    let _ = first.thread.join();
    second.stop();
    let _ = std::fs::remove_dir_all(&cache);
}

/// A peer that submits a large batch and then never reads a byte must
/// be declared a slow consumer and disconnected — without wedging the
/// scheduler workers or other connections.
#[test]
fn a_wedged_reader_is_disconnected_while_other_clients_serve() {
    let daemon = start_daemon(&ServeOptions {
        jobs: 1,
        workers: 2,
        writer_queue: 64,
        write_timeout: Some(Duration::from_millis(200)),
        ..ServeOptions::default()
    });

    // The wedge: one spec duplicated many times — one simulation, a
    // flood of result lines (far past the socket buffers plus a 64-line
    // writer queue) that nobody ever drains.
    let system = CellSystem::blade();
    let spec = tiny_specs(&system, "12").remove(0);
    let flood: Vec<RunSpec> = (0..800).map(|_| spec.clone()).collect();
    let mut wedged = TcpStream::connect(daemon.addr).expect("connect");
    for round in 0..2 {
        wedged
            .write_all(
                encode_run_request(&format!("wedge-{round}"), None, &flood, false).as_bytes(),
            )
            .expect("send batch");
        wedged.write_all(b"\n").expect("send newline");
    }

    // A healthy client on another connection is unaffected.
    let mut client = Client::connect(daemon.addr).expect("connect healthy");
    let specs = tiny_specs(&system, "12");
    let outcome = client.run_batch("healthy", None, &specs).expect("batch");
    assert_eq!(outcome.failed, 0);
    assert_eq!(outcome.ok, outcome.results.len());

    // The daemon severs the wedged connection once its queue overflows:
    // reading (which we never did until now) must hit EOF/reset within
    // the deadline instead of hanging forever.
    wedged
        .set_read_timeout(Some(Duration::from_millis(250)))
        .expect("read timeout");
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut reader = BufReader::new(wedged);
    let mut severed = false;
    let mut line = String::new();
    while Instant::now() < deadline {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => {
                severed = true;
                break;
            }
            Ok(_) => {} // buffered lines drain first; keep going
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => {
                severed = true; // reset counts as severed
                break;
            }
        }
    }
    assert!(severed, "wedged connection must be disconnected");

    daemon.stop();
}

/// Injected disk faults scoped to the daemon's cache dir: stores fail
/// or tear, loads hiccup — and every run still succeeds with
/// byte-identical figures, because the disk tier is an accelerator the
/// verify-on-load path is allowed to distrust. Once the chaos lifts, a
/// fresh daemon over the same directory self-heals it.
#[test]
fn disk_chaos_in_the_cache_dir_never_corrupts_results() {
    let cache = temp_dir("enospc");
    let opts = ServeOptions {
        jobs: 1,
        workers: 1,
        cache_dir: Some(cache.clone()),
        ..ServeOptions::default()
    };

    let truth = local_figure12();
    {
        let _guard = IoFaultPlan {
            seed: 0xD15C,
            write_error_per_mille: 400,
            torn_write_per_mille: 300,
            read_error_per_mille: 200,
            rename_error_per_mille: 200,
            scope: Some(cache.clone()),
        }
        .install();

        let daemon = start_daemon(&opts);
        let mut client =
            ResilientClient::fixed(&daemon.addr.to_string(), RetryPolicy::with_defaults(3, 7));
        let rendered = render_figure12_resilient(&mut client, "chaos-disk");
        assert_eq!(rendered, truth, "disk chaos must not leak into figures");

        // Run it twice more so loads of whatever landed get exercised
        // under read-error fire too.
        let rendered = render_figure12_resilient(&mut client, "chaos-disk-2");
        assert_eq!(rendered, truth);
        daemon.stop();

        let stats = iofault::stats();
        assert!(
            stats.write_errors + stats.torn_writes + stats.read_errors + stats.rename_errors > 0,
            "the chaos plan must actually have fired: {stats:?}"
        );
    }

    // Chaos lifted: a fresh daemon over the same (possibly scarred)
    // directory discards anything torn and heals to a fully warm cache.
    let daemon = start_daemon(&opts);
    let mut client =
        ResilientClient::fixed(&daemon.addr.to_string(), RetryPolicy::with_defaults(3, 8));
    assert_eq!(render_figure12_resilient(&mut client, "healed"), truth);
    daemon.stop();
    let _ = std::fs::remove_dir_all(&cache);
}

/// The graceful drain path: `{"op":"drain"}` acks with queue/inflight
/// counts, later batches are refused with reason `draining`, the stats
/// snapshot says so, and the serve loop exits cleanly on its own once
/// in-flight work is done.
#[test]
fn drain_refuses_new_batches_and_exits_cleanly() {
    let daemon = start_daemon(&ServeOptions {
        jobs: 1,
        workers: 1,
        drain_grace: Duration::from_secs(10),
        ..ServeOptions::default()
    });
    let system = CellSystem::blade();
    let specs = tiny_specs(&system, "12");

    // Work accepted before the drain completes normally.
    let mut client = Client::connect(daemon.addr).expect("connect");
    let outcome = client.run_batch("pre-drain", None, &specs).expect("batch");
    assert_eq!(outcome.failed, 0);

    // Out-of-band-style drain over the wire.
    let stream = TcpStream::connect(daemon.addr).expect("connect drainer");
    let mut drainer = stream.try_clone().expect("clone");
    drainer.write_all(b"{\"op\":\"drain\"}\n").expect("send");
    let mut ack = String::new();
    BufReader::new(stream).read_line(&mut ack).expect("ack");
    assert!(ack.contains("\"op\":\"draining\""), "{ack}");

    // New work is now refused with a typed reason...
    let mut late = Client::connect(daemon.addr).expect("connect late");
    match late.run_batch("too-late", None, &specs) {
        Err(ClientError::Refused { reason, .. }) => assert_eq!(reason, "draining"),
        Err(other) => panic!("expected a draining refusal, got: {other}"),
        Ok(_) => panic!("a draining daemon must not accept new batches"),
    }
    // ...and the stats snapshot admits to draining.
    let stats = late.stats().expect("stats");
    assert!(stats.draining, "stats must carry the draining flag");

    // Idle + draining: the serve loop exits by itself — no shutdown()
    // call here, joining must succeed on its own.
    let Daemon { thread, .. } = daemon;
    thread.join().expect("serve thread exits after drain");
}
