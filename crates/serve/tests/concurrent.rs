//! End-to-end daemon tests: real sockets, concurrent clients, a shared
//! cache directory, and hostile input. Every test binds an ephemeral
//! port and shuts its daemon down, so the suite parallelizes cleanly.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use cellsim_core::diskcache::{key_fingerprint, report_to_json};
use cellsim_core::exec::{RunSpec, SweepExecutor, Workload};
use cellsim_core::experiments::{
    figure10_with, figure12_with, figure_points, figure_specs, workload_plan, ExperimentConfig,
};
use cellsim_core::tracestore::{Manifest, TraceStore, TRACE_FILE};
use cellsim_core::{CellSystem, FaultPlan, Placement, SyncPolicy};
use cellsim_serve::protocol::encode_run_request;
use cellsim_serve::{Client, ClientError, ServeHandle, ServeOptions, Server};

/// A reduced sweep: enough runs for the figures to have shape, small
/// enough that every test stays fast.
fn tiny_cfg() -> ExperimentConfig {
    ExperimentConfig {
        volume_per_spe: 32 << 10,
        dma_elem_sizes: vec![1024],
        placements: 2,
        seed: 0xCE11,
    }
}

fn tiny_specs(system: &CellSystem, figure: &str) -> Vec<RunSpec> {
    let cfg = tiny_cfg();
    let points = figure_points(&cfg, figure)
        .expect("valid config")
        .expect("fabric figure");
    figure_specs(system, &cfg, &points)
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cellsim-serve-test-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

struct Daemon {
    addr: std::net::SocketAddr,
    handle: ServeHandle,
    thread: thread::JoinHandle<()>,
}

fn start_daemon(opts: &ServeOptions) -> Daemon {
    let server = Server::bind("127.0.0.1:0", opts).expect("bind");
    let addr = server.local_addr().expect("bound address");
    let handle = server.handle().expect("handle");
    let thread = thread::spawn(move || server.serve().expect("serve"));
    Daemon {
        addr,
        handle,
        thread,
    }
}

impl Daemon {
    fn stop(self) {
        self.handle.shutdown();
        let _ = self.thread.join();
    }
}

/// Fetches a figure-12 batch from the daemon and renders the figures
/// from the replayed reports, exactly as `cellsim-client` does.
fn render_figure12_from(addr: std::net::SocketAddr) -> Vec<String> {
    let cfg = tiny_cfg();
    let system = CellSystem::blade();
    let specs = tiny_specs(&system, "12");
    let mut client = Client::connect(addr).expect("connect");
    let outcome = client.run_batch("fig12", None, &specs).expect("batch");
    assert_eq!(outcome.failed, 0, "healthy runs must not fail");
    let exec = SweepExecutor::new(1);
    for (spec, result) in specs.into_iter().zip(outcome.results) {
        exec.preload(spec.key, result.expect("ok result"));
    }
    figure12_with(&exec, &system, &cfg)
        .expect("render")
        .iter()
        .map(ToString::to_string)
        .collect()
}

#[test]
fn two_concurrent_clients_render_bit_identical_figures() {
    let cache = temp_dir("shared");
    let daemon = start_daemon(&ServeOptions {
        workers: 4,
        cache_dir: Some(cache.clone()),
        ..ServeOptions::default()
    });

    let cfg = tiny_cfg();
    let system = CellSystem::blade();
    let total = tiny_specs(&system, "12").len();
    let reference: Vec<String> = figure12_with(&SweepExecutor::new(1), &system, &cfg)
        .expect("local render")
        .iter()
        .map(ToString::to_string)
        .collect();

    let addr = daemon.addr;
    let a = thread::spawn(move || render_figure12_from(addr));
    let b = thread::spawn(move || render_figure12_from(addr));
    assert_eq!(a.join().expect("client a"), reference);
    assert_eq!(b.join().expect("client b"), reference);

    // 2×`total` runs were answered, but each distinct key simulated
    // exactly once: the duplicate copy was either deduped in flight or
    // served from the run cache — never simulated again.
    let mut client = Client::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.accepted, 2 * total as u64);
    assert_eq!(stats.completed, 2 * total as u64);
    assert_eq!(stats.cache_misses, total as u64, "stats: {stats:?}");
    assert_eq!(
        stats.cache_hits + stats.deduped,
        total as u64,
        "stats: {stats:?}"
    );
    let (entries, bytes) = stats.disk_entries.expect("cache dir attached");
    assert_eq!(entries, total as u64);
    assert!(bytes > 0);

    daemon.stop();
    let _ = std::fs::remove_dir_all(cache);
}

#[test]
fn duplicate_runs_in_one_batch_simulate_once() {
    let daemon = start_daemon(&ServeOptions {
        workers: 4,
        ..ServeOptions::default()
    });
    let system = CellSystem::blade();
    // Heavy enough that the duplicates are popped (and parked on the
    // in-flight simulation) long before the first copy completes.
    let workload = Workload {
        pattern: "cycle",
        spes: 8,
        volume: 4 << 20,
        elem: 4096,
        list: false,
        sync: SyncPolicy::AfterAll,
        params: 0,
    };
    let plan = workload_plan(&workload).expect("plannable");
    let spec = RunSpec::new(&system, workload, Placement::identity(), plan);
    let specs = vec![spec.clone(), spec.clone(), spec.clone(), spec];

    let mut client = Client::connect(daemon.addr).expect("connect");
    let outcome = client.run_batch("dup", None, &specs).expect("batch");
    assert_eq!(outcome.ok, 4);
    assert_eq!(outcome.failed, 0);
    let first = report_to_json(outcome.results[0].as_ref().expect("ok"));
    for result in &outcome.results {
        assert_eq!(report_to_json(result.as_ref().expect("ok")), first);
    }

    let stats = client.stats().expect("stats");
    assert_eq!(stats.cache_misses, 1, "stats: {stats:?}");
    assert_eq!(stats.cache_hits + stats.deduped, 3, "stats: {stats:?}");
    assert!(stats.deduped >= 1, "expected in-flight dedup: {stats:?}");
    daemon.stop();
}

#[test]
fn oversized_batches_are_rejected_whole() {
    let daemon = start_daemon(&ServeOptions {
        high_water: 2,
        workers: 1,
        ..ServeOptions::default()
    });
    let specs = tiny_specs(&CellSystem::blade(), "12");
    assert!(specs.len() >= 3, "need a batch larger than the mark");

    let mut client = Client::connect(daemon.addr).expect("connect");
    match client.run_batch("big", None, &specs[..3]) {
        Err(ClientError::Overloaded { high_water, .. }) => assert_eq!(high_water, 2),
        other => panic!(
            "expected an overload rejection, got {other:?}",
            other = other.err()
        ),
    }
    // Nothing from the rejected batch ran, and smaller batches still do.
    let outcome = client.run_batch("small", None, &specs[..2]).expect("batch");
    assert_eq!(outcome.ok, 2);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.accepted, 2);
    daemon.stop();
}

#[test]
fn disconnecting_mid_batch_leaves_the_daemon_serving() {
    let daemon = start_daemon(&ServeOptions::default());
    let system = CellSystem::blade();
    let specs = tiny_specs(&system, "12");

    // Fire a whole batch and hang up without reading a single byte.
    {
        let mut stream = TcpStream::connect(daemon.addr).expect("connect");
        let line = encode_run_request("orphan", None, &specs, false);
        stream.write_all(line.as_bytes()).expect("send");
        stream.write_all(b"\n").expect("send");
    }

    // A fresh client gets full service; the orphan's completed runs can
    // only have warmed the shared cache.
    let mut client = Client::connect(daemon.addr).expect("connect");
    let outcome = client.run_batch("after", None, &specs).expect("batch");
    assert_eq!(outcome.failed, 0);
    assert_eq!(outcome.ok, specs.len());
    daemon.stop();
}

#[test]
fn hostile_lines_get_typed_errors_without_killing_the_connection() {
    let daemon = start_daemon(&ServeOptions::default());
    let stream = TcpStream::connect(daemon.addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut exchange = |line: &str| -> String {
        writer.write_all(line.as_bytes()).expect("send");
        writer.write_all(b"\n").expect("send");
        let mut response = String::new();
        reader.read_line(&mut response).expect("recv");
        response
    };

    let truncated = exchange("{\"op\":\"run\",\"id\":\"x\",\"runs\":[");
    assert!(truncated.contains("\"op\":\"error\""), "{truncated}");
    assert!(truncated.contains("\"reason\":\"protocol\""), "{truncated}");

    let over_deep = exchange(&format!("{}{}", "[".repeat(200), "]".repeat(200)));
    assert!(over_deep.contains("\"reason\":\"protocol\""), "{over_deep}");
    assert!(over_deep.contains("deeper than"), "{over_deep}");

    let missing_runs = exchange("{\"op\":\"run\",\"id\":\"x\"}");
    assert!(
        missing_runs.contains("\"reason\":\"bad-request\""),
        "{missing_runs}"
    );

    // Three refused requests later, the same connection still serves.
    let stats = exchange("{\"op\":\"stats\"}");
    assert!(stats.contains("\"op\":\"stats\""), "{stats}");
    daemon.stop();
}

#[test]
fn over_long_lines_error_and_close() {
    let daemon = start_daemon(&ServeOptions {
        max_line: 1024,
        ..ServeOptions::default()
    });
    let mut stream = TcpStream::connect(daemon.addr).expect("connect");
    stream.write_all(&vec![b'a'; 4096]).expect("send");
    stream.write_all(b"\n").expect("send");
    let mut response = String::new();
    let mut reader = BufReader::new(stream);
    reader.read_line(&mut response).expect("recv");
    assert!(response.contains("\"op\":\"error\""), "{response}");
    assert!(response.contains("exceeds 1024 bytes"), "{response}");
    // The daemon hangs up after an unframeable line.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("drain");
    assert!(rest.is_empty(), "connection should be closed");
    daemon.stop();
}

#[test]
fn stats_carry_uptime_queue_peak_and_per_connection_tallies() {
    let daemon = start_daemon(&ServeOptions::default());
    let system = CellSystem::blade();
    let specs = tiny_specs(&system, "12");
    let n = specs.len() as u64;

    let mut client = Client::connect(daemon.addr).expect("connect");
    let outcome = client.run_batch("up", None, &specs).expect("batch");
    assert_eq!(outcome.failed, 0);

    // The typed client sees the new counters...
    let stats = client.stats().expect("stats");
    assert!(
        stats.queue_peak >= 1 && stats.queue_peak <= n,
        "peak {} out of range for a {n}-run batch",
        stats.queue_peak
    );
    assert!(stats.uptime_cycles > 0, "successful runs accumulate cycles");

    // ...and the raw wire line carries every schema key, including the
    // per-connection breakdown naming this connection's tallies.
    let mut stream = TcpStream::connect(daemon.addr).expect("connect");
    stream.write_all(b"{\"op\":\"stats\"}\n").expect("send");
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).expect("recv");
    for key in [
        "\"queue_peak\":",
        "\"uptime_ms\":",
        "\"uptime_cycles\":",
        "\"per_connection\":[",
        "\"run_dir\":null",
    ] {
        assert!(line.contains(key), "stats line lacks {key}: {line}");
    }
    assert!(
        line.contains(&format!(
            "{{\"conn\":0,\"accepted\":{n},\"completed\":{n}}}"
        )),
        "per-connection tally missing: {line}"
    );
    daemon.stop();
}

#[test]
fn stats_log_appends_periodic_and_final_snapshots() {
    let dir = temp_dir("stats-log");
    let log = dir.join("stats.jsonl");
    let daemon = start_daemon(&ServeOptions {
        stats_log: Some(log.clone()),
        stats_interval: std::time::Duration::from_millis(50),
        ..ServeOptions::default()
    });
    let system = CellSystem::blade();
    let specs = tiny_specs(&system, "12");
    let mut client = Client::connect(daemon.addr).expect("connect");
    let outcome = client.run_batch("logged", None, &specs).expect("batch");
    assert_eq!(outcome.failed, 0);
    thread::sleep(std::time::Duration::from_millis(150));
    drop(client);
    daemon.stop();

    let history = std::fs::read_to_string(&log).expect("stats log exists");
    let lines: Vec<&str> = history.lines().collect();
    assert!(
        lines.len() >= 2,
        "expected periodic plus final snapshots, got {}",
        lines.len()
    );
    for line in &lines {
        assert!(line.starts_with("{\"op\":\"stats\""), "{line}");
        assert!(line.contains("\"uptime_ms\":"), "{line}");
        assert!(line.contains("\"queue_peak\":"), "{line}");
    }
    // The final (shutdown) snapshot has seen the whole batch complete.
    let last = lines.last().expect("non-empty");
    assert!(
        last.contains(&format!("\"completed\":{}", specs.len())),
        "final snapshot stale: {last}"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn recorded_batches_persist_queryable_artifacts() {
    let run_dir = temp_dir("record");
    let daemon = start_daemon(&ServeOptions {
        run_dir: Some(run_dir.clone()),
        ..ServeOptions::default()
    });
    let system = CellSystem::blade();
    let specs = tiny_specs(&system, "12");

    let mut client = Client::connect(daemon.addr).expect("connect");
    let outcome = client
        .run_batch_recorded("rec", None, &specs, true)
        .expect("batch");
    assert_eq!(outcome.failed, 0);

    // Every distinct key of the batch left a complete, self-consistent
    // artifact: manifest metrics match the wire report, and the trace
    // store's conserved totals match the manifest.
    let mut distinct = std::collections::BTreeSet::new();
    for (spec, result) in specs.iter().zip(&outcome.results) {
        let report = result.as_ref().expect("ok result");
        if !distinct.insert(key_fingerprint(&spec.key)) {
            continue;
        }
        let entry = run_dir.join(format!("{:016x}", key_fingerprint(&spec.key)));
        let manifest = Manifest::load(&entry).expect("manifest parses");
        assert_eq!(manifest.packets, report.packets);
        assert_eq!(manifest.total_bytes, report.total_bytes);
        let store = TraceStore::open(&entry.join(TRACE_FILE)).expect("store opens");
        let totals = store.totals();
        assert_eq!(totals.delivered, report.packets);
        assert_eq!(totals.delivered_bytes, report.total_bytes);
    }
    assert!(!distinct.is_empty());
    daemon.stop();
    let _ = std::fs::remove_dir_all(run_dir);
}

#[test]
fn recording_without_a_run_dir_is_refused() {
    let daemon = start_daemon(&ServeOptions::default());
    let specs = tiny_specs(&CellSystem::blade(), "12");
    let mut client = Client::connect(daemon.addr).expect("connect");
    match client.run_batch_recorded("norec", None, &specs, true) {
        Err(ClientError::Refused { reason, detail }) => {
            assert_eq!(reason, "bad-request");
            assert!(detail.contains("--run-dir"), "{detail}");
        }
        other => panic!("expected refusal, got {other:?}", other = other.err()),
    }
    // The same connection still serves unrecorded batches.
    let outcome = client.run_batch("plain", None, &specs[..1]).expect("batch");
    assert_eq!(outcome.ok, 1);
    daemon.stop();
}

#[test]
fn faulted_batches_match_a_local_faulted_executor() {
    let plan = FaultPlan::parse(
        "{\"seed\":7,\"eib\":{\"derate\":[{\"start\":0,\"cycles\":100000,\
         \"capacity_percent\":50}]}}",
    )
    .expect("valid plan");
    let system = CellSystem::blade().with_faults(plan.clone());
    let specs = tiny_specs(&system, "10");

    let daemon = start_daemon(&ServeOptions::default());
    let mut client = Client::connect(daemon.addr).expect("connect");
    let outcome = client.run_batch("deg", Some(&plan), &specs).expect("batch");

    let local = SweepExecutor::new(1);
    let local_results = local.try_run(specs.clone());
    for (wire, local) in outcome.results.iter().zip(local_results) {
        let wire = wire.as_ref().expect("wire run succeeded");
        let local = local.expect("local run succeeded");
        assert_eq!(report_to_json(wire), report_to_json(&local));
    }

    // And the replayed reports render the same degraded figure as a
    // local faulted executor.
    let cfg = tiny_cfg();
    let replay = SweepExecutor::new(1);
    for (spec, result) in specs.iter().zip(&outcome.results) {
        replay.preload(spec.key.clone(), result.as_ref().expect("ok").clone());
    }
    let from_wire = figure10_with(&replay, &system, &cfg)
        .expect("render")
        .to_string();
    let from_local = figure10_with(&local, &system, &cfg)
        .expect("render")
        .to_string();
    assert_eq!(from_wire, from_local);
    daemon.stop();
}
