//! The daemon itself: TCP accept loop, per-connection reader/writer
//! threads, and the `stats` snapshot.
//!
//! Each connection gets a reader thread (this function) and a writer
//! thread draining an [`std::sync::mpsc`] channel; scheduler workers
//! push result lines into the same channel, so one stream carries
//! interleaved responses for every batch the connection has in flight,
//! each line tagged with its batch id. A client that disconnects
//! mid-stream just makes the channel's sends no-ops — its running
//! simulations still complete and warm the shared caches for everyone
//! else.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cellsim_core::exec::{SweepExecutor, DEFAULT_CACHE_CAPACITY};

use crate::framing::{LineRead, LineReader};
use crate::protocol::{self, Request, MAX_LINE_BYTES};
use crate::scheduler::{Batch, Job, Scheduler};

/// Daemon construction knobs; `Default` is a sensible single-host setup.
pub struct ServeOptions {
    /// Executor worker threads per simulation batch (`0` = all cores).
    pub jobs: usize,
    /// Scheduler worker threads — concurrent runs in flight (`0` = all
    /// cores). Each worker drives one run at a time through the shared
    /// executor.
    pub workers: usize,
    /// Persistent content-addressed cache directory, shared freely with
    /// concurrent daemons and `repro --cache-dir` invocations.
    pub cache_dir: Option<PathBuf>,
    /// In-memory report cache entry cap.
    pub cache_capacity: usize,
    /// Admission high-water mark: most queued (admitted, unstarted)
    /// runs before batches are rejected as overloaded.
    pub high_water: usize,
    /// Longest accepted request line in bytes.
    pub max_line: usize,
    /// Trace-store run directory: batches sent with `"record":true`
    /// persist one artifact per run here (same layout as
    /// `repro --run-dir`). `None` refuses recording batches.
    pub run_dir: Option<PathBuf>,
    /// Stats-history log: every `stats_interval`, one `stats` snapshot
    /// line (identical to the wire response) is appended here, plus a
    /// final snapshot at shutdown.
    pub stats_log: Option<PathBuf>,
    /// Interval between appended stats snapshots.
    pub stats_interval: Duration,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            jobs: 0,
            workers: 0,
            cache_dir: None,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            high_water: 4096,
            max_line: MAX_LINE_BYTES,
            run_dir: None,
            stats_log: None,
            stats_interval: Duration::from_secs(60),
        }
    }
}

/// A bound, not-yet-serving daemon. [`Server::serve`] blocks; grab a
/// [`Server::handle`] first to stop it from another thread.
pub struct Server {
    listener: TcpListener,
    scheduler: Arc<Scheduler>,
    workers: Vec<JoinHandle<()>>,
    connections: Arc<AtomicUsize>,
    next_conn: AtomicU64,
    stopping: Arc<AtomicBool>,
    max_line: usize,
    started: Instant,
    stats_log: Option<PathBuf>,
    stats_interval: Duration,
}

/// Remote control for a serving daemon.
#[derive(Clone)]
pub struct ServeHandle {
    addr: SocketAddr,
    stopping: Arc<AtomicBool>,
}

impl ServeHandle {
    /// Asks the accept loop to exit. Existing connections finish their
    /// in-flight runs; queued-but-unstarted runs are dropped.
    pub fn shutdown(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts the scheduler workers. The socket is listening when this
    /// returns; call [`Server::serve`] to start accepting.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from binding or from opening the cache
    /// directory.
    pub fn bind<A: ToSocketAddrs>(addr: A, opts: &ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let mut exec = SweepExecutor::with_cache_options(
            opts.jobs,
            opts.cache_capacity,
            opts.cache_dir.as_deref(),
        )?;
        if let Some(dir) = &opts.run_dir {
            exec.set_run_dir(dir)?;
        }
        let exec = Arc::new(exec);
        let scheduler = Arc::new(Scheduler::new(exec, opts.high_water));
        let workers = if opts.workers == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            opts.workers
        };
        let workers = scheduler.start(workers);
        Ok(Server {
            listener,
            scheduler,
            workers,
            connections: Arc::new(AtomicUsize::new(0)),
            next_conn: AtomicU64::new(0),
            stopping: Arc::new(AtomicBool::new(false)),
            max_line: opts.max_line,
            started: Instant::now(),
            stats_log: opts.stats_log.clone(),
            stats_interval: opts.stats_interval.max(Duration::from_millis(10)),
        })
    }

    /// The bound address (the ephemeral port after `:0`).
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from the socket.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop [`Server::serve`] from another thread.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from reading the bound address.
    pub fn handle(&self) -> std::io::Result<ServeHandle> {
        Ok(ServeHandle {
            addr: self.listener.local_addr()?,
            stopping: Arc::clone(&self.stopping),
        })
    }

    /// Accepts connections until [`ServeHandle::shutdown`], spawning a
    /// reader/writer thread pair per connection.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from `accept` (per-connection I/O errors
    /// only close that connection).
    pub fn serve(self) -> std::io::Result<()> {
        let stats_thread = self.stats_log.as_ref().map(|path| {
            let path = path.clone();
            let scheduler = Arc::clone(&self.scheduler);
            let connections = Arc::clone(&self.connections);
            let stopping = Arc::clone(&self.stopping);
            let interval = self.stats_interval;
            let started = self.started;
            std::thread::Builder::new()
                .name("cellsim-serve-stats".to_string())
                .spawn(move || {
                    stats_history(
                        &path,
                        &scheduler,
                        &connections,
                        &stopping,
                        interval,
                        started,
                    );
                })
                .expect("stats thread spawns")
        });
        for stream in self.listener.incoming() {
            if self.stopping.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let conn = self.next_conn.fetch_add(1, Ordering::Relaxed);
            let scheduler = Arc::clone(&self.scheduler);
            let connections = Arc::clone(&self.connections);
            let max_line = self.max_line;
            let started = self.started;
            self.connections.fetch_add(1, Ordering::Relaxed);
            let spawned = std::thread::Builder::new()
                .name(format!("cellsim-serve-conn-{conn}"))
                .spawn(move || {
                    serve_connection(&scheduler, &connections, conn, stream, max_line, started);
                    connections.fetch_sub(1, Ordering::Relaxed);
                });
            if spawned.is_err() {
                self.connections.fetch_sub(1, Ordering::Relaxed);
            }
        }
        self.stopping.store(true, Ordering::SeqCst);
        if let Some(thread) = stats_thread {
            let _ = thread.join();
        }
        self.scheduler.shutdown();
        for worker in self.workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Appends one `stats` snapshot line per interval (and a final one at
/// shutdown) to `path`. The sleep is chopped into 100 ms steps so the
/// thread notices shutdown promptly; an unwritable log is reported once
/// per failed append on stderr and never affects serving.
fn stats_history(
    path: &std::path::Path,
    scheduler: &Arc<Scheduler>,
    connections: &AtomicUsize,
    stopping: &AtomicBool,
    interval: Duration,
    started: Instant,
) {
    let append = |line: &str| {
        let written = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| writeln!(f, "{line}"));
        if let Err(e) = written {
            eprintln!("cellsim-serve: stats log {}: {e}", path.display());
        }
    };
    loop {
        let mut slept = Duration::ZERO;
        while slept < interval {
            if stopping.load(Ordering::SeqCst) {
                append(&stats_line(scheduler, connections, started));
                return;
            }
            let step = (interval - slept).min(Duration::from_millis(100));
            std::thread::sleep(step);
            slept += step;
        }
        append(&stats_line(scheduler, connections, started));
    }
}

/// The per-connection reader loop: frame, decode, dispatch.
fn serve_connection(
    scheduler: &Arc<Scheduler>,
    connections: &AtomicUsize,
    conn: u64,
    stream: TcpStream,
    max_line: usize,
    started: Instant,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = channel::<String>();
    let writer = std::thread::Builder::new()
        .name(format!("cellsim-serve-write-{conn}"))
        .spawn(move || {
            let mut out = write_half;
            for line in rx {
                if out
                    .write_all(line.as_bytes())
                    .and_then(|()| out.write_all(b"\n"))
                    .and_then(|()| out.flush())
                    .is_err()
                {
                    break;
                }
            }
        });
    let mut reader = LineReader::new(BufReader::new(stream), max_line);
    loop {
        match reader.read() {
            Err(_) | Ok(LineRead::Eof) => break,
            Ok(LineRead::TooLong) => {
                // An over-long line cannot be framed; answering anything
                // further would be guesswork. Error and hang up.
                let _ = tx.send(protocol::error_line(
                    None,
                    "protocol",
                    &format!("request line exceeds {max_line} bytes"),
                ));
                break;
            }
            Ok(LineRead::Line) => {}
        }
        let line = String::from_utf8_lossy(reader.line());
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match protocol::decode_request(line) {
            Err(refusal) => {
                let _ = tx.send(refusal.to_line());
            }
            Ok(Request::Stats) => {
                let _ = tx.send(stats_line(scheduler, connections, started));
            }
            Ok(Request::Run(batch)) => {
                submit_batch(scheduler, conn, &tx, batch);
            }
        }
    }
    // Drop only the reader's sender: batches still in flight hold their
    // own clones, so their remaining lines (and `done`) still go out.
    // The writer exits when the last clone is gone, or on its first
    // failed write after the peer vanished.
    drop(tx);
    let _ = writer.map(JoinHandle::join);
}

/// Wraps a decoded batch in delivery state and offers it for admission.
fn submit_batch(
    scheduler: &Arc<Scheduler>,
    conn: u64,
    tx: &Sender<String>,
    request: protocol::BatchRequest,
) {
    if request.record && scheduler.executor().run_dir().is_none() {
        let _ = tx.send(protocol::error_line(
            Some(&request.id),
            "bad-request",
            "batch requests recording but the daemon has no --run-dir",
        ));
        return;
    }
    let batch = Batch::new(
        request.id,
        tx.clone(),
        conn,
        request.record,
        request.specs.len(),
    );
    let jobs: Vec<Job> = request
        .specs
        .into_iter()
        .enumerate()
        .map(|(index, spec)| Job {
            spec,
            index,
            batch: Arc::clone(&batch),
        })
        .collect();
    if let Err(overloaded) = scheduler.submit(conn, &batch, jobs) {
        let _ = tx.send(protocol::reject_line(
            &batch.id,
            overloaded.queued,
            overloaded.high_water,
        ));
    }
}

/// The `stats` response: scheduler counters (including the queue's
/// high-water peak, uptime in wall milliseconds and simulated cycles,
/// and per-connection tallies), executor cache counters, run-dir
/// recording counters when attached, and (when a cache dir is
/// attached) both the process's disk-tier activity and a census of the
/// shared directory.
fn stats_line(scheduler: &Scheduler, connections: &AtomicUsize, started: Instant) -> String {
    let sched = scheduler.stats();
    let exec = scheduler.executor();
    let cache = exec.stats();
    let disk = match (exec.disk_stats(), exec.disk_dir_stats()) {
        (Some(activity), Some(dir)) => format!(
            "{{\"loaded\":{},\"stored\":{},\"discarded\":{},\
             \"entries\":{},\"bytes\":{},\"temp_files\":{}}}",
            activity.loaded,
            activity.stored,
            activity.discarded,
            dir.entries,
            dir.bytes,
            dir.temp_files
        ),
        _ => "null".to_string(),
    };
    let run_dir = match exec.run_dir() {
        Some(rd) => {
            let stats = rd.stats();
            format!(
                "{{\"written\":{},\"reused\":{},\"errors\":{}}}",
                stats.written, stats.reused, stats.errors
            )
        }
        None => "null".to_string(),
    };
    let per_connection: Vec<String> = sched
        .per_connection
        .iter()
        .map(|t| {
            format!(
                "{{\"conn\":{},\"accepted\":{},\"completed\":{}}}",
                t.conn, t.accepted, t.completed
            )
        })
        .collect();
    format!(
        "{{\"op\":\"stats\",\"connections\":{},\"queue_depth\":{},\
         \"high_water\":{},\"queue_peak\":{},\"inflight\":{},\"deduped\":{},\
         \"accepted\":{},\"completed\":{},\"rejected\":{},\
         \"uptime_ms\":{},\"uptime_cycles\":{},\
         \"cache\":{{\"hits\":{},\"misses\":{}}},\"disk\":{disk},\
         \"run_dir\":{run_dir},\"per_connection\":[{}]}}",
        connections.load(Ordering::Relaxed),
        sched.queue_depth,
        sched.high_water,
        sched.queue_peak,
        sched.inflight,
        sched.deduped,
        sched.accepted,
        sched.completed,
        sched.rejected,
        u128::min(started.elapsed().as_millis(), u128::from(u64::MAX)),
        sched.uptime_cycles,
        cache.hits,
        cache.misses,
        per_connection.join(",")
    )
}
