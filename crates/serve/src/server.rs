//! The daemon itself: TCP accept loop, per-connection reader/writer
//! threads, and the `stats` snapshot.
//!
//! Each connection gets a reader thread (this function) and a writer
//! thread draining a bounded [`ConnSink`] queue; scheduler workers push
//! result lines into the same queue, so one stream carries interleaved
//! responses for every batch the connection has in flight, each line
//! tagged with its batch id. A client that disconnects mid-stream just
//! makes the sink's sends no-ops — its running simulations still
//! complete and warm the shared caches for everyone else.
//!
//! Hardening (all opt-in via [`ServeOptions`]):
//!
//! * **Read deadlines + idle reaper** — with a `read_timeout`, a
//!   connection that has nothing in flight and sends nothing for a full
//!   deadline is reaped; one that is merely waiting on results keeps
//!   its socket as long as batches are unfinished (framing survives
//!   the deadline expiry mid-line — see [`LineReader`]).
//! * **Bounded writers, typed slow-consumer disconnect** — a peer that
//!   stops reading overflows its bounded response queue; the writer
//!   sends one final `slow-consumer` error line (best effort) and
//!   severs the socket, instead of buffering without limit or wedging
//!   the shared scheduler workers.
//! * **Per-run watchdog** — `run_timeout` converts a runaway
//!   simulation into a typed `timeout` failure on the wire
//!   (see [`Scheduler`]).
//! * **Graceful drain** — [`ServeHandle::drain`] (SIGTERM in the
//!   binary) or an in-band `{"op":"drain"}` flips the daemon to
//!   reject-new/finish-in-flight; once idle (or after `drain_grace`)
//!   the accept loop exits cleanly, appending a final stats snapshot.

use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cellsim_core::exec::{SweepExecutor, DEFAULT_CACHE_CAPACITY};

use crate::framing::{LineRead, LineReader};
use crate::protocol::{self, Request, MAX_LINE_BYTES};
use crate::scheduler::{Batch, ConnSink, Job, Scheduler, SubmitError};

/// Daemon construction knobs; `Default` is a sensible single-host setup.
pub struct ServeOptions {
    /// Executor worker threads per simulation batch (`0` = all cores).
    pub jobs: usize,
    /// Scheduler worker threads — concurrent runs in flight (`0` = all
    /// cores). Each worker drives one run at a time through the shared
    /// executor.
    pub workers: usize,
    /// Persistent content-addressed cache directory, shared freely with
    /// concurrent daemons and `repro --cache-dir` invocations.
    pub cache_dir: Option<PathBuf>,
    /// In-memory report cache entry cap.
    pub cache_capacity: usize,
    /// Admission high-water mark: most queued (admitted, unstarted)
    /// runs before batches are rejected as overloaded.
    pub high_water: usize,
    /// Longest accepted request line in bytes.
    pub max_line: usize,
    /// Trace-store run directory: batches sent with `"record":true`
    /// persist one artifact per run here (same layout as
    /// `repro --run-dir`). `None` refuses recording batches.
    pub run_dir: Option<PathBuf>,
    /// Stats-history log: every `stats_interval`, one `stats` snapshot
    /// line (identical to the wire response) is appended here, plus a
    /// final snapshot at shutdown.
    pub stats_log: Option<PathBuf>,
    /// Interval between appended stats snapshots.
    pub stats_interval: Duration,
    /// Socket read deadline. A connection with batches in flight just
    /// keeps waiting across expiries; one with nothing in flight is
    /// reaped as idle. `None` waits forever.
    pub read_timeout: Option<Duration>,
    /// Socket write deadline for the connection writer; a single write
    /// blocked this long marks the peer a slow consumer. `None` blocks
    /// indefinitely (the bounded queue still protects the workers).
    pub write_timeout: Option<Duration>,
    /// Per-run wall-clock watchdog: a simulation outliving this is
    /// answered as a typed `timeout` failure. `None` trusts every run.
    pub run_timeout: Option<Duration>,
    /// How long a draining daemon waits for in-flight work before
    /// exiting anyway.
    pub drain_grace: Duration,
    /// Most response lines queued per connection before the peer is
    /// declared a slow consumer.
    pub writer_queue: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            jobs: 0,
            workers: 0,
            cache_dir: None,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            high_water: 4096,
            max_line: MAX_LINE_BYTES,
            run_dir: None,
            stats_log: None,
            stats_interval: Duration::from_secs(60),
            read_timeout: None,
            write_timeout: None,
            run_timeout: None,
            drain_grace: Duration::from_secs(30),
            writer_queue: 1024,
        }
    }
}

/// Live sockets by connection id, so [`ServeHandle::kill`] can sever
/// every conversation at once (the crash-test lever).
type ConnRegistry = Arc<Mutex<HashMap<u64, TcpStream>>>;

/// A bound, not-yet-serving daemon. [`Server::serve`] blocks; grab a
/// [`Server::handle`] first to stop it from another thread.
pub struct Server {
    listener: TcpListener,
    scheduler: Arc<Scheduler>,
    workers: Vec<JoinHandle<()>>,
    connections: Arc<AtomicUsize>,
    conns: ConnRegistry,
    next_conn: AtomicU64,
    stopping: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    max_line: usize,
    started: Instant,
    stats_log: Option<PathBuf>,
    stats_interval: Duration,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    drain_grace: Duration,
    writer_queue: usize,
}

/// Remote control for a serving daemon.
#[derive(Clone)]
pub struct ServeHandle {
    addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    scheduler: Arc<Scheduler>,
    conns: ConnRegistry,
}

impl ServeHandle {
    /// Asks the accept loop to exit. Existing connections finish their
    /// in-flight runs; queued-but-unstarted runs get a typed
    /// `shutting-down` error.
    pub fn shutdown(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }

    /// Begins a graceful drain: new batches are refused with reason
    /// `draining`, admitted work runs to completion, and the serve loop
    /// exits once idle (or when the drain grace expires). The wire twin
    /// is `{"op":"drain"}`; the binary maps SIGTERM here.
    pub fn drain(&self) {
        self.scheduler.drain();
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Kills the daemon the unceremonious way: stops accepting and
    /// severs every live connection mid-sentence. In-process stand-in
    /// for `kill -9` in crash-recovery tests — clients see a dropped
    /// socket, exactly as if the process had died.
    pub fn kill(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        for stream in self
            .conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
        {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts the scheduler workers. The socket is listening when this
    /// returns; call [`Server::serve`] to start accepting.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from binding or from opening the cache
    /// directory.
    pub fn bind<A: ToSocketAddrs>(addr: A, opts: &ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let mut exec = SweepExecutor::with_cache_options(
            opts.jobs,
            opts.cache_capacity,
            opts.cache_dir.as_deref(),
        )?;
        if let Some(dir) = &opts.run_dir {
            exec.set_run_dir(dir)?;
        }
        let exec = Arc::new(exec);
        let scheduler = Arc::new(Scheduler::new(exec, opts.high_water, opts.run_timeout));
        let workers = if opts.workers == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            opts.workers
        };
        let workers = scheduler.start(workers);
        Ok(Server {
            listener,
            scheduler,
            workers,
            connections: Arc::new(AtomicUsize::new(0)),
            conns: Arc::new(Mutex::new(HashMap::new())),
            next_conn: AtomicU64::new(0),
            stopping: Arc::new(AtomicBool::new(false)),
            draining: Arc::new(AtomicBool::new(false)),
            max_line: opts.max_line,
            started: Instant::now(),
            stats_log: opts.stats_log.clone(),
            stats_interval: opts.stats_interval.max(Duration::from_millis(10)),
            read_timeout: opts.read_timeout,
            write_timeout: opts.write_timeout,
            drain_grace: opts.drain_grace,
            writer_queue: opts.writer_queue.max(1),
        })
    }

    /// The bound address (the ephemeral port after `:0`).
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from the socket.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop, drain, or kill [`Server::serve`] from
    /// another thread.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from reading the bound address.
    pub fn handle(&self) -> std::io::Result<ServeHandle> {
        Ok(ServeHandle {
            addr: self.listener.local_addr()?,
            stopping: Arc::clone(&self.stopping),
            draining: Arc::clone(&self.draining),
            scheduler: Arc::clone(&self.scheduler),
            conns: Arc::clone(&self.conns),
        })
    }

    /// Accepts connections until [`ServeHandle::shutdown`] (or a drain
    /// completes), spawning a reader/writer thread pair per connection.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from `accept` (per-connection I/O errors
    /// only close that connection).
    pub fn serve(self) -> std::io::Result<()> {
        // A stats thread that fails to spawn costs the history log, not
        // the daemon: log once and keep serving.
        let stats_thread = self.stats_log.as_ref().and_then(|path| {
            let path = path.clone();
            let scheduler = Arc::clone(&self.scheduler);
            let connections = Arc::clone(&self.connections);
            let stopping = Arc::clone(&self.stopping);
            let interval = self.stats_interval;
            let started = self.started;
            std::thread::Builder::new()
                .name("cellsim-serve-stats".to_string())
                .spawn(move || {
                    stats_history(
                        &path,
                        &scheduler,
                        &connections,
                        &stopping,
                        interval,
                        started,
                    );
                })
                .map_err(|e| eprintln!("cellsim-serve: could not spawn stats thread: {e}"))
                .ok()
        });
        let drain_monitor = self.spawn_drain_monitor();
        for stream in self.listener.incoming() {
            if self.stopping.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let conn = self.next_conn.fetch_add(1, Ordering::Relaxed);
            if let Ok(clone) = stream.try_clone() {
                self.conns
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .insert(conn, clone);
            }
            let ctx = ConnContext {
                scheduler: Arc::clone(&self.scheduler),
                connections: Arc::clone(&self.connections),
                draining: Arc::clone(&self.draining),
                conn,
                max_line: self.max_line,
                started: self.started,
                read_timeout: self.read_timeout,
                write_timeout: self.write_timeout,
                writer_queue: self.writer_queue,
            };
            let conns = Arc::clone(&self.conns);
            self.connections.fetch_add(1, Ordering::Relaxed);
            let spawned = std::thread::Builder::new()
                .name(format!("cellsim-serve-conn-{conn}"))
                .spawn(move || {
                    serve_connection(&ctx, stream);
                    ctx.connections.fetch_sub(1, Ordering::Relaxed);
                    conns
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .remove(&conn);
                });
            if spawned.is_err() {
                self.connections.fetch_sub(1, Ordering::Relaxed);
                self.conns
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .remove(&conn);
            }
        }
        self.stopping.store(true, Ordering::SeqCst);
        if let Some(thread) = stats_thread {
            let _ = thread.join();
        }
        self.scheduler.shutdown();
        for worker in self.workers {
            let _ = worker.join();
        }
        if let Some(monitor) = drain_monitor {
            let _ = monitor.join();
        }
        Ok(())
    }

    /// Watches for a drain request and, once the scheduler has gone
    /// idle (or the grace expired), stops the accept loop. A short
    /// settle pause lets final `done` lines flush through the writer
    /// queues before the process is free to exit.
    fn spawn_drain_monitor(&self) -> Option<JoinHandle<()>> {
        let handle = self.handle().ok()?;
        let scheduler = Arc::clone(&self.scheduler);
        let stopping = Arc::clone(&self.stopping);
        let draining = Arc::clone(&self.draining);
        let grace = self.drain_grace;
        std::thread::Builder::new()
            .name("cellsim-serve-drain".to_string())
            .spawn(move || {
                let poll = Duration::from_millis(25);
                while !draining.load(Ordering::SeqCst) {
                    if stopping.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(poll);
                }
                let deadline = Instant::now() + grace;
                while !scheduler.is_idle() && Instant::now() < deadline {
                    if stopping.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(poll);
                }
                std::thread::sleep(Duration::from_millis(150));
                handle.shutdown();
            })
            .ok()
    }
}

/// Appends one `stats` snapshot line per interval (and a final one at
/// shutdown) to `path`. The sleep is chopped into 100 ms steps so the
/// thread notices shutdown promptly; an unwritable log is reported once
/// per failed append on stderr and never affects serving. Appends go
/// through the injectable-I/O seam, so disk chaos tests cover the log
/// too.
fn stats_history(
    path: &std::path::Path,
    scheduler: &Arc<Scheduler>,
    connections: &AtomicUsize,
    stopping: &AtomicBool,
    interval: Duration,
    started: Instant,
) {
    let append = |line: &str| {
        if let Err(e) = cellsim_core::iofault::append_line(path, line) {
            eprintln!("cellsim-serve: stats log {}: {e}", path.display());
        }
    };
    loop {
        let mut slept = Duration::ZERO;
        while slept < interval {
            if stopping.load(Ordering::SeqCst) {
                append(&stats_line(scheduler, connections, started));
                return;
            }
            let step = (interval - slept).min(Duration::from_millis(100));
            std::thread::sleep(step);
            slept += step;
        }
        append(&stats_line(scheduler, connections, started));
    }
}

/// Everything a connection's reader needs, bundled.
struct ConnContext {
    scheduler: Arc<Scheduler>,
    connections: Arc<AtomicUsize>,
    draining: Arc<AtomicBool>,
    conn: u64,
    max_line: usize,
    started: Instant,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    writer_queue: usize,
}

/// The per-connection reader loop: frame, decode, dispatch.
fn serve_connection(ctx: &ConnContext, stream: TcpStream) {
    let _ = stream.set_read_timeout(ctx.read_timeout);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let _ = write_half.set_write_timeout(ctx.write_timeout);
    let (sink, rx) = ConnSink::bounded(ctx.writer_queue);
    let monitor = sink.monitor();
    let writer = std::thread::Builder::new()
        .name(format!("cellsim-serve-write-{conn}", conn = ctx.conn))
        .spawn(move || {
            let mut out = write_half;
            loop {
                if monitor.is_dead() {
                    break;
                }
                // The timeout bounds how long a declared-dead sink goes
                // unnoticed while the queue is empty.
                let line = match rx.recv_timeout(Duration::from_millis(50)) {
                    Ok(line) => line,
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
                    Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
                };
                if out
                    .write_all(line.as_bytes())
                    .and_then(|()| out.write_all(b"\n"))
                    .and_then(|()| out.flush())
                    .is_err()
                {
                    monitor.mark_dead();
                    break;
                }
            }
            // A dead sink means the peer earned a disconnect: best-effort
            // typed goodbye, then sever both directions so the blocked
            // reader thread wakes too.
            if monitor.is_dead() {
                if let Some(words) = monitor.take_last_words() {
                    let _ = out
                        .write_all(words.as_bytes())
                        .and_then(|()| out.write_all(b"\n"));
                }
                let _ = out.shutdown(Shutdown::Both);
            }
        });
    // The idle reaper's evidence: how many of this connection's batches
    // are still owed lines. Shared with every Batch submitted here.
    let active = Arc::new(AtomicUsize::new(0));
    let mut reader = LineReader::new(BufReader::new(stream), ctx.max_line);
    loop {
        if sink.is_dead() {
            break;
        }
        match reader.read() {
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Read deadline expired. Waiting on results is fine;
                // idle with nothing in flight is reaped.
                if active.load(Ordering::SeqCst) == 0 {
                    sink.send(protocol::error_line(
                        None,
                        "idle-timeout",
                        "no requests and nothing in flight within the read deadline",
                    ));
                    break;
                }
                continue;
            }
            Err(_) | Ok(LineRead::Eof) => break,
            Ok(LineRead::TooLong) => {
                // An over-long line cannot be framed; answering anything
                // further would be guesswork. Error and hang up.
                sink.send(protocol::error_line(
                    None,
                    "protocol",
                    &format!("request line exceeds {} bytes", ctx.max_line),
                ));
                break;
            }
            Ok(LineRead::Line) => {}
        }
        let line = String::from_utf8_lossy(reader.line());
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match protocol::decode_request(line) {
            Err(refusal) => {
                sink.send(refusal.to_line());
            }
            Ok(Request::Stats) => {
                sink.send(stats_line(&ctx.scheduler, &ctx.connections, ctx.started));
            }
            Ok(Request::Drain) => {
                ctx.scheduler.drain();
                ctx.draining.store(true, Ordering::SeqCst);
                let stats = ctx.scheduler.stats();
                sink.send(protocol::draining_line(stats.queue_depth, stats.inflight));
            }
            Ok(Request::Run(batch)) => {
                submit_batch(&ctx.scheduler, ctx.conn, &sink, &active, batch);
            }
        }
    }
    // Drop only the reader's sink: batches still in flight hold their
    // own clones, so their remaining lines (and `done`) still go out.
    // The writer exits when the last clone is gone, or on its first
    // failed write after the peer vanished.
    drop(sink);
    let _ = writer.map(JoinHandle::join);
}

/// Wraps a decoded batch in delivery state and offers it for admission.
fn submit_batch(
    scheduler: &Arc<Scheduler>,
    conn: u64,
    sink: &ConnSink,
    active: &Arc<AtomicUsize>,
    request: protocol::BatchRequest,
) {
    if request.record && scheduler.executor().run_dir().is_none() {
        sink.send(protocol::error_line(
            Some(&request.id),
            "bad-request",
            "batch requests recording but the daemon has no --run-dir",
        ));
        return;
    }
    let batch = Batch::new(
        request.id,
        sink.clone(),
        conn,
        request.record,
        request.specs.len(),
        Arc::clone(active),
    );
    let jobs: Vec<Job> = request
        .specs
        .into_iter()
        .enumerate()
        .map(|(index, spec)| Job {
            spec,
            index,
            batch: Arc::clone(&batch),
        })
        .collect();
    match scheduler.submit(conn, &batch, jobs) {
        Ok(()) => {}
        Err(SubmitError::Overloaded(overloaded)) => {
            sink.send(protocol::reject_line(
                &batch.id,
                overloaded.queued,
                overloaded.high_water,
            ));
        }
        Err(SubmitError::Draining) => {
            sink.send(protocol::drain_reject_line(&batch.id));
        }
    }
}

/// The `stats` response: scheduler counters (including the queue's
/// high-water peak, uptime in wall milliseconds and simulated cycles,
/// watchdog timeouts, the draining flag, and per-connection tallies),
/// executor cache counters, run-dir recording counters when attached,
/// and (when a cache dir is attached) both the process's disk-tier
/// activity and a census of the shared directory.
fn stats_line(scheduler: &Scheduler, connections: &AtomicUsize, started: Instant) -> String {
    let sched = scheduler.stats();
    let exec = scheduler.executor();
    let cache = exec.stats();
    let disk = match (exec.disk_stats(), exec.disk_dir_stats()) {
        (Some(activity), Some(dir)) => format!(
            "{{\"loaded\":{},\"stored\":{},\"discarded\":{},\
             \"entries\":{},\"bytes\":{},\"temp_files\":{}}}",
            activity.loaded,
            activity.stored,
            activity.discarded,
            dir.entries,
            dir.bytes,
            dir.temp_files
        ),
        _ => "null".to_string(),
    };
    let run_dir = match exec.run_dir() {
        Some(rd) => {
            let stats = rd.stats();
            format!(
                "{{\"written\":{},\"reused\":{},\"errors\":{}}}",
                stats.written, stats.reused, stats.errors
            )
        }
        None => "null".to_string(),
    };
    let per_connection: Vec<String> = sched
        .per_connection
        .iter()
        .map(|t| {
            format!(
                "{{\"conn\":{},\"accepted\":{},\"completed\":{}}}",
                t.conn, t.accepted, t.completed
            )
        })
        .collect();
    format!(
        "{{\"op\":\"stats\",\"connections\":{},\"queue_depth\":{},\
         \"high_water\":{},\"queue_peak\":{},\"inflight\":{},\"deduped\":{},\
         \"accepted\":{},\"completed\":{},\"rejected\":{},\
         \"timeouts\":{},\"draining\":{},\
         \"uptime_ms\":{},\"uptime_cycles\":{},\
         \"cache\":{{\"hits\":{},\"misses\":{}}},\"disk\":{disk},\
         \"run_dir\":{run_dir},\"per_connection\":[{}]}}",
        connections.load(Ordering::Relaxed),
        sched.queue_depth,
        sched.high_water,
        sched.queue_peak,
        sched.inflight,
        sched.deduped,
        sched.accepted,
        sched.completed,
        sched.rejected,
        sched.timeouts,
        sched.draining,
        u128::min(started.elapsed().as_millis(), u128::from(u64::MAX)),
        sched.uptime_cycles,
        cache.hits,
        cache.misses,
        per_connection.join(",")
    )
}
