//! The `cellsim-serve` wire protocol: one JSON object per line, both
//! directions, over a plain TCP stream.
//!
//! # Requests
//!
//! ```text
//! {"op":"stats"}
//! {"op":"drain"}
//! {"op":"run","id":"<batch id>","faults":{<FaultPlan JSON>},"record":true,"runs":[<run>...]}
//! ```
//!
//! `drain` is the wire twin of SIGTERM: the daemon finishes what it
//! already accepted, rejects new batches with reason `draining`, and
//! exits once idle (or when its drain grace expires). The ack is a
//! `{"op":"draining","queued":Q,"inflight":M}` line.
//!
//! The optional `record` flag (default `false`) asks the daemon to
//! persist a trace-store artifact for every run of the batch under its
//! `--run-dir`; a daemon started without one refuses such batches with
//! a `bad-request` error before anything is enqueued.
//!
//! Each run names one simulation point explicitly — the daemon never
//! invents placements, so a batch replays bit-identically anywhere:
//!
//! ```text
//! {"pattern":"couples","spes":2,"volume":262144,"elem":128,
//!  "list":false,"sync":"all","placement":[3,5,0,1,2,4,6,7]}
//! ```
//!
//! `sync` is `"all"` ([`SyncPolicy::AfterAll`]) or `{"every":N}`
//! ([`SyncPolicy::Every`]). `placement` is the full logical→physical
//! permutation of the 8 SPEs. The optional `faults` plan uses the same
//! schema as `repro --faults` and applies to every run of the batch
//! (the run keys pick up its fingerprint, so degraded and healthy runs
//! never share a cache entry).
//!
//! # Responses
//!
//! A `run` batch is answered by `accepted` (or `reject`), then one
//! `result`/`failed` line per run *as each completes* — indices refer
//! to the request's `runs` array and may arrive in any order — then
//! exactly one `done`:
//!
//! ```text
//! {"op":"accepted","id":"b1","runs":9}
//! {"op":"result","id":"b1","index":4,"key":"<16-hex run-key fingerprint>","report":{...}}
//! {"op":"failed","id":"b1","index":2,"key":"...","kind":"stall","run":"pattern=...","diagnosis":{...}}
//! {"op":"done","id":"b1","ok":8,"failed":1}
//! {"op":"reject","id":"b1","reason":"overloaded","queued":128,"high_water":128}
//! {"op":"error","reason":"protocol","detail":"invalid JSON: ..."}
//! ```
//!
//! `report` is the canonical bit-exact report JSON shared with the disk
//! cache ([`report_to_json`]): floats travel as IEEE-754 bit patterns,
//! so a replayed report compares equal to a locally simulated one.
//! `failed` reuses the typed [`RunError`] taxonomy: stalls carry the
//! full [`StallDiagnosis`](cellsim_core::StallDiagnosis) JSON, panics a
//! `message` string, watchdog timeouts a `limit_ms` budget. `error`
//! lines never close the connection (the daemon keeps serving after a
//! malformed line); an over-long line — which cannot be framed — does,
//! as do a slow consumer overflowing its bounded writer queue (after a
//! best-effort `{"op":"error","reason":"slow-consumer",...}` line) and
//! daemon shutdown (after a `reason":"shutting-down"` error per batch
//! still owed runs).

use cellsim_core::diskcache::{key_fingerprint, report_to_json};
use cellsim_core::exec::{RunError, RunKey, RunSpec, Workload};
use cellsim_core::experiments::{canonical_pattern, workload_plan};
use cellsim_core::json::{self, JsonValue};
use cellsim_core::{CellSystem, FabricReport, FaultPlan, Placement, SyncPolicy};

/// Longest accepted request/response line, newline included. Frames a
/// full-figure batch or a streamed report with two orders of magnitude
/// to spare, while bounding what one connection can make the daemon
/// buffer.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Most runs one batch may carry. Large enough for every figure of the
/// paper protocol in a single batch; small enough that admission
/// control reasons about batches, not gigabytes.
pub const MAX_BATCH_RUNS: usize = 4096;

/// Longest accepted batch id, in bytes.
pub const MAX_ID_BYTES: usize = 256;

/// A decoded request line.
pub enum Request {
    /// `{"op":"run",...}` — a batch of simulation points.
    Run(BatchRequest),
    /// `{"op":"stats"}` — a snapshot of daemon counters.
    Stats,
    /// `{"op":"drain"}` — finish in-flight work, refuse new batches,
    /// exit cleanly (the wire twin of SIGTERM).
    Drain,
}

/// A validated `run` request: every spec is simulatable as-is.
pub struct BatchRequest {
    /// Client-chosen id, echoed on every response line of the batch.
    pub id: String,
    /// The decoded specs, in request order.
    pub specs: Vec<RunSpec>,
    /// Whether the batch asked for trace-store artifacts (`"record"`).
    pub record: bool,
}

/// Why a request line was refused. `reason` is the wire taxonomy:
/// `"protocol"` for lines that are not a well-formed request at all,
/// `"bad-request"` for well-formed requests naming an impossible run.
pub struct ProtocolError {
    /// `"protocol"` or `"bad-request"`.
    pub reason: &'static str,
    /// The batch id, when the line got far enough to name one.
    pub id: Option<String>,
    /// Human-readable cause, naming the offending run index if any.
    pub detail: String,
}

impl ProtocolError {
    fn protocol(detail: String) -> ProtocolError {
        ProtocolError {
            reason: "protocol",
            id: None,
            detail,
        }
    }

    fn bad_request(id: &str, detail: String) -> ProtocolError {
        ProtocolError {
            reason: "bad-request",
            id: Some(id.to_string()),
            detail,
        }
    }

    /// The `error` response line reporting this refusal.
    #[must_use]
    pub fn to_line(&self) -> String {
        error_line(self.id.as_deref(), self.reason, &self.detail)
    }
}

/// Decodes one request line. The parser is the depth-capped in-repo
/// JSON module, so an adversarially nested payload comes back as a
/// typed error instead of a stack overflow.
///
/// # Errors
///
/// [`ProtocolError`] describing the first problem found; the caller
/// answers with [`ProtocolError::to_line`] and keeps the connection.
pub fn decode_request(line: &str) -> Result<Request, ProtocolError> {
    let v = json::parse(line).map_err(|e| ProtocolError::protocol(format!("invalid JSON: {e}")))?;
    let op = v
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ProtocolError::protocol("missing string field 'op'".to_string()))?;
    match op {
        "stats" => Ok(Request::Stats),
        "drain" => Ok(Request::Drain),
        "run" => decode_run_request(&v).map(Request::Run),
        other => Err(ProtocolError::protocol(format!(
            "unknown op '{other}' (expected 'run', 'stats' or 'drain')"
        ))),
    }
}

fn decode_run_request(v: &JsonValue) -> Result<BatchRequest, ProtocolError> {
    let id = v
        .get("id")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ProtocolError::protocol("run request needs a string 'id'".to_string()))?;
    if id.len() > MAX_ID_BYTES {
        return Err(ProtocolError::protocol(format!(
            "batch id longer than {MAX_ID_BYTES} bytes"
        )));
    }
    let id = id.to_string();
    let faults = match v.get("faults") {
        None => None,
        // Round-trip the subtree through the canonical writer so
        // FaultPlan::parse sees exactly the JSON it validates for files.
        Some(sub) => Some(
            FaultPlan::parse(&sub.to_json_string())
                .map_err(|e| ProtocolError::bad_request(&id, format!("faults: {e}")))?,
        ),
    };
    let system = match faults {
        Some(plan) => CellSystem::blade().with_faults(plan),
        None => CellSystem::blade(),
    };
    let fused = system
        .faults()
        .map_or(0, cellsim_faults::FaultPlan::fused_mask);
    let record = match v.get("record") {
        Some(JsonValue::Bool(b)) => *b,
        None => false,
        Some(_) => {
            return Err(ProtocolError::bad_request(
                &id,
                "field 'record' must be a boolean".to_string(),
            ))
        }
    };
    let runs = v
        .get("runs")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| ProtocolError::bad_request(&id, "missing array field 'runs'".to_string()))?;
    if runs.len() > MAX_BATCH_RUNS {
        return Err(ProtocolError::bad_request(
            &id,
            format!(
                "{} runs exceed the {MAX_BATCH_RUNS}-run batch limit",
                runs.len()
            ),
        ));
    }
    let mut specs = Vec::with_capacity(runs.len());
    for (index, run) in runs.iter().enumerate() {
        let spec = decode_run(run, &system, fused)
            .map_err(|cause| ProtocolError::bad_request(&id, format!("run {index}: {cause}")))?;
        specs.push(spec);
    }
    Ok(BatchRequest { id, specs, record })
}

fn field_u64(run: &JsonValue, name: &str) -> Result<u64, String> {
    run.get(name)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing unsigned integer field '{name}'"))
}

/// Decodes and fully validates one run object into a [`RunSpec`] on
/// `system`. Everything is checked here — pattern, parameter ranges,
/// plan buildability, placement permutation, fused-SPE collisions — so
/// a spec that decodes is a spec the executor can run.
fn decode_run(run: &JsonValue, system: &CellSystem, fused: u8) -> Result<RunSpec, String> {
    let pattern = run
        .get("pattern")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "missing string field 'pattern'".to_string())?;
    let pattern =
        canonical_pattern(pattern).ok_or_else(|| format!("unknown pattern '{pattern}'"))?;
    let spes = field_u64(run, "spes")?;
    let spes = u8::try_from(spes).map_err(|_| format!("spes {spes} out of range"))?;
    let volume = field_u64(run, "volume")?;
    let elem = field_u64(run, "elem")?;
    let elem = u32::try_from(elem).map_err(|_| format!("elem {elem} out of range"))?;
    let list = match run.get("list") {
        Some(JsonValue::Bool(b)) => *b,
        None => false,
        Some(_) => return Err("field 'list' must be a boolean".to_string()),
    };
    let sync = match run.get("sync") {
        None => SyncPolicy::AfterAll,
        Some(JsonValue::String(s)) if s == "all" => SyncPolicy::AfterAll,
        Some(v) => {
            let every = v
                .get("every")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| "field 'sync' must be \"all\" or {\"every\":N}".to_string())?;
            let every =
                u32::try_from(every).map_err(|_| format!("sync every {every} out of range"))?;
            SyncPolicy::Every(every)
        }
    };
    let params = match run.get("params") {
        None => 0,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| "field 'params' must be an unsigned integer".to_string())?,
    };
    let workload = Workload {
        pattern,
        spes,
        volume,
        elem,
        list,
        sync,
        params,
    };
    let plan = workload_plan(&workload).map_err(|e| e.to_string())?;
    let mapping = run
        .get("placement")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "missing array field 'placement'".to_string())?;
    if mapping.len() != 8 {
        return Err(format!(
            "placement must list all 8 SPEs, got {}",
            mapping.len()
        ));
    }
    let mut map = [0u8; 8];
    for (slot, v) in map.iter_mut().zip(mapping) {
        let p = v
            .as_u64()
            .filter(|&p| p < 8)
            .ok_or_else(|| "placement entries must be integers in 0..8".to_string())?;
        *slot = p as u8;
    }
    let placement = Placement::from_mapping(map)
        .ok_or_else(|| "placement is not a permutation of 0..8".to_string())?;
    for logical in 0..usize::from(workload.spes) {
        let physical = placement.mapping()[logical];
        if fused & (1 << physical) != 0 {
            return Err(format!(
                "placement maps logical SPE {logical} onto fused physical SPE {physical}"
            ));
        }
    }
    Ok(RunSpec::new(system, workload, placement, plan))
}

// ---- response emission --------------------------------------------------

/// `accepted`: the batch passed admission; results will stream.
#[must_use]
pub fn accepted_line(id: &str, runs: usize) -> String {
    format!(
        "{{\"op\":\"accepted\",\"id\":\"{}\",\"runs\":{runs}}}",
        json::escape(id)
    )
}

/// `reject`: the admission queue is past its high-water mark. Nothing
/// of the batch was enqueued; the client retries later.
#[must_use]
pub fn reject_line(id: &str, queued: usize, high_water: usize) -> String {
    format!(
        "{{\"op\":\"reject\",\"id\":\"{}\",\"reason\":\"overloaded\",\
         \"queued\":{queued},\"high_water\":{high_water}}}",
        json::escape(id)
    )
}

/// `reject` with reason `draining`: the daemon is finishing in-flight
/// work and admitting nothing new. Nothing of the batch was enqueued;
/// the client retries against the restarted daemon.
#[must_use]
pub fn drain_reject_line(id: &str) -> String {
    format!(
        "{{\"op\":\"reject\",\"id\":\"{}\",\"reason\":\"draining\"}}",
        json::escape(id)
    )
}

/// `draining`: the ack for an `{"op":"drain"}` request, reporting the
/// work the daemon will still finish before exiting.
#[must_use]
pub fn draining_line(queued: usize, inflight: usize) -> String {
    format!("{{\"op\":\"draining\",\"queued\":{queued},\"inflight\":{inflight}}}")
}

/// `error` with reason `shutting-down`: a typed goodbye for a batch
/// whose queued runs the daemon dropped at shutdown — the client sees
/// a refusal, never a silent EOF.
#[must_use]
pub fn shutting_down_line(id: &str) -> String {
    error_line(
        Some(id),
        "shutting-down",
        "daemon shut down before the batch completed; unfinished runs were dropped",
    )
}

/// `error`: the request line itself was refused (see [`ProtocolError`]).
#[must_use]
pub fn error_line(id: Option<&str>, reason: &str, detail: &str) -> String {
    let id = match id {
        Some(id) => format!("\"id\":\"{}\",", json::escape(id)),
        None => String::new(),
    };
    format!(
        "{{\"op\":\"error\",{id}\"reason\":\"{}\",\"detail\":\"{}\"}}",
        json::escape(reason),
        json::escape(detail)
    )
}

/// `result`: run `index` of batch `id` completed with `report`.
#[must_use]
pub fn result_line(id: &str, index: usize, key: &RunKey, report: &FabricReport) -> String {
    format!(
        "{{\"op\":\"result\",\"id\":\"{}\",\"index\":{index},\
         \"key\":\"{:016x}\",\"report\":{}}}",
        json::escape(id),
        key_fingerprint(key),
        report_to_json(report)
    )
}

/// `failed`: run `index` produced a typed [`RunError`] instead of a
/// report. The stall variant splices the diagnosis's own JSON.
#[must_use]
pub fn failed_line(id: &str, index: usize, error: &RunError) -> String {
    let key = error.key();
    let head = format!(
        "{{\"op\":\"failed\",\"id\":\"{}\",\"index\":{index},\
         \"key\":\"{:016x}\",\"run\":\"{}\"",
        json::escape(id),
        key_fingerprint(key),
        json::escape(&key.to_string())
    );
    match error {
        RunError::Stall { diagnosis, .. } => {
            format!(
                "{head},\"kind\":\"stall\",\"diagnosis\":{}}}",
                diagnosis.to_json()
            )
        }
        RunError::Panicked { message, .. } => {
            format!(
                "{head},\"kind\":\"panic\",\"message\":\"{}\"}}",
                json::escape(message)
            )
        }
        RunError::Timeout { limit_ms, .. } => {
            format!("{head},\"kind\":\"timeout\",\"limit_ms\":{limit_ms}}}")
        }
    }
}

/// `done`: every run of the batch has been answered.
#[must_use]
pub fn done_line(id: &str, ok: usize, failed: usize) -> String {
    format!(
        "{{\"op\":\"done\",\"id\":\"{}\",\"ok\":{ok},\"failed\":{failed}}}",
        json::escape(id)
    )
}

/// Encodes one spec as a request run object — the client half of
/// [`decode_request`]; `decode(encode(spec))` reproduces the same
/// [`RunKey`].
#[must_use]
pub fn encode_run(spec: &RunSpec) -> String {
    let w = &spec.key.workload;
    let sync = match w.sync {
        SyncPolicy::AfterAll => "\"all\"".to_string(),
        SyncPolicy::Every(n) => format!("{{\"every\":{n}}}"),
    };
    let placement: Vec<String> = spec.key.placement.iter().map(u8::to_string).collect();
    // Workload params are emitted only when nonzero: streaming-figure
    // request lines stay byte-identical to what older clients sent.
    let params = if w.params == 0 {
        String::new()
    } else {
        format!("\"params\":{},", w.params)
    };
    format!(
        "{{\"pattern\":\"{}\",\"spes\":{},\"volume\":{},\"elem\":{},\
         \"list\":{},\"sync\":{sync},{params}\"placement\":[{}]}}",
        json::escape(w.pattern),
        w.spes,
        w.volume,
        w.elem,
        w.list,
        placement.join(",")
    )
}

/// Encodes a whole `run` request line (without the trailing newline).
/// `record` asks the daemon to persist trace-store artifacts for the
/// batch; `false` omits the key, so the line is byte-identical to what
/// older clients sent.
#[must_use]
pub fn encode_run_request(
    id: &str,
    faults: Option<&FaultPlan>,
    specs: &[RunSpec],
    record: bool,
) -> String {
    let runs: Vec<String> = specs.iter().map(encode_run).collect();
    let faults = match faults {
        Some(plan) => format!("\"faults\":{},", plan.to_json()),
        None => String::new(),
    };
    let record = if record { "\"record\":true," } else { "" };
    format!(
        "{{\"op\":\"run\",\"id\":\"{}\",{faults}{record}\"runs\":[{}]}}",
        json::escape(id),
        runs.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellsim_core::experiments::{figure_points, figure_specs, ExperimentConfig};

    fn quick_specs() -> Vec<RunSpec> {
        let cfg = ExperimentConfig::quick();
        let points = figure_points(&cfg, "12").unwrap().unwrap();
        figure_specs(&CellSystem::blade(), &cfg, &points)
    }

    #[test]
    fn encoded_requests_decode_to_the_same_run_keys() {
        let specs = quick_specs();
        let line = encode_run_request("b1", None, &specs, false);
        let Request::Run(batch) = decode_request(&line).unwrap_or_else(|e| panic!("{}", e.detail))
        else {
            panic!("expected a run request");
        };
        assert_eq!(batch.id, "b1");
        assert!(!batch.record, "record defaults to false");
        assert_eq!(batch.specs.len(), specs.len());
        for (sent, got) in specs.iter().zip(&batch.specs) {
            assert_eq!(sent.key, got.key);
        }
        let line = encode_run_request("b2", None, &specs, true);
        let Request::Run(batch) = decode_request(&line).unwrap_or_else(|e| panic!("{}", e.detail))
        else {
            panic!("expected a run request");
        };
        assert!(batch.record, "record survives the round trip");
    }

    #[test]
    fn faulted_requests_carry_the_plan_into_the_run_keys() {
        let plan = FaultPlan::parse(
            "{\"seed\":7,\"eib\":{\"derate\":[{\"start\":0,\"cycles\":1000,\
             \"capacity_percent\":50}]}}",
        )
        .expect("valid plan");
        let specs = quick_specs();
        let line = encode_run_request("deg", Some(&plan), &specs, false);
        let Request::Run(batch) = decode_request(&line).unwrap_or_else(|e| panic!("{}", e.detail))
        else {
            panic!("expected a run request");
        };
        for (sent, got) in specs.iter().zip(&batch.specs) {
            assert_eq!(got.key.faults, plan.fingerprint());
            assert_eq!(sent.key.workload, got.key.workload);
        }
    }

    #[test]
    fn bad_runs_are_refused_with_the_offending_index() {
        let check = |run: &str, needle: &str| {
            let line = format!("{{\"op\":\"run\",\"id\":\"b\",\"runs\":[{run}]}}");
            let err = match decode_request(&line) {
                Err(e) => e,
                Ok(_) => panic!("expected {needle}"),
            };
            assert_eq!(err.reason, "bad-request");
            assert!(
                err.detail.starts_with("run 0:") && err.detail.contains(needle),
                "detail {:?} lacks {needle:?}",
                err.detail
            );
        };
        let good = "\"spes\":2,\"volume\":4096,\"elem\":128,\"list\":false,\
                    \"sync\":\"all\",\"placement\":[0,1,2,3,4,5,6,7]";
        check(
            &format!("{{\"pattern\":\"warp\",{good}}}"),
            "unknown pattern",
        );
        check(
            "{\"pattern\":\"couples\",\"spes\":3,\"volume\":4096,\"elem\":128,\
             \"placement\":[0,1,2,3,4,5,6,7]}",
            "cannot run on 3",
        );
        check(
            "{\"pattern\":\"couples\",\"spes\":2,\"volume\":65536,\"elem\":32768,\
             \"placement\":[0,1,2,3,4,5,6,7]}",
            "plan rejected",
        );
        check(
            "{\"pattern\":\"couples\",\"spes\":2,\"volume\":4096,\"elem\":128,\
             \"placement\":[0,0,2,3,4,5,6,7]}",
            "not a permutation",
        );
    }

    #[test]
    fn fused_placements_are_refused_before_simulation() {
        let line = "{\"op\":\"run\",\"id\":\"b\",\
             \"faults\":{\"seed\":1,\"fused_spes\":[0]},\
             \"runs\":[{\"pattern\":\"mem-get\",\"spes\":1,\"volume\":4096,\
             \"elem\":128,\"placement\":[0,1,2,3,4,5,6,7]}]}";
        let err = match decode_request(line) {
            Err(e) => e,
            Ok(_) => panic!("expected fused refusal"),
        };
        assert!(
            err.detail.contains("fused physical SPE 0"),
            "{}",
            err.detail
        );
    }

    #[test]
    fn non_boolean_record_is_refused() {
        let line = "{\"op\":\"run\",\"id\":\"b\",\"record\":1,\"runs\":[]}";
        let err = match decode_request(line) {
            Err(e) => e,
            Ok(_) => panic!("expected refusal"),
        };
        assert_eq!(err.reason, "bad-request");
        assert!(err.detail.contains("'record'"), "{}", err.detail);
    }

    #[test]
    fn malformed_lines_are_protocol_errors() {
        for line in ["not json", "{\"op\":\"warp\"}", "{}", "{\"op\":\"run\"}"] {
            let err = match decode_request(line) {
                Err(e) => e,
                Ok(_) => panic!("expected refusal of {line:?}"),
            };
            assert_eq!(err.reason, "protocol", "line {line:?}");
        }
    }
}
