//! `cellsim-serve`: a long-running sweep daemon for the Cell simulator.
//!
//! The CLI (`repro`) runs one sweep and exits; every invocation pays
//! for its own simulations, and concurrent invocations only share work
//! through the disk cache, *after* a run completes. This crate is the
//! resident alternative the ROADMAP's service milestone asks for: one
//! process owns one parallel
//! [`SweepExecutor`](cellsim_core::exec::SweepExecutor) and one
//! content-addressed
//! `--cache-dir`, and any number of clients stream batches of runs at
//! it over TCP.
//!
//! What the daemon adds over N parallel CLI invocations:
//!
//! * **cross-client memoization** — every client hits one shared
//!   in-memory report cache (bounded, LRU) over one shared disk tier;
//! * **in-flight dedup** — two clients requesting the same run key
//!   *concurrently* cost one simulation, not two
//!   ([`scheduler`]): the second parks until the first's result lands;
//! * **explicit backpressure** — a bounded admission queue with fair
//!   round-robin draining across connections, rejecting whole batches
//!   as `overloaded` past the high-water mark, never buffering
//!   unbounded work;
//! * **typed failures over the wire** — a stalled or panicked run
//!   arrives as the same [`RunError`](cellsim_core::exec::RunError)
//!   taxonomy the CLI prints, stall diagnoses in full JSON.
//!
//! The wire format ([`protocol`]) is newline-delimited JSON built on
//! the repo's own serde-free parser — depth-capped, length-capped, and
//! fuzzable — so a hostile peer gets a typed `error` line, not a stack
//! overflow. Results replay bit-identically: reports travel in the
//! disk cache's canonical encoding (floats as IEEE bit patterns), and
//! [`client::Client`] verifies each result against the run key that
//! requested it. `cellsim-client` (in `cellsim-bench`) renders figures
//! from replayed reports byte-identically to a local `repro` run.

pub mod client;
pub mod framing;
pub mod protocol;
pub mod retry;
pub mod scheduler;
pub mod server;

pub use client::{BatchOutcome, Client, ClientError, ResilientClient, ServeStats, WireFailure};
pub use retry::RetryPolicy;
pub use server::{ServeHandle, ServeOptions, Server};
