//! Bounded newline framing, shared by the daemon and the client.
//!
//! `BufRead::read_line` buffers without limit — on a socket that hands
//! the peer a memory-exhaustion lever. [`LineReader`] frames lines with
//! a hard byte cap instead: an over-long line is reported as
//! [`LineRead::TooLong`] without ever buffering more than the cap.

use std::io::BufRead;

/// How one framed read ended.
pub enum LineRead {
    /// A complete line is in the buffer (newline stripped).
    Line,
    /// The peer closed the stream at a line boundary.
    Eof,
    /// The line exceeded the cap before its newline arrived. The
    /// stream is left mid-line; callers should answer-and-close rather
    /// than keep framing.
    TooLong,
}

/// A line framer with a per-line byte cap.
pub struct LineReader<R> {
    reader: R,
    max: usize,
    buf: Vec<u8>,
    /// Whether the previous `read` completed (line, EOF, or over-long).
    /// A `read` that failed mid-line — e.g. a socket read deadline
    /// expiring — leaves this false, so the next call *resumes*
    /// accumulating the same line instead of corrupting the framing.
    fresh: bool,
}

impl<R: BufRead> LineReader<R> {
    /// Frames lines of at most `max` bytes (newline excluded) from
    /// `reader`.
    pub fn new(reader: R, max: usize) -> LineReader<R> {
        LineReader {
            reader,
            max,
            buf: Vec::new(),
            fresh: true,
        }
    }

    /// The most recently framed line.
    #[must_use]
    pub fn line(&self) -> &[u8] {
        &self.buf
    }

    /// Frames the next line into the internal buffer. An `Err` return
    /// (including a read-deadline timeout) keeps any partial line; a
    /// later call picks up where the stream left off.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from the underlying reader.
    pub fn read(&mut self) -> std::io::Result<LineRead> {
        if self.fresh {
            self.buf.clear();
        }
        self.fresh = false;
        loop {
            let available = match self.reader.fill_buf() {
                Ok(chunk) => chunk,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if available.is_empty() {
                self.fresh = true;
                return Ok(if self.buf.is_empty() {
                    LineRead::Eof
                } else {
                    LineRead::Line
                });
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(newline) => {
                    let fits = self.buf.len() + newline <= self.max;
                    if fits {
                        self.buf.extend_from_slice(&available[..newline]);
                    }
                    self.reader.consume(newline + 1);
                    self.fresh = true;
                    return Ok(if fits {
                        LineRead::Line
                    } else {
                        LineRead::TooLong
                    });
                }
                None => {
                    let taken = available.len();
                    if self.buf.len() + taken > self.max {
                        self.reader.consume(taken);
                        self.fresh = true;
                        return Ok(LineRead::TooLong);
                    }
                    self.buf.extend_from_slice(available);
                    self.reader.consume(taken);
                }
            }
        }
    }

    /// Client-side convenience: the next line as a string, `None` at
    /// EOF.
    ///
    /// # Errors
    ///
    /// I/O errors from the reader; an over-long or non-UTF-8 line maps
    /// to [`std::io::ErrorKind::InvalidData`].
    pub fn next_line(&mut self) -> std::io::Result<Option<String>> {
        match self.read()? {
            LineRead::Eof => Ok(None),
            LineRead::TooLong => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line exceeds {} bytes", self.max),
            )),
            LineRead::Line => String::from_utf8(self.buf.clone()).map(Some).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "line is not UTF-8")
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frames_and_caps_lines() {
        let data: &[u8] = b"short\nexactly10!\nway too long line\nafter\ntail";
        let mut reader = LineReader::new(BufReader::new(data), 10);
        assert!(matches!(reader.read(), Ok(LineRead::Line)));
        assert_eq!(reader.line(), b"short");
        assert!(matches!(reader.read(), Ok(LineRead::Line)));
        assert_eq!(reader.line(), b"exactly10!");
        assert!(matches!(reader.read(), Ok(LineRead::TooLong)));
        // The over-long line was consumed with its newline; framing
        // recovers at the next line (the daemon closes anyway).
        assert!(matches!(reader.read(), Ok(LineRead::Line)));
        assert_eq!(reader.line(), b"after");
        // A final unterminated line still comes back before EOF.
        assert!(matches!(reader.read(), Ok(LineRead::Line)));
        assert_eq!(reader.line(), b"tail");
        assert!(matches!(reader.read(), Ok(LineRead::Eof)));
    }

    /// A reader that interleaves data chunks with transient errors —
    /// the shape of a socket with a read deadline.
    struct Flaky {
        steps: std::collections::VecDeque<Result<Vec<u8>, ()>>,
        current: Vec<u8>,
    }

    impl std::io::Read for Flaky {
        fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
            unreachable!("LineReader uses fill_buf/consume")
        }
    }

    impl BufRead for Flaky {
        fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
            if self.current.is_empty() {
                match self.steps.pop_front() {
                    Some(Ok(bytes)) => self.current = bytes,
                    Some(Err(())) => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::WouldBlock,
                            "deadline",
                        ))
                    }
                    None => {}
                }
            }
            Ok(&self.current)
        }

        fn consume(&mut self, n: usize) {
            self.current.drain(..n);
        }
    }

    #[test]
    fn a_mid_line_error_does_not_corrupt_framing() {
        let flaky = Flaky {
            steps: [
                Ok(b"first\nsec".to_vec()),
                Err(()),
                Err(()),
                Ok(b"ond\nthird\n".to_vec()),
            ]
            .into_iter()
            .collect(),
            current: Vec::new(),
        };
        let mut reader = LineReader::new(flaky, 64);
        assert!(matches!(reader.read(), Ok(LineRead::Line)));
        assert_eq!(reader.line(), b"first");
        // Two deadline expiries mid-"second": the partial line must
        // survive both and complete when bytes resume.
        assert!(reader.read().is_err());
        assert!(reader.read().is_err());
        assert!(matches!(reader.read(), Ok(LineRead::Line)));
        assert_eq!(reader.line(), b"second");
        assert!(matches!(reader.read(), Ok(LineRead::Line)));
        assert_eq!(reader.line(), b"third");
        assert!(matches!(reader.read(), Ok(LineRead::Eof)));
    }
}
