//! Exponential backoff with seeded jitter, as a pure unit.
//!
//! The policy owns no clock and no socket: callers ask it for the next
//! delay and sleep (or don't) themselves, which is what makes the
//! schedule testable as plain data. Delays follow *equal jitter*:
//! attempt `n` draws uniformly from `[cap_n/2, cap_n]` where
//! `cap_n = min(base·2ⁿ, cap)` — enough randomness to de-synchronize a
//! thundering herd of clients retrying against one daemon, while
//! keeping at least half the exponential spacing deterministically.
//! The jitter source is a seeded xorshift64* stream, so a given seed
//! always produces the same schedule.

use std::time::Duration;

/// A reusable retry schedule; see the module docs.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    base: Duration,
    cap: Duration,
    max_retries: u32,
    attempt: u32,
    rng: u64,
}

impl RetryPolicy {
    /// A policy starting at `base`, doubling per attempt up to `cap`,
    /// giving up after `max_retries` delays. `seed` fixes the jitter
    /// stream.
    #[must_use]
    pub fn new(base: Duration, cap: Duration, max_retries: u32, seed: u64) -> RetryPolicy {
        // SplitMix64 scramble so adjacent seeds get unrelated jitter
        // streams; `| 1` keeps the xorshift state nonzero.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        RetryPolicy {
            base: base.max(Duration::from_millis(1)),
            cap: cap.max(base).max(Duration::from_millis(1)),
            max_retries,
            attempt: 0,
            rng: z | 1,
        }
    }

    /// A client-friendly default: 100 ms doubling to a 5 s ceiling.
    #[must_use]
    pub fn with_defaults(max_retries: u32, seed: u64) -> RetryPolicy {
        RetryPolicy::new(
            Duration::from_millis(100),
            Duration::from_secs(5),
            max_retries,
            seed,
        )
    }

    /// Retries handed out since the last success.
    #[must_use]
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*; the state is kept nonzero by construction.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// The next backoff delay, or `None` once `max_retries` have been
    /// handed out (the caller gives up and surfaces its last error).
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= self.max_retries {
            return None;
        }
        let ceiling = self
            .base
            .checked_mul(1u32.checked_shl(self.attempt).unwrap_or(u32::MAX))
            .map_or(self.cap, |d| d.min(self.cap));
        self.attempt += 1;
        let ceiling_ms = ceiling.as_millis().max(1) as u64;
        let half = ceiling_ms / 2;
        let jitter = if half == 0 {
            0
        } else {
            self.next_u64() % (half + 1)
        };
        Some(Duration::from_millis(ceiling_ms - half + jitter))
    }

    /// Reports a success: the next failure starts the schedule over
    /// from `base`.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(policy: &mut RetryPolicy) -> Vec<Duration> {
        std::iter::from_fn(|| policy.next_delay()).collect()
    }

    #[test]
    fn seeded_schedules_are_deterministic() {
        let mut a = RetryPolicy::with_defaults(8, 42);
        let mut b = RetryPolicy::with_defaults(8, 42);
        let mut c = RetryPolicy::with_defaults(8, 43);
        let sa = schedule(&mut a);
        assert_eq!(sa, schedule(&mut b), "same seed, same schedule");
        assert_eq!(sa.len(), 8, "exactly max_retries delays, then None");
        assert_ne!(sa, schedule(&mut c), "different seed diverges");
    }

    #[test]
    fn delays_grow_exponentially_and_cap_at_the_ceiling() {
        let base = Duration::from_millis(100);
        let cap = Duration::from_millis(800);
        let mut policy = RetryPolicy::new(base, cap, 10, 7);
        for (n, delay) in schedule(&mut policy).into_iter().enumerate() {
            let ceiling = base.checked_mul(1 << n.min(31)).map_or(cap, |d| d.min(cap));
            assert!(
                delay >= ceiling / 2 && delay <= ceiling,
                "attempt {n}: {delay:?} outside [{:?}, {ceiling:?}]",
                ceiling / 2
            );
        }
        // Past the doubling range every delay is bounded by the cap.
        let mut policy = RetryPolicy::new(base, cap, 40, 9);
        assert!(schedule(&mut policy).iter().all(|d| *d <= cap));
    }

    #[test]
    fn reset_restarts_the_schedule_after_a_success() {
        let mut policy = RetryPolicy::new(Duration::from_millis(100), Duration::from_secs(5), 3, 1);
        assert_eq!(schedule(&mut policy).len(), 3);
        assert!(policy.next_delay().is_none(), "exhausted until reset");
        policy.reset();
        assert_eq!(policy.attempts(), 0);
        let resumed = policy.next_delay().expect("reset restores the budget");
        // Back at the first rung: within [base/2, base].
        assert!(
            resumed >= Duration::from_millis(50) && resumed <= Duration::from_millis(100),
            "{resumed:?}"
        );
    }

    #[test]
    fn zero_retries_means_fail_fast() {
        let mut policy = RetryPolicy::with_defaults(0, 5);
        assert!(policy.next_delay().is_none());
    }
}
