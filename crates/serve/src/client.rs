//! A blocking client for the serve protocol, used by `cellsim-client`
//! and the integration tests.
//!
//! The client submits a batch of [`RunSpec`]s, collects the streamed
//! per-run results back into request order, and verifies each result's
//! run-key fingerprint against the spec it answered — a transport-level
//! integrity check on top of the report's own canonical encoding.

use std::fmt;
use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;

use cellsim_core::diskcache::{key_fingerprint, report_from_json};
use cellsim_core::exec::RunSpec;
use cellsim_core::json::{self, JsonValue};
use cellsim_core::{FabricReport, FaultPlan};

use crate::framing::LineReader;
use crate::protocol::{encode_run_request, MAX_LINE_BYTES};
use crate::retry::RetryPolicy;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The connection closed mid-batch — the daemon died, was killed,
    /// or severed the socket. Already-received results are valid;
    /// [`ResilientClient`] reconnects and re-requests only the rest.
    Disconnected,
    /// The daemon's response could not be understood.
    Protocol(String),
    /// The daemon refused the batch: admission queue past high water.
    Overloaded {
        /// Runs queued at the daemon when it refused.
        queued: u64,
        /// The daemon's high-water mark.
        high_water: u64,
    },
    /// The daemon refused the request (`error` line, or a non-capacity
    /// `reject` such as `draining`).
    Refused {
        /// The daemon's `reason` field (`protocol` / `bad-request` /
        /// `draining` / `shutting-down` / `slow-consumer` / ...).
        reason: String,
        /// The daemon's `detail` field.
        detail: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Disconnected => write!(f, "connection closed mid-response"),
            ClientError::Protocol(detail) => write!(f, "protocol: {detail}"),
            ClientError::Overloaded { queued, high_water } => write!(
                f,
                "server overloaded ({queued} runs queued, high water {high_water})"
            ),
            ClientError::Refused { reason, detail } => write!(f, "refused ({reason}): {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// One run's failure as reported over the wire.
#[derive(Debug, Clone)]
pub struct WireFailure {
    /// `"stall"`, `"panic"`, or `"timeout"`.
    pub kind: String,
    /// The failed run's key in display form.
    pub run: String,
    /// Stall diagnosis JSON, or the panic message.
    pub detail: String,
}

impl fmt::Display for WireFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "run {} [{}]: {}", self.kind, self.run, self.detail)
    }
}

/// A completed batch: one entry per requested run, in request order.
pub struct BatchOutcome {
    /// Per-run outcomes.
    pub results: Vec<Result<Arc<FabricReport>, WireFailure>>,
    /// The daemon's `done` tallies.
    pub ok: usize,
    /// Runs that failed (stall or panic).
    pub failed: usize,
}

/// Daemon counters from a `stats` request.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Open client connections.
    pub connections: u64,
    /// Admitted, unstarted runs.
    pub queue_depth: u64,
    /// Admission high-water mark.
    pub high_water: u64,
    /// Distinct keys simulating right now.
    pub inflight: u64,
    /// Runs answered by parking on an in-flight simulation.
    pub deduped: u64,
    /// Runs admitted since daemon start.
    pub accepted: u64,
    /// Runs answered since daemon start.
    pub completed: u64,
    /// Batches rejected as overloaded.
    pub rejected: u64,
    /// Deepest the admission queue has ever been.
    pub queue_peak: u64,
    /// Daemon wall-clock uptime in milliseconds.
    pub uptime_ms: u64,
    /// Σ simulated cycles over every successful run answered.
    pub uptime_cycles: u64,
    /// Executor in-memory cache hits.
    pub cache_hits: u64,
    /// Executor misses (actual simulations).
    pub cache_misses: u64,
    /// Runs converted to typed `timeout` failures by the watchdog.
    pub timeouts: u64,
    /// Whether the daemon is draining (reject-new, finish-in-flight).
    pub draining: bool,
    /// `(entries, bytes)` census of the shared cache dir, when attached.
    pub disk_entries: Option<(u64, u64)>,
}

/// A connected protocol client. Not thread-safe; one per thread.
pub struct Client {
    reader: LineReader<BufReader<TcpStream>>,
    writer: TcpStream,
}

fn get_u64(v: &JsonValue, name: &str) -> Result<u64, ClientError> {
    v.get(name)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| ClientError::Protocol(format!("response missing field '{name}'")))
}

impl Client {
    /// Connects to a serving daemon.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from connecting.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: LineReader::new(BufReader::new(stream), MAX_LINE_BYTES),
            writer,
        })
    }

    /// Caps how long a single response read may block (`None` waits
    /// forever, the default). A expiry surfaces as [`ClientError::Io`]
    /// with kind `WouldBlock`/`TimedOut` — under [`ResilientClient`]
    /// that abandons the connection and resumes elsewhere, so a daemon
    /// that accepted the socket but will never answer (e.g. one caught
    /// mid-death) cannot hang the client forever.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from the socket option.
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> std::io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    fn send(&mut self, line: &str) -> Result<(), ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_response(&mut self) -> Result<JsonValue, ClientError> {
        let Some(line) = self.reader.next_line()? else {
            return Err(ClientError::Disconnected);
        };
        json::parse(&line).map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))
    }

    /// Submits `specs` as one batch and blocks until `done`, returning
    /// outcomes in request order. `faults` applies to the whole batch.
    ///
    /// # Errors
    ///
    /// [`ClientError`] — including [`ClientError::Overloaded`] when the
    /// daemon rejected the batch (nothing ran; retry later).
    pub fn run_batch(
        &mut self,
        id: &str,
        faults: Option<&FaultPlan>,
        specs: &[RunSpec],
    ) -> Result<BatchOutcome, ClientError> {
        self.run_batch_recorded(id, faults, specs, false)
    }

    /// Like [`Client::run_batch`], with `record` asking the daemon to
    /// persist a trace-store artifact per run under its `--run-dir`. A
    /// daemon without one refuses the batch ([`ClientError::Refused`]).
    ///
    /// # Errors
    ///
    /// [`ClientError`] — including [`ClientError::Overloaded`] when the
    /// daemon rejected the batch (nothing ran; retry later).
    pub fn run_batch_recorded(
        &mut self,
        id: &str,
        faults: Option<&FaultPlan>,
        specs: &[RunSpec],
        record: bool,
    ) -> Result<BatchOutcome, ClientError> {
        let mut slots: Vec<Option<Result<Arc<FabricReport>, WireFailure>>> =
            (0..specs.len()).map(|_| None).collect();
        self.run_batch_sparse(id, faults, specs, record, &mut slots)?;
        Ok(outcome_from_slots(slots))
    }

    /// Submits only the runs whose `slots` entry is still `None` —
    /// the resume primitive behind [`ResilientClient`]. Already-filled
    /// slots are kept as-is; on `Ok` every slot is filled.
    ///
    /// The daemon's caches make this idempotent: a re-requested run is
    /// keyed by the same content-addressed run key, so a resumed batch
    /// is answered from cache (or by at most one fresh simulation) with
    /// a bit-identical report.
    ///
    /// # Errors
    ///
    /// [`ClientError`] — on [`ClientError::Disconnected`] the slots
    /// filled so far remain valid, and a later call resumes from them.
    pub fn run_batch_sparse(
        &mut self,
        id: &str,
        faults: Option<&FaultPlan>,
        specs: &[RunSpec],
        record: bool,
        slots: &mut [Option<Result<Arc<FabricReport>, WireFailure>>],
    ) -> Result<(), ClientError> {
        assert_eq!(specs.len(), slots.len(), "one slot per spec");
        let pending: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.is_none().then_some(i))
            .collect();
        if pending.is_empty() {
            return Ok(());
        }
        let subset: Vec<RunSpec> = pending.iter().map(|&i| specs[i].clone()).collect();
        self.send(&encode_run_request(id, faults, &subset, record))?;
        loop {
            let v = self.read_response()?;
            match v.get("op").and_then(JsonValue::as_str) {
                Some("accepted") => {}
                Some("result") | Some("failed") => {
                    let index = usize::try_from(get_u64(&v, "index")?)
                        .map_err(|_| ClientError::Protocol("index overflows".to_string()))?;
                    let &orig = pending.get(index).ok_or_else(|| {
                        ClientError::Protocol(format!("result index {index} out of range"))
                    })?;
                    let fingerprint = v.get("key").and_then(JsonValue::as_str).unwrap_or("");
                    if fingerprint != format!("{:016x}", key_fingerprint(&specs[orig].key)) {
                        return Err(ClientError::Protocol(format!(
                            "run {orig} answered with a different run key"
                        )));
                    }
                    slots[orig] = Some(decode_outcome(&v)?);
                }
                Some("done") => {
                    if let Some(missing) = slots.iter().position(Option::is_none) {
                        return Err(ClientError::Protocol(format!(
                            "done before result for run {missing}"
                        )));
                    }
                    return Ok(());
                }
                Some("reject") => {
                    let reason = v.get("reason").and_then(JsonValue::as_str).unwrap_or("");
                    if reason == "overloaded" {
                        return Err(ClientError::Overloaded {
                            queued: get_u64(&v, "queued")?,
                            high_water: get_u64(&v, "high_water")?,
                        });
                    }
                    return Err(ClientError::Refused {
                        reason: if reason.is_empty() {
                            "unknown".to_string()
                        } else {
                            reason.to_string()
                        },
                        detail: "batch rejected".to_string(),
                    });
                }
                Some("error") => {
                    return Err(ClientError::Refused {
                        reason: v
                            .get("reason")
                            .and_then(JsonValue::as_str)
                            .unwrap_or("unknown")
                            .to_string(),
                        detail: v
                            .get("detail")
                            .and_then(JsonValue::as_str)
                            .unwrap_or_default()
                            .to_string(),
                    })
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected response op {other:?}"
                    )))
                }
            }
        }
    }

    /// Fetches the daemon's counter snapshot.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or framing problems.
    pub fn stats(&mut self) -> Result<ServeStats, ClientError> {
        self.send("{\"op\":\"stats\"}")?;
        let v = self.read_response()?;
        if v.get("op").and_then(JsonValue::as_str) != Some("stats") {
            return Err(ClientError::Protocol(
                "expected a stats response".to_string(),
            ));
        }
        let cache = v
            .get("cache")
            .ok_or_else(|| ClientError::Protocol("stats missing 'cache'".to_string()))?;
        let disk_entries = match v.get("disk") {
            Some(JsonValue::Object(_)) => {
                let disk = v.get("disk").expect("just matched");
                Some((get_u64(disk, "entries")?, get_u64(disk, "bytes")?))
            }
            _ => None,
        };
        Ok(ServeStats {
            connections: get_u64(&v, "connections")?,
            queue_depth: get_u64(&v, "queue_depth")?,
            high_water: get_u64(&v, "high_water")?,
            inflight: get_u64(&v, "inflight")?,
            deduped: get_u64(&v, "deduped")?,
            accepted: get_u64(&v, "accepted")?,
            completed: get_u64(&v, "completed")?,
            rejected: get_u64(&v, "rejected")?,
            queue_peak: get_u64(&v, "queue_peak")?,
            uptime_ms: get_u64(&v, "uptime_ms")?,
            uptime_cycles: get_u64(&v, "uptime_cycles")?,
            cache_hits: get_u64(cache, "hits")?,
            cache_misses: get_u64(cache, "misses")?,
            // Lenient: absent on daemons predating the hardening work.
            timeouts: v.get("timeouts").and_then(JsonValue::as_u64).unwrap_or(0),
            draining: matches!(v.get("draining"), Some(JsonValue::Bool(true))),
            disk_entries,
        })
    }
}

/// Collapses fully-filled slots into a [`BatchOutcome`], recomputing
/// the tallies client-side (a resumed batch spans several wire `done`
/// lines, so the daemon's per-attempt tallies don't apply).
fn outcome_from_slots(slots: Vec<Option<Result<Arc<FabricReport>, WireFailure>>>) -> BatchOutcome {
    let results: Vec<Result<Arc<FabricReport>, WireFailure>> = slots
        .into_iter()
        .map(|slot| slot.expect("run_batch_sparse fills every slot before Ok"))
        .collect();
    let ok = results.iter().filter(|r| r.is_ok()).count();
    let failed = results.len() - ok;
    BatchOutcome {
        results,
        ok,
        failed,
    }
}

/// Whether the failure is transient enough that reconnecting and
/// resubmitting the unanswered runs can succeed.
fn retryable(error: &ClientError) -> bool {
    match error {
        ClientError::Io(_) | ClientError::Disconnected | ClientError::Overloaded { .. } => true,
        // A draining daemon refuses new work but a restarted (or
        // sibling) daemon at the same address will take it; same for
        // one caught mid-shutdown.
        ClientError::Refused { reason, .. } => {
            matches!(reason.as_str(), "draining" | "shutting-down")
        }
        ClientError::Protocol(_) => false,
    }
}

/// A [`Client`] wrapper that survives daemon restarts and overload.
///
/// Each batch attempt connects fresh via the address source (a closure,
/// so a test can re-point it at a restarted daemon's new port), submits
/// only the runs not yet answered, and folds the streamed results into
/// one set of slots. On a retryable failure — transport errors,
/// mid-batch disconnects, `overloaded`, `draining`/`shutting-down`
/// rejections — it backs off per its seeded [`RetryPolicy`] and tries
/// again; results already received are never re-requested. Resumption
/// is idempotent because runs are keyed content-addressed: a re-asked
/// run returns the same bit-exact report, usually straight from the
/// daemon's caches.
pub struct ResilientClient {
    source: Box<dyn FnMut() -> String + Send>,
    policy: RetryPolicy,
    read_timeout: Option<std::time::Duration>,
    /// Reconnect-and-resume attempts across all batches so far.
    retries: u64,
}

impl ResilientClient {
    /// A resilient client fetching the daemon address from `source`
    /// before every attempt.
    #[must_use]
    pub fn new(source: impl FnMut() -> String + Send + 'static, policy: RetryPolicy) -> Self {
        ResilientClient {
            source: Box::new(source),
            policy,
            read_timeout: None,
            retries: 0,
        }
    }

    /// Caps how long each attempt may block on one response read; an
    /// expiry abandons that connection and retries. Without it, a
    /// daemon that accepted the socket but will never answer (caught
    /// mid-death, wedged) stalls the attempt indefinitely.
    #[must_use]
    pub fn with_read_timeout(mut self, timeout: std::time::Duration) -> Self {
        self.read_timeout = Some(timeout);
        self
    }

    /// A resilient client for a fixed daemon address.
    #[must_use]
    pub fn fixed(addr: &str, policy: RetryPolicy) -> Self {
        let addr = addr.to_string();
        ResilientClient::new(move || addr.clone(), policy)
    }

    /// Reconnect-and-resume attempts used across all batches so far.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// [`Client::run_batch`] with retry, reconnect, and resume.
    ///
    /// # Errors
    ///
    /// The last [`ClientError`] once the retry budget is exhausted, or
    /// immediately for non-retryable refusals.
    pub fn run_batch(
        &mut self,
        id: &str,
        faults: Option<&FaultPlan>,
        specs: &[RunSpec],
    ) -> Result<BatchOutcome, ClientError> {
        self.run_batch_recorded(id, faults, specs, false)
    }

    /// [`Client::run_batch_recorded`] with retry, reconnect, and
    /// resume.
    ///
    /// # Errors
    ///
    /// The last [`ClientError`] once the retry budget is exhausted, or
    /// immediately for non-retryable refusals.
    pub fn run_batch_recorded(
        &mut self,
        id: &str,
        faults: Option<&FaultPlan>,
        specs: &[RunSpec],
        record: bool,
    ) -> Result<BatchOutcome, ClientError> {
        let mut slots: Vec<Option<Result<Arc<FabricReport>, WireFailure>>> =
            (0..specs.len()).map(|_| None).collect();
        let mut attempt: u32 = 0;
        loop {
            // The id carries a retry ordinal so daemon logs tell a
            // resumed attempt from a duplicate submission.
            let batch_id = if attempt == 0 {
                id.to_string()
            } else {
                format!("{id}#r{attempt}")
            };
            let addr = (self.source)();
            let result = Client::connect(addr.as_str())
                .and_then(|client| {
                    client.set_read_timeout(self.read_timeout)?;
                    Ok(client)
                })
                .map_err(ClientError::Io)
                .and_then(|mut client| {
                    client.run_batch_sparse(&batch_id, faults, specs, record, &mut slots)
                });
            match result {
                Ok(()) => {
                    self.policy.reset();
                    return Ok(outcome_from_slots(slots));
                }
                Err(error) if retryable(&error) => match self.policy.next_delay() {
                    Some(delay) => {
                        attempt += 1;
                        self.retries += 1;
                        std::thread::sleep(delay);
                    }
                    None => return Err(error),
                },
                Err(error) => return Err(error),
            }
        }
    }
}

fn decode_outcome(v: &JsonValue) -> Result<Result<Arc<FabricReport>, WireFailure>, ClientError> {
    match v.get("op").and_then(JsonValue::as_str) {
        Some("result") => {
            let report = v
                .get("report")
                .and_then(report_from_json)
                .ok_or_else(|| ClientError::Protocol("undecodable report".to_string()))?;
            Ok(Ok(Arc::new(report)))
        }
        Some("failed") => {
            let kind = v
                .get("kind")
                .and_then(JsonValue::as_str)
                .unwrap_or("unknown")
                .to_string();
            let detail = match kind.as_str() {
                "stall" => v
                    .get("diagnosis")
                    .map(JsonValue::to_json_string)
                    .unwrap_or_default(),
                "timeout" => format!(
                    "exceeded {} ms wall clock",
                    v.get("limit_ms").and_then(JsonValue::as_u64).unwrap_or(0)
                ),
                _ => v
                    .get("message")
                    .and_then(JsonValue::as_str)
                    .unwrap_or_default()
                    .to_string(),
            };
            Ok(Err(WireFailure {
                kind,
                run: v
                    .get("run")
                    .and_then(JsonValue::as_str)
                    .unwrap_or_default()
                    .to_string(),
                detail,
            }))
        }
        _ => unreachable!("caller dispatches on op"),
    }
}
