//! A blocking client for the serve protocol, used by `cellsim-client`
//! and the integration tests.
//!
//! The client submits a batch of [`RunSpec`]s, collects the streamed
//! per-run results back into request order, and verifies each result's
//! run-key fingerprint against the spec it answered — a transport-level
//! integrity check on top of the report's own canonical encoding.

use std::fmt;
use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;

use cellsim_core::diskcache::{key_fingerprint, report_from_json};
use cellsim_core::exec::RunSpec;
use cellsim_core::json::{self, JsonValue};
use cellsim_core::{FabricReport, FaultPlan};

use crate::framing::LineReader;
use crate::protocol::{encode_run_request, MAX_LINE_BYTES};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The daemon's response could not be understood (or the stream
    /// ended mid-batch — e.g. the daemon shut down).
    Protocol(String),
    /// The daemon refused the batch: admission queue past high water.
    Overloaded {
        /// Runs queued at the daemon when it refused.
        queued: u64,
        /// The daemon's high-water mark.
        high_water: u64,
    },
    /// The daemon refused the request as malformed (`error` line).
    Refused {
        /// The daemon's `reason` field (`protocol` / `bad-request`).
        reason: String,
        /// The daemon's `detail` field.
        detail: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(detail) => write!(f, "protocol: {detail}"),
            ClientError::Overloaded { queued, high_water } => write!(
                f,
                "server overloaded ({queued} runs queued, high water {high_water})"
            ),
            ClientError::Refused { reason, detail } => write!(f, "refused ({reason}): {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// One run's failure as reported over the wire.
#[derive(Debug, Clone)]
pub struct WireFailure {
    /// `"stall"` or `"panic"`.
    pub kind: String,
    /// The failed run's key in display form.
    pub run: String,
    /// Stall diagnosis JSON, or the panic message.
    pub detail: String,
}

impl fmt::Display for WireFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "run {} [{}]: {}", self.kind, self.run, self.detail)
    }
}

/// A completed batch: one entry per requested run, in request order.
pub struct BatchOutcome {
    /// Per-run outcomes.
    pub results: Vec<Result<Arc<FabricReport>, WireFailure>>,
    /// The daemon's `done` tallies.
    pub ok: usize,
    /// Runs that failed (stall or panic).
    pub failed: usize,
}

/// Daemon counters from a `stats` request.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Open client connections.
    pub connections: u64,
    /// Admitted, unstarted runs.
    pub queue_depth: u64,
    /// Admission high-water mark.
    pub high_water: u64,
    /// Distinct keys simulating right now.
    pub inflight: u64,
    /// Runs answered by parking on an in-flight simulation.
    pub deduped: u64,
    /// Runs admitted since daemon start.
    pub accepted: u64,
    /// Runs answered since daemon start.
    pub completed: u64,
    /// Batches rejected as overloaded.
    pub rejected: u64,
    /// Deepest the admission queue has ever been.
    pub queue_peak: u64,
    /// Daemon wall-clock uptime in milliseconds.
    pub uptime_ms: u64,
    /// Σ simulated cycles over every successful run answered.
    pub uptime_cycles: u64,
    /// Executor in-memory cache hits.
    pub cache_hits: u64,
    /// Executor misses (actual simulations).
    pub cache_misses: u64,
    /// `(entries, bytes)` census of the shared cache dir, when attached.
    pub disk_entries: Option<(u64, u64)>,
}

/// A connected protocol client. Not thread-safe; one per thread.
pub struct Client {
    reader: LineReader<BufReader<TcpStream>>,
    writer: TcpStream,
}

fn get_u64(v: &JsonValue, name: &str) -> Result<u64, ClientError> {
    v.get(name)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| ClientError::Protocol(format!("response missing field '{name}'")))
}

impl Client {
    /// Connects to a serving daemon.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from connecting.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: LineReader::new(BufReader::new(stream), MAX_LINE_BYTES),
            writer,
        })
    }

    fn send(&mut self, line: &str) -> Result<(), ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_response(&mut self) -> Result<JsonValue, ClientError> {
        let Some(line) = self.reader.next_line()? else {
            return Err(ClientError::Protocol(
                "connection closed mid-response".to_string(),
            ));
        };
        json::parse(&line).map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))
    }

    /// Submits `specs` as one batch and blocks until `done`, returning
    /// outcomes in request order. `faults` applies to the whole batch.
    ///
    /// # Errors
    ///
    /// [`ClientError`] — including [`ClientError::Overloaded`] when the
    /// daemon rejected the batch (nothing ran; retry later).
    pub fn run_batch(
        &mut self,
        id: &str,
        faults: Option<&FaultPlan>,
        specs: &[RunSpec],
    ) -> Result<BatchOutcome, ClientError> {
        self.run_batch_recorded(id, faults, specs, false)
    }

    /// Like [`Client::run_batch`], with `record` asking the daemon to
    /// persist a trace-store artifact per run under its `--run-dir`. A
    /// daemon without one refuses the batch ([`ClientError::Refused`]).
    ///
    /// # Errors
    ///
    /// [`ClientError`] — including [`ClientError::Overloaded`] when the
    /// daemon rejected the batch (nothing ran; retry later).
    pub fn run_batch_recorded(
        &mut self,
        id: &str,
        faults: Option<&FaultPlan>,
        specs: &[RunSpec],
        record: bool,
    ) -> Result<BatchOutcome, ClientError> {
        self.send(&encode_run_request(id, faults, specs, record))?;
        let mut results: Vec<Option<Result<Arc<FabricReport>, WireFailure>>> =
            (0..specs.len()).map(|_| None).collect();
        loop {
            let v = self.read_response()?;
            match v.get("op").and_then(JsonValue::as_str) {
                Some("accepted") => {}
                Some("result") | Some("failed") => {
                    let index = usize::try_from(get_u64(&v, "index")?)
                        .map_err(|_| ClientError::Protocol("index overflows".to_string()))?;
                    let spec = specs.get(index).ok_or_else(|| {
                        ClientError::Protocol(format!("result index {index} out of range"))
                    })?;
                    let fingerprint = v.get("key").and_then(JsonValue::as_str).unwrap_or("");
                    if fingerprint != format!("{:016x}", key_fingerprint(&spec.key)) {
                        return Err(ClientError::Protocol(format!(
                            "run {index} answered with a different run key"
                        )));
                    }
                    results[index] = Some(decode_outcome(&v)?);
                }
                Some("done") => {
                    let ok = get_u64(&v, "ok")? as usize;
                    let failed = get_u64(&v, "failed")? as usize;
                    let results: Vec<_> = results
                        .into_iter()
                        .enumerate()
                        .map(|(i, r)| {
                            r.ok_or_else(|| {
                                ClientError::Protocol(format!("done before result for run {i}"))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    return Ok(BatchOutcome {
                        results,
                        ok,
                        failed,
                    });
                }
                Some("reject") => {
                    return Err(ClientError::Overloaded {
                        queued: get_u64(&v, "queued")?,
                        high_water: get_u64(&v, "high_water")?,
                    })
                }
                Some("error") => {
                    return Err(ClientError::Refused {
                        reason: v
                            .get("reason")
                            .and_then(JsonValue::as_str)
                            .unwrap_or("unknown")
                            .to_string(),
                        detail: v
                            .get("detail")
                            .and_then(JsonValue::as_str)
                            .unwrap_or_default()
                            .to_string(),
                    })
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected response op {other:?}"
                    )))
                }
            }
        }
    }

    /// Fetches the daemon's counter snapshot.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or framing problems.
    pub fn stats(&mut self) -> Result<ServeStats, ClientError> {
        self.send("{\"op\":\"stats\"}")?;
        let v = self.read_response()?;
        if v.get("op").and_then(JsonValue::as_str) != Some("stats") {
            return Err(ClientError::Protocol(
                "expected a stats response".to_string(),
            ));
        }
        let cache = v
            .get("cache")
            .ok_or_else(|| ClientError::Protocol("stats missing 'cache'".to_string()))?;
        let disk_entries = match v.get("disk") {
            Some(JsonValue::Object(_)) => {
                let disk = v.get("disk").expect("just matched");
                Some((get_u64(disk, "entries")?, get_u64(disk, "bytes")?))
            }
            _ => None,
        };
        Ok(ServeStats {
            connections: get_u64(&v, "connections")?,
            queue_depth: get_u64(&v, "queue_depth")?,
            high_water: get_u64(&v, "high_water")?,
            inflight: get_u64(&v, "inflight")?,
            deduped: get_u64(&v, "deduped")?,
            accepted: get_u64(&v, "accepted")?,
            completed: get_u64(&v, "completed")?,
            rejected: get_u64(&v, "rejected")?,
            queue_peak: get_u64(&v, "queue_peak")?,
            uptime_ms: get_u64(&v, "uptime_ms")?,
            uptime_cycles: get_u64(&v, "uptime_cycles")?,
            cache_hits: get_u64(cache, "hits")?,
            cache_misses: get_u64(cache, "misses")?,
            disk_entries,
        })
    }
}

fn decode_outcome(v: &JsonValue) -> Result<Result<Arc<FabricReport>, WireFailure>, ClientError> {
    match v.get("op").and_then(JsonValue::as_str) {
        Some("result") => {
            let report = v
                .get("report")
                .and_then(report_from_json)
                .ok_or_else(|| ClientError::Protocol("undecodable report".to_string()))?;
            Ok(Ok(Arc::new(report)))
        }
        Some("failed") => {
            let kind = v
                .get("kind")
                .and_then(JsonValue::as_str)
                .unwrap_or("unknown")
                .to_string();
            let detail = match kind.as_str() {
                "stall" => v
                    .get("diagnosis")
                    .map(JsonValue::to_json_string)
                    .unwrap_or_default(),
                _ => v
                    .get("message")
                    .and_then(JsonValue::as_str)
                    .unwrap_or_default()
                    .to_string(),
            };
            Ok(Err(WireFailure {
                kind,
                run: v
                    .get("run")
                    .and_then(JsonValue::as_str)
                    .unwrap_or_default()
                    .to_string(),
                detail,
            }))
        }
        _ => unreachable!("caller dispatches on op"),
    }
}
