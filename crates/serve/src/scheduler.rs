//! Admission, fairness, and in-flight dedup for the daemon's runs.
//!
//! The scheduler sits between connection threads and the shared
//! [`SweepExecutor`]. Three properties the executor alone cannot give a
//! multi-tenant daemon live here:
//!
//! * **Bounded admission** — a global high-water mark on queued runs.
//!   A batch that would push past it is rejected whole (`overloaded`),
//!   so one greedy client cannot make the daemon buffer unbounded work.
//! * **Fairness** — per-connection queues drained round-robin, one run
//!   at a time: a 1 000-run batch from one client does not starve a
//!   9-run batch from another; their runs interleave.
//! * **In-flight dedup** — the executor's run cache collapses a key
//!   *after* its first simulation completes, but two clients asking for
//!   the same key *concurrently* would both miss and simulate twice. A
//!   worker that pops a run whose key is already being simulated parks
//!   the run as a waiter instead; when the first simulation completes,
//!   every waiter is answered from the same result.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use cellsim_core::exec::{RunError, RunKey, RunSpec, SweepExecutor};
use cellsim_core::FabricReport;

use crate::protocol;

/// One batch's delivery state, shared by all its jobs. Responses go out
/// through the owning connection's writer channel; a send to a
/// disconnected client is silently dropped (the simulation still
/// completes and populates the caches).
pub struct Batch {
    /// Client-chosen id, echoed on every line.
    pub id: String,
    /// The owning connection's writer channel.
    pub out: Sender<String>,
    /// The owning connection's id (per-connection stats tallies).
    pub conn: u64,
    /// Whether the batch asked for trace-store artifacts. A run is
    /// recorded when the job that *triggers* its simulation carries the
    /// flag; a recording batch whose key rides an already-in-flight
    /// unrecorded simulation gets its result without an artifact, and a
    /// later recording request for the same key re-simulates (the run
    /// dir gates cache hits on artifact completeness).
    pub record: bool,
    remaining: AtomicUsize,
    ok: AtomicUsize,
    failed: AtomicUsize,
}

impl Batch {
    /// A tracker expecting `runs` deliveries before `done` goes out.
    #[must_use]
    pub fn new(
        id: String,
        out: Sender<String>,
        conn: u64,
        record: bool,
        runs: usize,
    ) -> Arc<Batch> {
        Arc::new(Batch {
            id,
            out,
            conn,
            record,
            remaining: AtomicUsize::new(runs),
            ok: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
        })
    }
}

/// One queued run: a spec plus where its answer goes.
pub struct Job {
    /// The simulation point.
    pub spec: RunSpec,
    /// Index into the request's `runs` array.
    pub index: usize,
    /// The batch this run belongs to.
    pub batch: Arc<Batch>,
}

/// Admission refusal: the queue is past its high-water mark.
pub struct Overloaded {
    /// Runs queued at refusal time.
    pub queued: usize,
    /// The configured mark.
    pub high_water: usize,
}

/// One connection's lifetime tallies (survive the connection itself).
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnTally {
    /// The connection id.
    pub conn: u64,
    /// Runs admitted from this connection.
    pub accepted: u64,
    /// Runs answered to this connection.
    pub completed: u64,
}

/// Most connections tallied individually; beyond this, new connections
/// still serve but are no longer broken out in `per_connection`.
pub const MAX_TRACKED_CONNECTIONS: usize = 256;

/// Point-in-time scheduler counters (the `stats` response).
#[derive(Debug, Clone, Default)]
pub struct SchedulerStats {
    /// Runs admitted but not yet popped by a worker.
    pub queue_depth: usize,
    /// The admission high-water mark.
    pub high_water: usize,
    /// Deepest the queue has ever been (admitted, unstarted runs).
    pub queue_peak: usize,
    /// Distinct keys currently being simulated.
    pub inflight: usize,
    /// Runs answered by parking on another run's in-flight simulation.
    pub deduped: u64,
    /// Runs admitted since start.
    pub accepted: u64,
    /// Runs answered (result or failure) since start.
    pub completed: u64,
    /// Batches refused as overloaded since start.
    pub rejected: u64,
    /// Σ simulated `report.cycles` over every successful run answered —
    /// the daemon's uptime in simulated bus cycles.
    pub uptime_cycles: u64,
    /// Per-connection accepted/completed tallies, ordered by connection
    /// id; capped at [`MAX_TRACKED_CONNECTIONS`] entries.
    pub per_connection: Vec<ConnTally>,
}

struct Inner {
    /// Pending jobs per connection. Invariant: a connection id is in
    /// `rotation` iff its queue here is non-empty.
    queues: HashMap<u64, VecDeque<Job>>,
    rotation: VecDeque<u64>,
    queued: usize,
    /// Deepest `queued` has ever been.
    queue_peak: usize,
    /// Keys being simulated right now → runs parked on the result.
    inflight: HashMap<RunKey, Vec<Job>>,
    /// Lifetime per-connection tallies (accepted, completed), bounded
    /// by [`MAX_TRACKED_CONNECTIONS`].
    tallies: BTreeMap<u64, (u64, u64)>,
    shutdown: bool,
}

impl Inner {
    /// The tally slot for `conn`, unless the cap would be exceeded.
    fn tally(&mut self, conn: u64) -> Option<&mut (u64, u64)> {
        if self.tallies.len() >= MAX_TRACKED_CONNECTIONS && !self.tallies.contains_key(&conn) {
            return None;
        }
        Some(self.tallies.entry(conn).or_default())
    }
}

/// The daemon's work queue; see the module docs for the invariants.
pub struct Scheduler {
    exec: Arc<SweepExecutor>,
    inner: Mutex<Inner>,
    work: Condvar,
    high_water: usize,
    deduped: AtomicU64,
    accepted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    uptime_cycles: AtomicU64,
}

impl Scheduler {
    /// A scheduler feeding `exec`, admitting at most `high_water`
    /// queued runs (minimum 1).
    #[must_use]
    pub fn new(exec: Arc<SweepExecutor>, high_water: usize) -> Scheduler {
        Scheduler {
            exec,
            inner: Mutex::new(Inner {
                queues: HashMap::new(),
                rotation: VecDeque::new(),
                queued: 0,
                queue_peak: 0,
                inflight: HashMap::new(),
                tallies: BTreeMap::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            high_water: high_water.max(1),
            deduped: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            uptime_cycles: AtomicU64::new(0),
        }
    }

    /// The executor every worker simulates on.
    #[must_use]
    pub fn executor(&self) -> &SweepExecutor {
        &self.exec
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admits a whole batch or none of it. On success the `accepted`
    /// line is sent *under the queue lock*, before any worker can pop a
    /// job — guaranteeing it precedes every result line of the batch on
    /// the connection's channel.
    ///
    /// # Errors
    ///
    /// [`Overloaded`] when the batch would push the queue past the
    /// high-water mark; nothing is enqueued.
    pub fn submit(&self, conn: u64, batch: &Batch, jobs: Vec<Job>) -> Result<(), Overloaded> {
        let n = jobs.len();
        if n == 0 {
            let _ = batch.out.send(protocol::accepted_line(&batch.id, 0));
            let _ = batch.out.send(protocol::done_line(&batch.id, 0, 0));
            return Ok(());
        }
        {
            let mut inner = self.lock();
            if inner.queued + n > self.high_water {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(Overloaded {
                    queued: inner.queued,
                    high_water: self.high_water,
                });
            }
            let queue = inner.queues.entry(conn).or_default();
            let was_empty = queue.is_empty();
            queue.extend(jobs);
            if was_empty {
                inner.rotation.push_back(conn);
            }
            inner.queued += n;
            inner.queue_peak = inner.queue_peak.max(inner.queued);
            if let Some(tally) = inner.tally(conn) {
                tally.0 += n as u64;
            }
            let _ = batch.out.send(protocol::accepted_line(&batch.id, n));
        }
        self.accepted.fetch_add(n as u64, Ordering::Relaxed);
        self.work.notify_all();
        Ok(())
    }

    /// Pops the next run, rotating across connections. Caller holds the
    /// lock.
    fn pop(inner: &mut Inner) -> Option<Job> {
        let conn = inner.rotation.pop_front()?;
        let queue = inner
            .queues
            .get_mut(&conn)
            .expect("rotation names a live queue");
        let job = queue.pop_front().expect("rotated queue is non-empty");
        if queue.is_empty() {
            inner.queues.remove(&conn);
        } else {
            inner.rotation.push_back(conn);
        }
        inner.queued -= 1;
        Some(job)
    }

    /// One worker: pop → dedup-or-simulate → deliver, forever. The pop
    /// and the in-flight check share one critical section, so between
    /// two concurrent requesters of a key exactly one simulates and the
    /// other parks — never both.
    fn worker(&self) {
        loop {
            let job = {
                let mut inner = self.lock();
                loop {
                    if inner.shutdown {
                        return;
                    }
                    if let Some(job) = Self::pop(&mut inner) {
                        if let Some(waiters) = inner.inflight.get_mut(&job.spec.key) {
                            self.deduped.fetch_add(1, Ordering::Relaxed);
                            waiters.push(job);
                            continue;
                        }
                        inner.inflight.insert(job.spec.key.clone(), Vec::new());
                        break job;
                    }
                    inner = self
                        .work
                        .wait(inner)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            let key = job.spec.key.clone();
            let result = self
                .exec
                .try_run_recorded(vec![job.spec.clone()], job.batch.record)
                .pop()
                .expect("one result per submitted spec");
            // The wire carries the typed error; drain the executor's
            // copy so a resident daemon never accumulates failures.
            let _ = self.exec.take_failures();
            let waiters = self.lock().inflight.remove(&key).unwrap_or_default();
            self.deliver(&job, &result);
            for waiter in &waiters {
                self.deliver(waiter, &result);
            }
        }
    }

    /// Sends the run's line and, when it was the batch's last, `done`.
    fn deliver(&self, job: &Job, result: &Result<Arc<FabricReport>, RunError>) {
        let batch = &job.batch;
        let line = match result {
            Ok(report) => {
                batch.ok.fetch_add(1, Ordering::Relaxed);
                self.uptime_cycles
                    .fetch_add(report.cycles, Ordering::Relaxed);
                protocol::result_line(&batch.id, job.index, &job.spec.key, report)
            }
            Err(error) => {
                batch.failed.fetch_add(1, Ordering::Relaxed);
                protocol::failed_line(&batch.id, job.index, error)
            }
        };
        let _ = batch.out.send(line);
        self.completed.fetch_add(1, Ordering::Relaxed);
        if let Some(tally) = self.lock().tally(batch.conn) {
            tally.1 += 1;
        }
        if batch.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _ = batch.out.send(protocol::done_line(
                &batch.id,
                batch.ok.load(Ordering::Relaxed),
                batch.failed.load(Ordering::Relaxed),
            ));
        }
    }

    /// Spawns `workers` simulation threads draining this scheduler.
    pub fn start(self: &Arc<Scheduler>, workers: usize) -> Vec<JoinHandle<()>> {
        (0..workers.max(1))
            .map(|i| {
                let sched = Arc::clone(self);
                std::thread::Builder::new()
                    .name(format!("cellsim-serve-worker-{i}"))
                    .spawn(move || sched.worker())
                    .expect("worker thread spawns")
            })
            .collect()
    }

    /// Tells every worker to exit once its current run completes.
    /// Queued-but-unstarted runs are dropped; their clients see the
    /// connection close without `done`.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.work.notify_all();
    }

    /// Counter snapshot for the `stats` response.
    #[must_use]
    pub fn stats(&self) -> SchedulerStats {
        let inner = self.lock();
        SchedulerStats {
            queue_depth: inner.queued,
            high_water: self.high_water,
            queue_peak: inner.queue_peak,
            inflight: inner.inflight.len(),
            deduped: self.deduped.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            uptime_cycles: self.uptime_cycles.load(Ordering::Relaxed),
            per_connection: inner
                .tallies
                .iter()
                .map(|(&conn, &(accepted, completed))| ConnTally {
                    conn,
                    accepted,
                    completed,
                })
                .collect(),
        }
    }
}
