//! Admission, fairness, and in-flight dedup for the daemon's runs.
//!
//! The scheduler sits between connection threads and the shared
//! [`SweepExecutor`]. Three properties the executor alone cannot give a
//! multi-tenant daemon live here:
//!
//! * **Bounded admission** — a global high-water mark on queued runs.
//!   A batch that would push past it is rejected whole (`overloaded`),
//!   so one greedy client cannot make the daemon buffer unbounded work.
//! * **Fairness** — per-connection queues drained round-robin, one run
//!   at a time: a 1 000-run batch from one client does not starve a
//!   9-run batch from another; their runs interleave.
//! * **In-flight dedup** — the executor's run cache collapses a key
//!   *after* its first simulation completes, but two clients asking for
//!   the same key *concurrently* would both miss and simulate twice. A
//!   worker that pops a run whose key is already being simulated parks
//!   the run as a waiter instead; when the first simulation completes,
//!   every waiter is answered from the same result.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use cellsim_core::exec::{RunError, RunKey, RunSpec, SweepExecutor};
use cellsim_core::FabricReport;

use crate::protocol;

/// A connection's bounded, non-blocking response channel.
///
/// Scheduler workers are shared by every connection, so a send must
/// *never* block: a peer that stops reading would otherwise wedge the
/// workers for everyone. Sends go through `try_send` on a bounded
/// queue; the first overflow marks the connection **dead** — every
/// later send is dropped, and the writer thread, on noticing, writes a
/// final typed `slow-consumer` error line (best effort) and severs the
/// socket. A send to a vanished peer degrades the same way, minus the
/// goodbye.
pub struct ConnSink {
    tx: SyncSender<String>,
    dead: Arc<AtomicBool>,
    last_words: Arc<Mutex<Option<String>>>,
}

impl Clone for ConnSink {
    fn clone(&self) -> ConnSink {
        ConnSink {
            tx: self.tx.clone(),
            dead: Arc::clone(&self.dead),
            last_words: Arc::clone(&self.last_words),
        }
    }
}

impl ConnSink {
    /// A sink over a queue of at most `capacity` pending lines, plus
    /// the receiving end for the connection's writer thread.
    #[must_use]
    pub fn bounded(capacity: usize) -> (ConnSink, Receiver<String>) {
        let (tx, rx) = sync_channel(capacity.max(1));
        (
            ConnSink {
                tx,
                dead: Arc::new(AtomicBool::new(false)),
                last_words: Arc::new(Mutex::new(None)),
            },
            rx,
        )
    }

    /// Queues `line` for the writer; never blocks. Overflow kills the
    /// connection (see the type docs).
    pub fn send(&self, line: String) {
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        match self.tx.try_send(line) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                *self
                    .last_words
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner) = Some(protocol::error_line(
                    None,
                    "slow-consumer",
                    "response queue overflowed because the peer stopped reading; disconnecting",
                ));
                self.dead.store(true, Ordering::SeqCst);
            }
            Err(TrySendError::Disconnected(_)) => {
                self.dead.store(true, Ordering::SeqCst);
            }
        }
    }

    /// Whether the connection has been declared dead (slow consumer or
    /// vanished peer).
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }

    /// The writer thread's sender-free view of this sink. The writer
    /// must not hold a [`ConnSink`] clone: its embedded sender would
    /// keep the queue's channel open after every real sender hung up,
    /// and the writer would wait on its own sender forever.
    #[must_use]
    pub fn monitor(&self) -> ConnMonitor {
        ConnMonitor {
            dead: Arc::clone(&self.dead),
            last_words: Arc::clone(&self.last_words),
        }
    }
}

/// Liveness and the typed goodbye of a [`ConnSink`], without the
/// sender; see [`ConnSink::monitor`].
pub struct ConnMonitor {
    dead: Arc<AtomicBool>,
    last_words: Arc<Mutex<Option<String>>>,
}

impl ConnMonitor {
    /// Whether the connection has been declared dead.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }

    /// Declares the connection dead (e.g. the writer's own socket write
    /// failed).
    pub fn mark_dead(&self) {
        self.dead.store(true, Ordering::SeqCst);
    }

    /// The pending typed goodbye, if an overflow left one (taken
    /// exactly once).
    pub fn take_last_words(&self) -> Option<String> {
        self.last_words
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
    }
}

/// One batch's delivery state, shared by all its jobs. Responses go out
/// through the owning connection's [`ConnSink`]; a send to a dead
/// connection is silently dropped (the simulation still completes and
/// populates the caches).
pub struct Batch {
    /// Client-chosen id, echoed on every line.
    pub id: String,
    /// The owning connection's response sink.
    pub out: ConnSink,
    /// The owning connection's id (per-connection stats tallies).
    pub conn: u64,
    /// Whether the batch asked for trace-store artifacts. A run is
    /// recorded when the job that *triggers* its simulation carries the
    /// flag; a recording batch whose key rides an already-in-flight
    /// unrecorded simulation gets its result without an artifact, and a
    /// later recording request for the same key re-simulates (the run
    /// dir gates cache hits on artifact completeness).
    pub record: bool,
    /// The owning connection's count of unfinished batches; the idle
    /// reaper leaves a connection alone while this is nonzero.
    active: Arc<AtomicUsize>,
    remaining: AtomicUsize,
    ok: AtomicUsize,
    failed: AtomicUsize,
}

impl Batch {
    /// A tracker expecting `runs` deliveries before `done` goes out.
    /// `active` is the owning connection's unfinished-batch count.
    #[must_use]
    pub fn new(
        id: String,
        out: ConnSink,
        conn: u64,
        record: bool,
        runs: usize,
        active: Arc<AtomicUsize>,
    ) -> Arc<Batch> {
        Arc::new(Batch {
            id,
            out,
            conn,
            record,
            active,
            remaining: AtomicUsize::new(runs),
            ok: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
        })
    }
}

/// One queued run: a spec plus where its answer goes.
pub struct Job {
    /// The simulation point.
    pub spec: RunSpec,
    /// Index into the request's `runs` array.
    pub index: usize,
    /// The batch this run belongs to.
    pub batch: Arc<Batch>,
}

/// Admission refusal: the queue is past its high-water mark.
pub struct Overloaded {
    /// Runs queued at refusal time.
    pub queued: usize,
    /// The configured mark.
    pub high_water: usize,
}

/// Why [`Scheduler::submit`] refused a batch.
pub enum SubmitError {
    /// The queue is past its high-water mark; retry later.
    Overloaded(Overloaded),
    /// The daemon is draining: finishing what it has, admitting
    /// nothing new.
    Draining,
}

/// One connection's lifetime tallies (survive the connection itself).
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnTally {
    /// The connection id.
    pub conn: u64,
    /// Runs admitted from this connection.
    pub accepted: u64,
    /// Runs answered to this connection.
    pub completed: u64,
}

/// Most connections tallied individually; beyond this, new connections
/// still serve but are no longer broken out in `per_connection`.
pub const MAX_TRACKED_CONNECTIONS: usize = 256;

/// Point-in-time scheduler counters (the `stats` response).
#[derive(Debug, Clone, Default)]
pub struct SchedulerStats {
    /// Runs admitted but not yet popped by a worker.
    pub queue_depth: usize,
    /// The admission high-water mark.
    pub high_water: usize,
    /// Deepest the queue has ever been (admitted, unstarted runs).
    pub queue_peak: usize,
    /// Distinct keys currently being simulated.
    pub inflight: usize,
    /// Runs answered by parking on another run's in-flight simulation.
    pub deduped: u64,
    /// Runs admitted since start.
    pub accepted: u64,
    /// Runs answered (result or failure) since start.
    pub completed: u64,
    /// Batches refused as overloaded since start.
    pub rejected: u64,
    /// Σ simulated `report.cycles` over every successful run answered —
    /// the daemon's uptime in simulated bus cycles.
    pub uptime_cycles: u64,
    /// Runs converted to [`RunError::Timeout`] by the watchdog.
    pub timeouts: u64,
    /// Whether the scheduler is draining (reject-new, finish-in-flight).
    pub draining: bool,
    /// Per-connection accepted/completed tallies, ordered by connection
    /// id; capped at [`MAX_TRACKED_CONNECTIONS`] entries.
    pub per_connection: Vec<ConnTally>,
}

struct Inner {
    /// Pending jobs per connection. Invariant: a connection id is in
    /// `rotation` iff its queue here is non-empty.
    queues: HashMap<u64, VecDeque<Job>>,
    rotation: VecDeque<u64>,
    queued: usize,
    /// Deepest `queued` has ever been.
    queue_peak: usize,
    /// Keys being simulated right now → runs parked on the result.
    inflight: HashMap<RunKey, Vec<Job>>,
    /// Lifetime per-connection tallies (accepted, completed), bounded
    /// by [`MAX_TRACKED_CONNECTIONS`].
    tallies: BTreeMap<u64, (u64, u64)>,
    shutdown: bool,
}

impl Inner {
    /// The tally slot for `conn`, unless the cap would be exceeded.
    fn tally(&mut self, conn: u64) -> Option<&mut (u64, u64)> {
        if self.tallies.len() >= MAX_TRACKED_CONNECTIONS && !self.tallies.contains_key(&conn) {
            return None;
        }
        Some(self.tallies.entry(conn).or_default())
    }
}

/// The daemon's work queue; see the module docs for the invariants.
pub struct Scheduler {
    exec: Arc<SweepExecutor>,
    inner: Mutex<Inner>,
    work: Condvar,
    high_water: usize,
    /// Per-run wall-clock budget; `None` trusts every run to finish.
    run_timeout: Option<Duration>,
    draining: AtomicBool,
    deduped: AtomicU64,
    accepted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    uptime_cycles: AtomicU64,
    timeouts: AtomicU64,
}

impl Scheduler {
    /// A scheduler feeding `exec`, admitting at most `high_water`
    /// queued runs (minimum 1). A run that outlives `run_timeout` is
    /// answered as [`RunError::Timeout`] instead of blocking its worker
    /// forever.
    #[must_use]
    pub fn new(
        exec: Arc<SweepExecutor>,
        high_water: usize,
        run_timeout: Option<Duration>,
    ) -> Scheduler {
        Scheduler {
            exec,
            inner: Mutex::new(Inner {
                queues: HashMap::new(),
                rotation: VecDeque::new(),
                queued: 0,
                queue_peak: 0,
                inflight: HashMap::new(),
                tallies: BTreeMap::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            high_water: high_water.max(1),
            run_timeout,
            draining: AtomicBool::new(false),
            deduped: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            uptime_cycles: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
        }
    }

    /// The executor every worker simulates on.
    #[must_use]
    pub fn executor(&self) -> &SweepExecutor {
        &self.exec
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admits a whole batch or none of it. On success the `accepted`
    /// line is sent *under the queue lock*, before any worker can pop a
    /// job — guaranteeing it precedes every result line of the batch on
    /// the connection's channel.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the batch would push the queue
    /// past the high-water mark, [`SubmitError::Draining`] when the
    /// daemon is winding down; either way nothing is enqueued.
    pub fn submit(&self, conn: u64, batch: &Batch, jobs: Vec<Job>) -> Result<(), SubmitError> {
        if self.draining.load(Ordering::SeqCst) {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Draining);
        }
        let n = jobs.len();
        if n == 0 {
            batch.out.send(protocol::accepted_line(&batch.id, 0));
            batch.out.send(protocol::done_line(&batch.id, 0, 0));
            return Ok(());
        }
        {
            let mut inner = self.lock();
            if inner.queued + n > self.high_water {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::Overloaded(Overloaded {
                    queued: inner.queued,
                    high_water: self.high_water,
                }));
            }
            batch.active.fetch_add(1, Ordering::SeqCst);
            let queue = inner.queues.entry(conn).or_default();
            let was_empty = queue.is_empty();
            queue.extend(jobs);
            if was_empty {
                inner.rotation.push_back(conn);
            }
            inner.queued += n;
            inner.queue_peak = inner.queue_peak.max(inner.queued);
            if let Some(tally) = inner.tally(conn) {
                tally.0 += n as u64;
            }
            batch.out.send(protocol::accepted_line(&batch.id, n));
        }
        self.accepted.fetch_add(n as u64, Ordering::Relaxed);
        self.work.notify_all();
        Ok(())
    }

    /// Pops the next run, rotating across connections. Caller holds the
    /// lock.
    fn pop(inner: &mut Inner) -> Option<Job> {
        let conn = inner.rotation.pop_front()?;
        let queue = inner
            .queues
            .get_mut(&conn)
            .expect("rotation names a live queue");
        let job = queue.pop_front().expect("rotated queue is non-empty");
        if queue.is_empty() {
            inner.queues.remove(&conn);
        } else {
            inner.rotation.push_back(conn);
        }
        inner.queued -= 1;
        Some(job)
    }

    /// One worker: pop → dedup-or-simulate → deliver, forever. The pop
    /// and the in-flight check share one critical section, so between
    /// two concurrent requesters of a key exactly one simulates and the
    /// other parks — never both.
    fn worker(&self) {
        loop {
            let job = {
                let mut inner = self.lock();
                loop {
                    if inner.shutdown {
                        return;
                    }
                    if let Some(job) = Self::pop(&mut inner) {
                        if let Some(waiters) = inner.inflight.get_mut(&job.spec.key) {
                            self.deduped.fetch_add(1, Ordering::Relaxed);
                            waiters.push(job);
                            continue;
                        }
                        inner.inflight.insert(job.spec.key.clone(), Vec::new());
                        break job;
                    }
                    inner = self
                        .work
                        .wait(inner)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            let key = job.spec.key.clone();
            let result = self.run_watchdogged(&job);
            let waiters = self.lock().inflight.remove(&key).unwrap_or_default();
            self.deliver(&job, &result);
            for waiter in &waiters {
                self.deliver(waiter, &result);
            }
        }
    }

    /// Runs one job on the executor, bounded by the configured
    /// wall-clock budget when there is one.
    ///
    /// With a budget, the simulation runs on a detached thread and this
    /// worker waits at most `run_timeout` for its answer; a runaway run
    /// becomes [`RunError::Timeout`], delivered to the requester *and*
    /// every dedup-parked waiter, and the worker moves on. The runaway
    /// thread keeps simulating harmlessly — the scheduler state it
    /// would touch was already handed over, its channel send fails
    /// silently, and if it ever finishes, the executor caches the
    /// report so a retry is answered instantly.
    fn run_watchdogged(&self, job: &Job) -> Result<Arc<FabricReport>, RunError> {
        let run_inline = || {
            let result = self
                .exec
                .try_run_recorded(vec![job.spec.clone()], job.batch.record)
                .pop()
                .expect("one result per submitted spec");
            // The wire carries the typed error; drain the executor's
            // copy so a resident daemon never accumulates failures.
            let _ = self.exec.take_failures();
            result
        };
        let Some(limit) = self.run_timeout else {
            return run_inline();
        };
        let (tx, rx) = std::sync::mpsc::channel();
        let exec = Arc::clone(&self.exec);
        let spec = job.spec.clone();
        let record = job.batch.record;
        let spawned = std::thread::Builder::new()
            .name("cellsim-serve-run".to_string())
            .spawn(move || {
                let result = exec
                    .try_run_recorded(vec![spec], record)
                    .pop()
                    .expect("one result per submitted spec");
                let _ = exec.take_failures();
                let _ = tx.send(result);
            });
        match spawned {
            // No thread to watchdog: run unbounded rather than not at all.
            Err(_) => run_inline(),
            Ok(_detached) => match rx.recv_timeout(limit) {
                Ok(result) => result,
                Err(RecvTimeoutError::Timeout) => {
                    self.timeouts.fetch_add(1, Ordering::Relaxed);
                    Err(RunError::Timeout {
                        key: job.spec.key.clone(),
                        limit_ms: u64::try_from(limit.as_millis()).unwrap_or(u64::MAX),
                    })
                }
                Err(RecvTimeoutError::Disconnected) => Err(RunError::Panicked {
                    key: job.spec.key.clone(),
                    message: "watchdogged run thread died without a result".to_string(),
                }),
            },
        }
    }

    /// Sends the run's line and, when it was the batch's last, `done`.
    fn deliver(&self, job: &Job, result: &Result<Arc<FabricReport>, RunError>) {
        let batch = &job.batch;
        let line = match result {
            Ok(report) => {
                batch.ok.fetch_add(1, Ordering::Relaxed);
                self.uptime_cycles
                    .fetch_add(report.cycles, Ordering::Relaxed);
                protocol::result_line(&batch.id, job.index, &job.spec.key, report)
            }
            Err(error) => {
                batch.failed.fetch_add(1, Ordering::Relaxed);
                protocol::failed_line(&batch.id, job.index, error)
            }
        };
        batch.out.send(line);
        self.completed.fetch_add(1, Ordering::Relaxed);
        if let Some(tally) = self.lock().tally(batch.conn) {
            tally.1 += 1;
        }
        if batch.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            batch.out.send(protocol::done_line(
                &batch.id,
                batch.ok.load(Ordering::Relaxed),
                batch.failed.load(Ordering::Relaxed),
            ));
            batch.active.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Spawns `workers` simulation threads draining this scheduler.
    pub fn start(self: &Arc<Scheduler>, workers: usize) -> Vec<JoinHandle<()>> {
        (0..workers.max(1))
            .map(|i| {
                let sched = Arc::clone(self);
                std::thread::Builder::new()
                    .name(format!("cellsim-serve-worker-{i}"))
                    .spawn(move || sched.worker())
                    .expect("worker thread spawns")
            })
            .collect()
    }

    /// Flips the scheduler into drain mode: every later [`submit`]
    /// is refused with [`SubmitError::Draining`]; already-admitted work
    /// keeps running to completion.
    ///
    /// [`submit`]: Scheduler::submit
    pub fn drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Whether [`Scheduler::drain`] has been called.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Whether nothing is queued and nothing is simulating — every
    /// admitted run has been delivered (a drained daemon may exit).
    #[must_use]
    pub fn is_idle(&self) -> bool {
        let inner = self.lock();
        inner.queued == 0 && inner.inflight.is_empty()
    }

    /// Tells every worker to exit once its current run completes.
    /// Dedup-parked waiters ride their in-flight simulation to a normal
    /// delivery; queued-but-unstarted runs are dropped, but each
    /// affected batch is told so with one typed `shutting-down` error
    /// line — a client never sees a silent EOF for work the daemon
    /// accepted.
    pub fn shutdown(&self) {
        let orphans: Vec<Job> = {
            let mut inner = self.lock();
            inner.shutdown = true;
            inner.rotation.clear();
            inner.queued = 0;
            inner.queues.drain().flat_map(|(_, queue)| queue).collect()
        };
        self.work.notify_all();
        // One goodbye per distinct batch (a batch's jobs share one Arc).
        let mut told: Vec<*const Batch> = Vec::new();
        for job in &orphans {
            let batch = Arc::as_ptr(&job.batch);
            if !told.contains(&batch) {
                told.push(batch);
                job.batch
                    .out
                    .send(protocol::shutting_down_line(&job.batch.id));
                job.batch.active.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }

    /// Counter snapshot for the `stats` response.
    #[must_use]
    pub fn stats(&self) -> SchedulerStats {
        let inner = self.lock();
        SchedulerStats {
            queue_depth: inner.queued,
            high_water: self.high_water,
            queue_peak: inner.queue_peak,
            inflight: inner.inflight.len(),
            deduped: self.deduped.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            uptime_cycles: self.uptime_cycles.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            draining: self.draining.load(Ordering::SeqCst),
            per_connection: inner
                .tallies
                .iter()
                .map(|(&conn, &(accepted, completed))| ConnTally {
                    conn,
                    accepted,
                    completed,
                })
                .collect(),
        }
    }
}
