//! The `cellsim-serve` daemon binary.
//!
//! ```text
//! cellsim-serve [--addr HOST:PORT] [--jobs N] [--workers N]
//!               [--cache-dir <dir>] [--cache-capacity N] [--high-water N]
//!               [--run-dir <dir>] [--stats-log <file>] [--stats-interval-ms N]
//!               [--read-timeout-ms N] [--write-timeout-ms N]
//!               [--run-timeout-ms N] [--drain-grace-ms N] [--writer-queue N]
//!
//!   --addr HOST:PORT    listen address (default 127.0.0.1:7117;
//!                       use :0 for an ephemeral port)
//!   --jobs N            executor threads per simulation (default: all cores)
//!   --workers N         concurrent runs in flight (default: all cores)
//!   --cache-dir <dir>   shared persistent report cache (same format and
//!                       directory as repro --cache-dir)
//!   --cache-capacity N  in-memory report cache entry cap
//!   --high-water N      admission queue high-water mark (default 4096)
//!   --run-dir <dir>     trace-store run directory; batches sent with
//!                       "record":true persist one queryable artifact per
//!                       run here (same layout as repro --run-dir, read
//!                       with cellsim-trace). Without it, recording
//!                       batches are refused.
//!   --stats-log <file>  append one {"op":"stats"} snapshot line per
//!                       interval (and one at shutdown) — a stats history
//!                       with uptime and queue high-water marks
//!   --stats-interval-ms N  snapshot interval (default 60000)
//!   --read-timeout-ms N    socket read deadline; a connection idle past
//!                          it with nothing in flight is reaped
//!                          (0 = never, the default)
//!   --write-timeout-ms N   socket write deadline; one write blocked this
//!                          long marks the peer a slow consumer
//!                          (0 = never, the default)
//!   --run-timeout-ms N     per-run wall-clock watchdog; a run outliving
//!                          it is answered as a typed "timeout" failure
//!                          (0 = unbounded, the default)
//!   --drain-grace-ms N     how long a draining daemon waits for in-flight
//!                          work before exiting anyway (default 30000)
//!   --writer-queue N       response lines buffered per connection before
//!                          the peer is declared a slow consumer
//!                          (default 1024)
//!
//! exit codes: 0 clean shutdown, 3 bad invocation or I/O error
//! ```
//!
//! Prints exactly one line to stdout once the socket is listening —
//! `cellsim-serve listening on <addr>` — so scripts can scrape the
//! bound (possibly ephemeral) port. Everything else goes to stderr.
//!
//! **SIGTERM drains.** On Unix, SIGTERM is the out-of-band twin of the
//! wire's `{"op":"drain"}`: new batches are refused with reason
//! `draining`, in-flight work finishes, a final stats snapshot is
//! appended, and the process exits 0. A second SIGTERM (or SIGKILL) is
//! the impatient path.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

use cellsim_serve::{ServeOptions, Server};

/// Set by the SIGTERM handler; polled by a watcher thread that starts
/// the drain. Signal-handler-safe: the handler only stores a flag.
#[cfg(unix)]
static SIGTERM: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Installs a SIGTERM handler that flips [`SIGTERM`], without a libc
/// dependency: `signal(2)` is declared directly. The handler body is a
/// single atomic store, which is async-signal-safe.
#[cfg(unix)]
fn install_sigterm_handler() {
    extern "C" fn on_sigterm(_signo: i32) {
        SIGTERM.store(true, std::sync::atomic::Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM_NO: i32 = 15;
    let handler: extern "C" fn(i32) = on_sigterm;
    unsafe {
        signal(SIGTERM_NO, handler as usize);
    }
}

struct Args {
    addr: String,
    opts: ServeOptions,
}

fn parse_args() -> Result<Args, String> {
    let mut addr = "127.0.0.1:7117".to_string();
    let mut opts = ServeOptions::default();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |what: &str| argv.next().ok_or(format!("{arg} needs {what}"));
        match arg.as_str() {
            "--addr" => addr = value("an address")?,
            "--jobs" => {
                let n = value("a count")?;
                opts.jobs = n.parse().map_err(|_| format!("bad job count: {n}"))?;
            }
            "--workers" => {
                let n = value("a count")?;
                opts.workers = n.parse().map_err(|_| format!("bad worker count: {n}"))?;
            }
            "--cache-dir" => opts.cache_dir = Some(PathBuf::from(value("a directory")?)),
            "--cache-capacity" => {
                let n = value("a count")?;
                let cap: usize = n.parse().map_err(|_| format!("bad capacity: {n}"))?;
                if cap == 0 {
                    return Err("--cache-capacity must be >= 1".into());
                }
                opts.cache_capacity = cap;
            }
            "--high-water" => {
                let n = value("a count")?;
                let mark: usize = n.parse().map_err(|_| format!("bad high-water mark: {n}"))?;
                if mark == 0 {
                    return Err("--high-water must be >= 1".into());
                }
                opts.high_water = mark;
            }
            "--run-dir" => opts.run_dir = Some(PathBuf::from(value("a directory")?)),
            "--stats-log" => opts.stats_log = Some(PathBuf::from(value("a file")?)),
            "--stats-interval-ms" => {
                let n = value("a count")?;
                let ms: u64 = n.parse().map_err(|_| format!("bad interval: {n}"))?;
                if ms == 0 {
                    return Err("--stats-interval-ms must be >= 1".into());
                }
                opts.stats_interval = std::time::Duration::from_millis(ms);
            }
            "--read-timeout-ms" => {
                let n = value("a count")?;
                let ms: u64 = n.parse().map_err(|_| format!("bad timeout: {n}"))?;
                opts.read_timeout = (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            "--write-timeout-ms" => {
                let n = value("a count")?;
                let ms: u64 = n.parse().map_err(|_| format!("bad timeout: {n}"))?;
                opts.write_timeout = (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            "--run-timeout-ms" => {
                let n = value("a count")?;
                let ms: u64 = n.parse().map_err(|_| format!("bad timeout: {n}"))?;
                opts.run_timeout = (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            "--drain-grace-ms" => {
                let n = value("a count")?;
                let ms: u64 = n.parse().map_err(|_| format!("bad grace: {n}"))?;
                opts.drain_grace = std::time::Duration::from_millis(ms);
            }
            "--writer-queue" => {
                let n = value("a count")?;
                let cap: usize = n.parse().map_err(|_| format!("bad queue size: {n}"))?;
                if cap == 0 {
                    return Err("--writer-queue must be >= 1".into());
                }
                opts.writer_queue = cap;
            }
            "--help" | "-h" => {
                println!(
                    "cellsim-serve [--addr HOST:PORT] [--jobs N] [--workers N] \
                     [--cache-dir <dir>] [--cache-capacity N] [--high-water N] \
                     [--run-dir <dir>] [--stats-log <file>] [--stats-interval-ms N] \
                     [--read-timeout-ms N] [--write-timeout-ms N] [--run-timeout-ms N] \
                     [--drain-grace-ms N] [--writer-queue N]\n\n\
                     Long-running sweep daemon; see README §cellsim-serve for the \
                     line protocol. SIGTERM drains: reject new batches, finish \
                     in-flight work, exit 0."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Args { addr, opts })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(3);
        }
    };
    let server = match Server::bind(args.addr.as_str(), &args.opts) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: could not bind {}: {e}", args.addr);
            return ExitCode::from(3);
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            println!("cellsim-serve listening on {addr}");
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(3);
        }
    }
    if let Some(dir) = &args.opts.cache_dir {
        eprintln!("cellsim-serve: cache dir {}", dir.display());
    }
    if let Some(dir) = &args.opts.run_dir {
        eprintln!("cellsim-serve: run dir {}", dir.display());
    }
    if let Some(path) = &args.opts.stats_log {
        eprintln!(
            "cellsim-serve: stats log {} every {} ms",
            path.display(),
            args.opts.stats_interval.as_millis()
        );
    }
    #[cfg(unix)]
    {
        install_sigterm_handler();
        if let Ok(handle) = server.handle() {
            let _ = std::thread::Builder::new()
                .name("cellsim-serve-sigterm".to_string())
                .spawn(move || loop {
                    if SIGTERM.load(std::sync::atomic::Ordering::SeqCst) {
                        eprintln!("cellsim-serve: SIGTERM, draining");
                        handle.drain();
                        return;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(50));
                });
        }
    }
    if let Err(e) = server.serve() {
        eprintln!("error: {e}");
        return ExitCode::from(3);
    }
    ExitCode::SUCCESS
}
