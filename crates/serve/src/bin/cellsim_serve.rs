//! The `cellsim-serve` daemon binary.
//!
//! ```text
//! cellsim-serve [--addr HOST:PORT] [--jobs N] [--workers N]
//!               [--cache-dir <dir>] [--cache-capacity N] [--high-water N]
//!               [--run-dir <dir>] [--stats-log <file>] [--stats-interval-ms N]
//!
//!   --addr HOST:PORT    listen address (default 127.0.0.1:7117;
//!                       use :0 for an ephemeral port)
//!   --jobs N            executor threads per simulation (default: all cores)
//!   --workers N         concurrent runs in flight (default: all cores)
//!   --cache-dir <dir>   shared persistent report cache (same format and
//!                       directory as repro --cache-dir)
//!   --cache-capacity N  in-memory report cache entry cap
//!   --high-water N      admission queue high-water mark (default 4096)
//!   --run-dir <dir>     trace-store run directory; batches sent with
//!                       "record":true persist one queryable artifact per
//!                       run here (same layout as repro --run-dir, read
//!                       with cellsim-trace). Without it, recording
//!                       batches are refused.
//!   --stats-log <file>  append one {"op":"stats"} snapshot line per
//!                       interval (and one at shutdown) — a stats history
//!                       with uptime and queue high-water marks
//!   --stats-interval-ms N  snapshot interval (default 60000)
//!
//! exit codes: 0 clean shutdown, 3 bad invocation or I/O error
//! ```
//!
//! Prints exactly one line to stdout once the socket is listening —
//! `cellsim-serve listening on <addr>` — so scripts can scrape the
//! bound (possibly ephemeral) port. Everything else goes to stderr.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

use cellsim_serve::{ServeOptions, Server};

struct Args {
    addr: String,
    opts: ServeOptions,
}

fn parse_args() -> Result<Args, String> {
    let mut addr = "127.0.0.1:7117".to_string();
    let mut opts = ServeOptions::default();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |what: &str| argv.next().ok_or(format!("{arg} needs {what}"));
        match arg.as_str() {
            "--addr" => addr = value("an address")?,
            "--jobs" => {
                let n = value("a count")?;
                opts.jobs = n.parse().map_err(|_| format!("bad job count: {n}"))?;
            }
            "--workers" => {
                let n = value("a count")?;
                opts.workers = n.parse().map_err(|_| format!("bad worker count: {n}"))?;
            }
            "--cache-dir" => opts.cache_dir = Some(PathBuf::from(value("a directory")?)),
            "--cache-capacity" => {
                let n = value("a count")?;
                let cap: usize = n.parse().map_err(|_| format!("bad capacity: {n}"))?;
                if cap == 0 {
                    return Err("--cache-capacity must be >= 1".into());
                }
                opts.cache_capacity = cap;
            }
            "--high-water" => {
                let n = value("a count")?;
                let mark: usize = n.parse().map_err(|_| format!("bad high-water mark: {n}"))?;
                if mark == 0 {
                    return Err("--high-water must be >= 1".into());
                }
                opts.high_water = mark;
            }
            "--run-dir" => opts.run_dir = Some(PathBuf::from(value("a directory")?)),
            "--stats-log" => opts.stats_log = Some(PathBuf::from(value("a file")?)),
            "--stats-interval-ms" => {
                let n = value("a count")?;
                let ms: u64 = n.parse().map_err(|_| format!("bad interval: {n}"))?;
                if ms == 0 {
                    return Err("--stats-interval-ms must be >= 1".into());
                }
                opts.stats_interval = std::time::Duration::from_millis(ms);
            }
            "--help" | "-h" => {
                println!(
                    "cellsim-serve [--addr HOST:PORT] [--jobs N] [--workers N] \
                     [--cache-dir <dir>] [--cache-capacity N] [--high-water N] \
                     [--run-dir <dir>] [--stats-log <file>] [--stats-interval-ms N]\n\n\
                     Long-running sweep daemon; see README §cellsim-serve for the \
                     line protocol."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Args { addr, opts })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(3);
        }
    };
    let server = match Server::bind(args.addr.as_str(), &args.opts) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: could not bind {}: {e}", args.addr);
            return ExitCode::from(3);
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            println!("cellsim-serve listening on {addr}");
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(3);
        }
    }
    if let Some(dir) = &args.opts.cache_dir {
        eprintln!("cellsim-serve: cache dir {}", dir.display());
    }
    if let Some(dir) = &args.opts.run_dir {
        eprintln!("cellsim-serve: run dir {}", dir.display());
    }
    if let Some(path) = &args.opts.stats_log {
        eprintln!(
            "cellsim-serve: stats log {} every {} ms",
            path.display(),
            args.opts.stats_interval.as_millis()
        );
    }
    if let Err(e) = server.serve() {
        eprintln!("error: {e}");
        return ExitCode::from(3);
    }
    ExitCode::SUCCESS
}
