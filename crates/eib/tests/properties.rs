//! Property tests for the EIB: routing invariants and arbitration
//! liveness/conservation.

use cellsim_eib::{Eib, EibConfig, Element, FlowClass, RingOccupancy, Topology, TransferRequest};
use cellsim_kernel::Cycle;
use proptest::prelude::*;

fn element() -> impl Strategy<Value = Element> {
    prop_oneof![
        Just(Element::Ppe),
        (0u8..8).prop_map(Element::Spe),
        Just(Element::Mic),
        Just(Element::Ioif0),
        Just(Element::Ioif1),
    ]
}

fn distinct_pair() -> impl Strategy<Value = (Element, Element)> {
    (element(), element()).prop_filter("distinct", |(a, b)| a != b)
}

proptest! {
    /// Routing invariants on the production topology: at most halfway,
    /// segment count equals hop count, and CW/CCW hops sum to the ring.
    #[test]
    fn routes_are_shortest_and_consistent((a, b) in distinct_pair()) {
        let t = Topology::cbe();
        let routes = t.routes(a, b);
        prop_assert!(!routes.is_empty());
        prop_assert!(routes[0].hops == t.distance(a, b));
        for r in &routes {
            prop_assert!(r.hops >= 1 && r.hops <= 6);
            prop_assert_eq!(r.segments.count_ones() as usize, r.hops);
        }
        // Reverse direction has the same shortest distance.
        prop_assert_eq!(t.distance(a, b), t.distance(b, a));
    }

    /// Opposite routes (a→b clockwise vs b→a counter-clockwise) cover the
    /// same wire segments.
    #[test]
    fn reverse_route_uses_the_same_segments((a, b) in distinct_pair()) {
        let t = Topology::cbe();
        let fwd = &t.routes(a, b)[0];
        let back = t
            .routes(b, a)
            .into_iter()
            .find(|r| r.hops == fwd.hops && r.direction != fwd.direction);
        if let Some(back) = back {
            prop_assert_eq!(back.segments, fwd.segments);
        }
    }

    /// Pipelined staggered segment order visits exactly the mask, in hop
    /// order.
    #[test]
    fn segments_in_order_covers_the_mask((a, b) in distinct_pair()) {
        let t = Topology::cbe();
        for route in t.routes(a, b) {
            let mut mask = 0u32;
            let mut last_k = None;
            for (k, seg) in route.segments_in_order() {
                if let Some(prev) = last_k {
                    prop_assert_eq!(k, prev + 1);
                }
                last_k = Some(k);
                mask |= 1 << seg;
            }
            prop_assert_eq!(mask, route.segments);
        }
    }

    /// Liveness + conservation: every submitted transfer is eventually
    /// granted exactly once, under either occupancy model, and the total
    /// granted bytes match.
    #[test]
    fn arbitration_grants_everything_once(
        pairs in proptest::collection::vec(distinct_pair(), 1..40),
        pipelined in any::<bool>(),
    ) {
        let cfg = EibConfig {
            occupancy: if pipelined {
                RingOccupancy::Pipelined
            } else {
                RingOccupancy::CircuitHold
            },
            ..EibConfig::default()
        };
        let mut eib = Eib::new(Topology::cbe(), cfg);
        for (i, &(src, dst)) in pairs.iter().enumerate() {
            eib.submit(
                Cycle::ZERO,
                i as u64,
                TransferRequest { src, dst, bytes: 128, class: FlowClass::MfcOut },
            );
        }
        let mut now = Cycle::ZERO;
        let mut tokens = Vec::new();
        let mut rounds = 0;
        loop {
            for (tok, grant) in eib.arbitrate(now) {
                prop_assert!(grant.start >= now);
                prop_assert!(grant.delivered_at >= grant.wire_done);
                tokens.push(tok);
            }
            if !eib.has_pending() {
                break;
            }
            now = eib.next_release_after(now).expect("pending implies release");
            rounds += 1;
            prop_assert!(rounds < 10_000, "arbitration did not converge");
        }
        tokens.sort_unstable();
        let expected: Vec<u64> = (0..pairs.len() as u64).collect();
        prop_assert_eq!(tokens, expected);
        prop_assert_eq!(eib.stats().grants, pairs.len() as u64);
        prop_assert_eq!(eib.stats().bytes, 128 * pairs.len() as u64);
    }
}
