//! The central data arbiter: ring selection, port reservation, fairness.

use std::collections::VecDeque;

use cellsim_faults::EibFaults;
use cellsim_kernel::Cycle;

use crate::ring::{Ring, RingId};
use crate::topology::{Direction, Element, Route, Topology};

/// How a granted transfer occupies its path segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RingOccupancy {
    /// The arbiter holds every segment of the path from grant until
    /// delivery. This matches the behaviour of the central data arbiter
    /// (a segment granted to a transfer is not re-granted mid-flight) and
    /// calibrates the eight-SPE contention the paper measures.
    #[default]
    CircuitHold,
    /// Idealized wormhole pipelining: each segment is busy only while the
    /// packet streams across it, staggered by hop position. An ablation
    /// mode: it under-estimates conflicts at high load.
    Pipelined,
}

/// The on-chip data source feeding a ramp's outbound port.
///
/// A ramp's 16-byte send bus is multiplexed between internal sources: an
/// SPE ramp sends both its own MFC's put data and Local-Store read
/// responses for remote gets; the MIC sends memory read data. Switching
/// sources costs dead cycles ([`EibConfig::source_switch_penalty`]) —
/// the structural reason the paper's all-active "cycle" experiment falls
/// well below the half-passive "couples" experiment at the same port
/// demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowClass {
    /// Outbound MFC data (the data phase of a put).
    MfcOut,
    /// A Local-Store read serving some other element's get.
    LsRead,
    /// A memory read leaving the MIC or IOIF.
    MemRead,
}

/// Structural parameters of the bus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EibConfig {
    /// Data rings per direction (2 on the CBE, 4 rings total).
    pub rings_per_direction: usize,
    /// Bytes each ring moves per bus cycle (16 on the CBE).
    pub bytes_per_cycle: u32,
    /// Extra delivery latency per hop, in bus cycles.
    pub hop_latency: u64,
    /// Segment reservation policy.
    pub occupancy: RingOccupancy,
    /// Dead cycles when a ramp's outbound port switches between
    /// different [`FlowClass`] sources.
    pub source_switch_penalty: u64,
}

impl Default for EibConfig {
    fn default() -> Self {
        EibConfig {
            rings_per_direction: 2,
            bytes_per_cycle: 16,
            hop_latency: 1,
            occupancy: RingOccupancy::CircuitHold,
            source_switch_penalty: 0,
        }
    }
}

/// A request to move one packet of payload between two bus elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferRequest {
    /// Sending ramp.
    pub src: Element,
    /// Receiving ramp.
    pub dst: Element,
    /// Payload size in bytes (≤128 on the CBE; validated by the MFC, not
    /// here — the bus moves whatever it is granted).
    pub bytes: u32,
    /// Which internal source feeds the send port.
    pub class: FlowClass,
}

/// A granted transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// Which ring carries the packet.
    pub ring: RingId,
    /// Travel direction.
    pub direction: Direction,
    /// Hops crossed.
    pub hops: usize,
    /// Cycle the wire time began.
    pub start: Cycle,
    /// Cycle the ring segments and ports become free again.
    pub wire_done: Cycle,
    /// Cycle the payload is available at the destination
    /// (`wire_done` + hop latency).
    pub delivered_at: Cycle,
    /// Cycles the request sat in the arbiter's queue before this grant
    /// (submit → grant), for per-command latency attribution.
    pub waited: u64,
}

/// Counters the experiments use to explain their results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EibStats {
    /// Transfers granted.
    pub grants: u64,
    /// Total bytes granted.
    pub bytes: u64,
    /// Cycles requests spent queued waiting for a ring.
    pub wait_cycles: u64,
    /// Σ (segments × cycles) reserved — a ring-occupancy measure.
    pub segment_cycles: u64,
}

/// Per-ring counters (rings are indexed as in [`RingId`]: clockwise rings
/// first, then counter-clockwise).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Transfers this ring carried.
    pub grants: u64,
    /// Payload bytes this ring carried.
    pub bytes: u64,
    /// Cycles this ring spent moving data (wire time, including any
    /// source-switch dead cycles ahead of the payload).
    pub busy_cycles: u64,
}

#[derive(Debug)]
struct Pending {
    token: u64,
    req: TransferRequest,
    enqueued: Cycle,
    /// Ramp indices and shortest-route direction, resolved once at
    /// submit so the arbitration loop never repeats the lookups.
    src_ramp: usize,
    dst_ramp: usize,
    dir: Direction,
    /// Whether the transfer touches the MIC (memory-priority pass).
    mic: bool,
}

/// Precomputed admissible routes for one (src, dst) ramp pair: at most
/// two exist (the second only on an exact halfway tie), stored inline so
/// the hot arbitration path never allocates.
#[derive(Debug, Clone, Copy)]
struct RouteSet {
    routes: [Route; 2],
    len: u8,
}

impl RouteSet {
    fn as_slice(&self) -> &[Route] {
        &self.routes[..usize::from(self.len)]
    }
}

/// The Element Interconnect Bus: four rings plus the central data arbiter.
///
/// Usage follows a submit/arbitrate/kick protocol designed for an outer
/// discrete-event loop:
///
/// 1. [`Eib::submit`] queues a transfer request.
/// 2. [`Eib::arbitrate`] grants every currently satisfiable request, in
///    priority order (memory traffic first, then oldest first), and
///    returns the grants tagged with the caller's tokens.
/// 3. If requests remain queued, [`Eib::next_release_after`] says when a
///    reservation next expires so the caller can schedule a re-arbitration
///    event.
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct Eib {
    topology: Topology,
    /// Dense `(src_ramp, dst_ramp)` route cache; `routes()` allocates,
    /// and arbitration consults the same handful of pairs millions of
    /// times per run.
    route_table: Vec<RouteSet>,
    cfg: EibConfig,
    rings: Vec<Ring>,
    send_free: Vec<Cycle>,
    recv_free: Vec<Cycle>,
    last_send_class: Vec<Option<FlowClass>>,
    pending: VecDeque<Pending>,
    stats: EibStats,
    ring_stats: Vec<RingStats>,
    faults: EibFaults,
}

impl Eib {
    /// Creates an idle bus over `topology`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero rings or zero bytes per cycle.
    pub fn new(topology: Topology, cfg: EibConfig) -> Eib {
        assert!(
            cfg.rings_per_direction > 0,
            "need at least one ring per direction"
        );
        assert!(cfg.bytes_per_cycle > 0, "ring width must be non-zero");
        let n = topology.ramp_count();
        let mut rings = Vec::with_capacity(cfg.rings_per_direction * 2);
        for _ in 0..cfg.rings_per_direction {
            rings.push(Ring::new(Direction::Clockwise, n));
        }
        for _ in 0..cfg.rings_per_direction {
            rings.push(Ring::new(Direction::CounterClockwise, n));
        }
        let ring_count = rings.len();
        let dummy = Route {
            direction: Direction::Clockwise,
            hops: 0,
            segments: 0,
            src_ramp: 0,
            ring_len: n,
        };
        let mut route_table = vec![
            RouteSet {
                routes: [dummy; 2],
                len: 0,
            };
            n * n
        ];
        for (a, &src) in topology.elements().iter().enumerate() {
            for (b, &dst) in topology.elements().iter().enumerate() {
                if a == b {
                    continue;
                }
                let routes = topology.routes(src, dst);
                let set = &mut route_table[a * n + b];
                set.len = routes.len() as u8;
                set.routes[..routes.len()].copy_from_slice(&routes);
            }
        }
        Eib {
            topology,
            route_table,
            cfg,
            rings,
            send_free: vec![Cycle::ZERO; n],
            recv_free: vec![Cycle::ZERO; n],
            last_send_class: vec![None; n],
            pending: VecDeque::new(),
            stats: EibStats::default(),
            ring_stats: vec![RingStats::default(); ring_count],
            faults: EibFaults::default(),
        }
    }

    /// Installs fault windows (ring outages, bus derating). Faults gate
    /// only *new* grants: transfers already on a ring when a window
    /// opens drain at the rate they were granted with. Outages naming
    /// rings this bus does not have are inert.
    pub fn set_faults(&mut self, faults: EibFaults) {
        self.faults = faults;
    }

    /// The bus topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The structural configuration.
    pub fn config(&self) -> &EibConfig {
        &self.cfg
    }

    /// Occupancy and fairness counters.
    pub fn stats(&self) -> &EibStats {
        &self.stats
    }

    /// Per-ring counters, indexed by [`RingId`] (clockwise rings first).
    pub fn ring_stats(&self) -> &[RingStats] {
        &self.ring_stats
    }

    /// Queues a transfer request. `token` is an opaque caller identifier
    /// returned with the eventual grant.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or either endpoint is not on the bus.
    pub fn submit(&mut self, now: Cycle, token: u64, req: TransferRequest) {
        // Resolve endpoints eagerly so errors point at the submitter —
        // and so arbitration never repeats the lookups.
        let src = self.topology.ramp_of(req.src).expect("src not on bus").0;
        let dst = self.topology.ramp_of(req.dst).expect("dst not on bus").0;
        assert!(src != dst, "route requested from {} to itself", req.src);
        let n = self.topology.ramp_count();
        let dir = self.route_table[src * n + dst].routes[0].direction;
        self.pending.push_back(Pending {
            token,
            req,
            enqueued: now,
            src_ramp: src,
            dst_ramp: dst,
            dir,
            mic: req.src.is_mic() || req.dst.is_mic(),
        });
    }

    /// Whether any requests are waiting for a ring.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Grants every satisfiable pending request at `now`.
    ///
    /// Requests touching the MIC are considered first (the hardware gives
    /// memory traffic the highest priority). Within a class the arbiter's
    /// grant queue is FIFO **per ring direction**: once a request bound
    /// for clockwise rings blocks, younger clockwise requests wait behind
    /// it (head-of-line blocking). This is what makes sixteen concurrent
    /// streams (the paper's 8-SPE cycle) markedly less efficient than
    /// eight streams (the couples experiment) at the same aggregate
    /// demand.
    pub fn arbitrate(&mut self, now: Cycle) -> Vec<(u64, Grant)> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        let mut granted = Vec::new();
        // Two passes: memory-priority first, then the rest.
        for memory_pass in [true, false] {
            let mut blocked_cw = false;
            let mut blocked_ccw = false;
            let mut i = 0;
            while i < self.pending.len() {
                let p = &self.pending[i];
                if p.mic != memory_pass {
                    i += 1;
                    continue;
                }
                let candidate = p.req;
                let (src, dst) = (p.src_ramp, p.dst_ramp);
                let blocked = match p.dir {
                    Direction::Clockwise => &mut blocked_cw,
                    Direction::CounterClockwise => &mut blocked_ccw,
                };
                if *blocked {
                    i += 1;
                    continue;
                }
                if let Some(mut grant) = self.try_grant(now, &candidate, src, dst) {
                    let p = self.pending.remove(i).expect("index in range");
                    grant.waited = now.saturating_since(p.enqueued);
                    self.stats.wait_cycles += grant.waited;
                    granted.push((p.token, grant));
                } else {
                    *blocked = true;
                    i += 1;
                }
            }
        }
        granted
    }

    /// Attempts to grant one request immediately; reserves resources on
    /// success.
    fn try_grant(
        &mut self,
        now: Cycle,
        req: &TransferRequest,
        src: usize,
        dst: usize,
    ) -> Option<Grant> {
        if self.send_free[src] > now {
            return None;
        }
        // Switching the outbound multiplexer between internal sources
        // costs dead cycles on the send port ahead of the data.
        let switch = match self.last_send_class[src] {
            Some(prev) if prev != req.class => self.cfg.source_switch_penalty,
            _ => 0,
        };
        let wire = u64::from(req.bytes.div_ceil(self.cfg.bytes_per_cycle));
        // Inside a derating window every ring moves data at reduced
        // capacity, so the same payload holds the wire longer.
        let capacity = self.faults.capacity_percent(now.as_u64());
        let wire = if capacity < 100 {
            (wire * 100).div_ceil(u64::from(capacity))
        } else {
            wire
        };
        let duration = wire + switch;
        let set = self.route_table[src * self.send_free.len() + dst];
        for route in set.as_slice() {
            // The head arrives at the destination after the hop latency;
            // the receive port must be free from then on.
            let arrival = now + route.hops as u64 * self.cfg.hop_latency;
            if self.recv_free[dst] > arrival {
                continue;
            }
            for (idx, ring) in self.rings.iter_mut().enumerate() {
                if ring.direction() != route.direction {
                    continue;
                }
                if self.faults.ring_out(idx, now.as_u64()) {
                    continue;
                }
                let wire_done = now + duration;
                let delivered_at = arrival + duration;
                match self.cfg.occupancy {
                    RingOccupancy::CircuitHold => {
                        if !ring.path_free(route.segments, now) {
                            continue;
                        }
                        ring.reserve(route.segments, now, delivered_at);
                    }
                    RingOccupancy::Pipelined => {
                        if !ring.route_free(route, now, self.cfg.hop_latency) {
                            continue;
                        }
                        ring.reserve_route(route, now, duration, self.cfg.hop_latency);
                    }
                }
                self.send_free[src] = wire_done;
                self.recv_free[dst] = delivered_at;
                self.last_send_class[src] = Some(req.class);
                self.stats.grants += 1;
                self.stats.bytes += u64::from(req.bytes);
                self.stats.segment_cycles += route.hops as u64 * duration;
                let ring_stats = &mut self.ring_stats[idx];
                ring_stats.grants += 1;
                ring_stats.bytes += u64::from(req.bytes);
                ring_stats.busy_cycles += duration;
                return Some(Grant {
                    ring: RingId(idx),
                    direction: route.direction,
                    hops: route.hops,
                    start: now,
                    wire_done,
                    delivered_at,
                    waited: 0, // stamped by `arbitrate` from the queue entry
                });
            }
        }
        None
    }

    /// The earliest reservation expiry strictly after `now`, across all
    /// rings and ports — the time at which a blocked request could next be
    /// granted. `None` when the bus is idle after `now`.
    pub fn next_release_after(&self, now: Cycle) -> Option<Cycle> {
        let ring_next = self
            .rings
            .iter()
            .filter_map(|r| r.next_release_after(now))
            .min();
        let port_next = self
            .send_free
            .iter()
            .chain(self.recv_free.iter())
            .copied()
            .filter(|&t| t > now)
            .min();
        // Fault windows open and close independently of reservations: a
        // request blocked only by a ring outage must still get a wake-up
        // at the window boundary.
        let fault_next = self
            .faults
            .next_boundary_after(now.as_u64())
            .map(Cycle::new);
        [ring_next, port_next, fault_next]
            .into_iter()
            .flatten()
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> Eib {
        Eib::new(Topology::cbe(), EibConfig::default())
    }

    fn req(src: Element, dst: Element) -> TransferRequest {
        TransferRequest {
            src,
            dst,
            bytes: 128,
            class: FlowClass::MfcOut,
        }
    }

    #[test]
    fn single_transfer_gets_the_wire_immediately() {
        let mut eib = bus();
        eib.submit(Cycle::ZERO, 7, req(Element::spe(0), Element::Mic));
        let grants = eib.arbitrate(Cycle::ZERO);
        assert_eq!(grants.len(), 1);
        let (token, g) = grants[0];
        assert_eq!(token, 7);
        assert_eq!(g.hops, 1); // SPE0 is adjacent to the MIC.
        assert_eq!(g.wire_done, Cycle::new(8)); // 128 B / 16 B-per-cycle.
        assert_eq!(g.delivered_at, Cycle::new(9)); // + 1 hop latency.
    }

    #[test]
    fn four_rings_carry_four_overlapping_paths_per_direction_pairwise() {
        let mut eib = bus();
        // Two transfers over the same clockwise segments need two rings.
        eib.submit(Cycle::ZERO, 0, req(Element::Ppe, Element::spe(5)));
        eib.submit(Cycle::ZERO, 1, req(Element::Ppe, Element::spe(5)));
        // Both cannot share the PPE send port -> only one grant.
        let g = eib.arbitrate(Cycle::ZERO);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn overlapping_same_direction_transfers_use_both_rings_then_block() {
        let mut eib = bus();
        // Three transfers with distinct endpoints but overlapping CW paths:
        // PPE(0)->SPE7(4), SPE1(1)->SPE5(3), SPE3(2)->IOIF1(5): all cross
        // segment 2..3 region.
        eib.submit(Cycle::ZERO, 0, req(Element::Ppe, Element::spe(7)));
        eib.submit(Cycle::ZERO, 1, req(Element::spe(1), Element::spe(5)));
        eib.submit(Cycle::ZERO, 2, req(Element::spe(3), Element::Ioif1));
        let grants = eib.arbitrate(Cycle::ZERO);
        // All three overlap on segment 2 (ramp2->ramp3); only 2 CW rings.
        assert_eq!(grants.len(), 2);
        assert!(eib.has_pending());
        // Retry at each release until a ring's segments free up. Under
        // circuit-hold the SPE1->SPE5 transfer (2 hops) releases at
        // delivery, cycle 10.
        let mut now = Cycle::ZERO;
        loop {
            now = eib.next_release_after(now).expect("progress");
            let grants = eib.arbitrate(now);
            if !grants.is_empty() {
                assert_eq!(grants[0].0, 2);
                break;
            }
        }
        assert_eq!(now, Cycle::new(10));
        assert!(!eib.has_pending());
    }

    #[test]
    fn disjoint_paths_share_one_ring() {
        let mut eib = Eib::new(
            Topology::cbe(),
            EibConfig {
                rings_per_direction: 1,
                ..EibConfig::default()
            },
        );
        // SPE1(ramp1)->SPE3(ramp2) and SPE5(ramp3)->SPE7(ramp4): disjoint
        // single-hop CW paths fit on the single CW ring together.
        eib.submit(Cycle::ZERO, 0, req(Element::spe(1), Element::spe(3)));
        eib.submit(Cycle::ZERO, 1, req(Element::spe(5), Element::spe(7)));
        assert_eq!(eib.arbitrate(Cycle::ZERO).len(), 2);
    }

    #[test]
    fn mic_traffic_wins_arbitration() {
        let mut eib = bus();
        // Both want the same CW path region; submit the non-MIC one first.
        eib.submit(Cycle::ZERO, 0, req(Element::spe(2), Element::spe(0)));
        eib.submit(Cycle::ZERO, 1, req(Element::spe(2), Element::Mic));
        // SPE2 send port is shared: only one can win, and it must be the
        // MIC-bound request despite being younger.
        let grants = eib.arbitrate(Cycle::ZERO);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].0, 1);
    }

    #[test]
    fn wait_cycles_are_accounted() {
        let mut eib = bus();
        eib.submit(Cycle::ZERO, 0, req(Element::Ppe, Element::spe(1)));
        eib.submit(Cycle::ZERO, 1, req(Element::Ppe, Element::spe(1)));
        eib.arbitrate(Cycle::ZERO);
        assert_eq!(eib.stats().wait_cycles, 0);
        eib.arbitrate(Cycle::new(8));
        assert_eq!(eib.stats().wait_cycles, 8);
        assert_eq!(eib.stats().grants, 2);
    }

    #[test]
    fn idle_bus_has_no_release() {
        let eib = bus();
        assert_eq!(eib.next_release_after(Cycle::ZERO), None);
    }

    #[test]
    fn ring_outage_blocks_then_recovers_at_the_boundary() {
        use cellsim_faults::{RingOutage, Window};
        let mut eib = Eib::new(
            Topology::cbe(),
            EibConfig {
                rings_per_direction: 1,
                ..EibConfig::default()
            },
        );
        // Both rings (one CW, one CCW) out until cycle 40: nothing can
        // be granted, but next_release_after points at the boundary.
        eib.set_faults(EibFaults {
            ring_outages: (0..2)
                .map(|ring| RingOutage {
                    ring,
                    window: Window {
                        start: 0,
                        cycles: 40,
                    },
                })
                .collect(),
            derate: Vec::new(),
        });
        eib.submit(Cycle::ZERO, 0, req(Element::spe(0), Element::spe(2)));
        assert!(eib.arbitrate(Cycle::ZERO).is_empty());
        assert!(eib.has_pending());
        let wake = eib.next_release_after(Cycle::ZERO).expect("boundary");
        assert_eq!(wake, Cycle::new(40));
        let grants = eib.arbitrate(wake);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].1.waited, 40);
    }

    #[test]
    fn derate_window_stretches_wire_time() {
        use cellsim_faults::{DerateWindow, Window};
        let mut eib = bus();
        eib.set_faults(EibFaults {
            ring_outages: Vec::new(),
            derate: vec![DerateWindow {
                window: Window {
                    start: 0,
                    cycles: 1000,
                },
                capacity_percent: 25,
            }],
        });
        eib.submit(Cycle::ZERO, 0, req(Element::spe(0), Element::Mic));
        let grants = eib.arbitrate(Cycle::ZERO);
        assert_eq!(grants.len(), 1);
        // 128 B at a quarter of 16 B/cycle: 32 wire cycles, not 8.
        assert_eq!(grants[0].1.wire_done, Cycle::new(32));
    }

    #[test]
    fn empty_faults_change_nothing() {
        let mut healthy = bus();
        let mut faulted = bus();
        faulted.set_faults(EibFaults::default());
        for eib in [&mut healthy, &mut faulted] {
            eib.submit(Cycle::ZERO, 0, req(Element::spe(0), Element::Mic));
        }
        assert_eq!(
            healthy.arbitrate(Cycle::ZERO),
            faulted.arbitrate(Cycle::ZERO)
        );
        assert_eq!(healthy.stats(), faulted.stats());
    }

    #[test]
    fn bidirectional_pair_runs_concurrently() {
        let mut eib = bus();
        // get + put between neighbours travel opposite directions and use
        // opposite ports: both granted at once (the 33.6 GB/s pair peak).
        eib.submit(Cycle::ZERO, 0, req(Element::spe(0), Element::spe(2)));
        eib.submit(Cycle::ZERO, 1, req(Element::spe(2), Element::spe(0)));
        assert_eq!(eib.arbitrate(Cycle::ZERO).len(), 2);
    }
}
