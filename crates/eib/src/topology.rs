//! Physical ring layout of the EIB and shortest-path routing.

use std::fmt;

/// An element attached to the EIB: a bus "ramp".
///
/// `Spe(n)` is a **physical** SPE number. The logical→physical assignment
/// performed by the runtime (which the ISPASS paper could not control, and
/// which is why it reports statistics over ten random placements) lives in
/// `cellsim-core`; by the time a transfer reaches the bus it names physical
/// elements only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Element {
    /// The Power Processor Element.
    Ppe,
    /// A Synergistic Processor Element, by physical index (0–7 on the CBE).
    Spe(u8),
    /// The Memory Interface Controller (local XDR bank).
    Mic,
    /// I/O interface 0 — the BIF port that reaches the second chip's bank.
    Ioif0,
    /// I/O interface 1.
    Ioif1,
}

impl Element {
    /// Convenience constructor for a physical SPE.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 8`; the CBE has eight SPEs.
    pub fn spe(n: u8) -> Element {
        assert!(n < 8, "the CBE has 8 SPEs; got physical index {n}");
        Element::Spe(n)
    }

    /// Whether this element is the memory controller (which the data
    /// arbiter treats with the highest priority).
    pub fn is_mic(self) -> bool {
        self == Element::Mic
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Element::Ppe => write!(f, "PPE"),
            Element::Spe(n) => write!(f, "SPE{n}"),
            Element::Mic => write!(f, "MIC"),
            Element::Ioif0 => write!(f, "IOIF0"),
            Element::Ioif1 => write!(f, "IOIF1"),
        }
    }
}

/// Position of an element on the physical ring (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RampIndex(pub usize);

/// Travel direction around the ring.
///
/// Two of the four CBE data rings run each way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Increasing ramp index.
    Clockwise,
    /// Decreasing ramp index.
    CounterClockwise,
}

/// A routed path: direction, hop count, and the set of ring segments used.
///
/// Segment `k` is the link between ramp `k` and ramp `k + 1 (mod n)`;
/// the same physical wires exist once per ring, so a [`Route`] is applied
/// to whichever ring the arbiter selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Which way the data travels.
    pub direction: Direction,
    /// Number of ramp-to-ramp links crossed (≥1 for distinct endpoints).
    pub hops: usize,
    /// Bitmask of segment indices crossed.
    pub segments: u32,
    /// Ramp index the path starts from (for pipelined-occupancy offsets).
    pub src_ramp: usize,
    /// Number of ramps on the ring.
    pub ring_len: usize,
}

impl Route {
    /// Segments in traversal order, each with its hop offset from the
    /// source: the packet head reaches segment `i` after `i` hops, so a
    /// pipelined reservation staggers each segment's busy window by the
    /// per-hop latency.
    pub fn segments_in_order(&self) -> impl Iterator<Item = (u64, usize)> + '_ {
        let n = self.ring_len;
        let a = self.src_ramp;
        let dir = self.direction;
        (0..self.hops).map(move |k| {
            let seg = match dir {
                Direction::Clockwise => (a + k) % n,
                Direction::CounterClockwise => (a + n - 1 - k) % n,
            };
            (k as u64, seg)
        })
    }
}

/// The physical order of elements around the EIB.
///
/// [`Topology::cbe`] reproduces the layout described in Krolak's EIB
/// article (and cited by the paper as the source of the placement
/// bottleneck): `PPE, SPE1, SPE3, SPE5, SPE7, IOIF1, IOIF0, SPE6, SPE4,
/// SPE2, SPE0, MIC`. Custom orders (≤32 ramps) are supported for
/// experimentation and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    order: Vec<Element>,
}

impl Topology {
    /// The production Cell Broadband Engine ring order.
    pub fn cbe() -> Topology {
        use Element::*;
        Topology::new(vec![
            Ppe,
            Spe(1),
            Spe(3),
            Spe(5),
            Spe(7),
            Ioif1,
            Ioif0,
            Spe(6),
            Spe(4),
            Spe(2),
            Spe(0),
            Mic,
        ])
    }

    /// Builds a topology from an explicit ring order.
    ///
    /// # Panics
    ///
    /// Panics if the order is shorter than 2, longer than 32 (the segment
    /// bitmask width), or contains a duplicate element.
    pub fn new(order: Vec<Element>) -> Topology {
        assert!(
            (2..=32).contains(&order.len()),
            "topology must have 2..=32 ramps, got {}",
            order.len()
        );
        for (i, a) in order.iter().enumerate() {
            for b in &order[i + 1..] {
                assert!(a != b, "duplicate element {a} in topology");
            }
        }
        Topology { order }
    }

    /// Number of ramps (equals the number of ring segments).
    pub fn ramp_count(&self) -> usize {
        self.order.len()
    }

    /// Elements in ring order.
    pub fn elements(&self) -> &[Element] {
        &self.order
    }

    /// Ring position of `element`, or `None` if it is not attached.
    pub fn ramp_of(&self, element: Element) -> Option<RampIndex> {
        self.order.iter().position(|&e| e == element).map(RampIndex)
    }

    /// Shortest-path hop distance between two attached elements.
    ///
    /// # Panics
    ///
    /// Panics if either element is not attached.
    pub fn distance(&self, a: Element, b: Element) -> usize {
        let ra = self.ramp_of(a).expect("element not on bus").0;
        let rb = self.ramp_of(b).expect("element not on bus").0;
        let n = self.ramp_count();
        let cw = (rb + n - ra) % n;
        cw.min(n - cw)
    }

    /// All admissible routes from `src` to `dst`, shortest first.
    ///
    /// The EIB arbiter never lets a transfer travel more than halfway
    /// around the ring, so at most two routes exist and the second appears
    /// only on an exact-halfway tie.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or either element is not attached.
    pub fn routes(&self, src: Element, dst: Element) -> Vec<Route> {
        assert!(src != dst, "route requested from {src} to itself");
        let a = self.ramp_of(src).expect("src not on bus").0;
        let b = self.ramp_of(dst).expect("dst not on bus").0;
        let n = self.ramp_count();
        let cw_hops = (b + n - a) % n;
        let ccw_hops = n - cw_hops;
        let half = n / 2;
        let mut out = Vec::with_capacity(2);
        let mut push = |direction, hops| {
            let segments = match direction {
                // Clockwise from a crosses segments a, a+1, ..., b-1.
                Direction::Clockwise => mask_range(a, hops, n),
                // Counter-clockwise from a crosses segments a-1, ..., b,
                // i.e. the `hops` segments starting at b going clockwise.
                Direction::CounterClockwise => mask_range(b, hops, n),
            };
            out.push(Route {
                direction,
                hops,
                segments,
                src_ramp: a,
                ring_len: n,
            });
        };
        if cw_hops <= ccw_hops {
            push(Direction::Clockwise, cw_hops);
            // The counter-clockwise way is only admissible on an exact
            // halfway tie (cw + ccw = n and both must be <= n/2).
            if ccw_hops == cw_hops && ccw_hops <= half {
                push(Direction::CounterClockwise, ccw_hops);
            }
        } else {
            push(Direction::CounterClockwise, ccw_hops);
            if cw_hops <= half {
                push(Direction::Clockwise, cw_hops);
            }
        }
        out
    }
}

/// Bitmask of `len` consecutive segment indices starting at `start`,
/// wrapping modulo `n`.
fn mask_range(start: usize, len: usize, n: usize) -> u32 {
    let mut mask = 0u32;
    for k in 0..len {
        mask |= 1 << ((start + k) % n);
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbe_topology_has_twelve_unique_ramps() {
        let t = Topology::cbe();
        assert_eq!(t.ramp_count(), 12);
        assert_eq!(t.ramp_of(Element::Ppe), Some(RampIndex(0)));
        assert_eq!(t.ramp_of(Element::Mic), Some(RampIndex(11)));
        assert_eq!(t.ramp_of(Element::spe(0)), Some(RampIndex(10)));
    }

    #[test]
    fn mic_is_adjacent_to_ppe_and_spe0() {
        let t = Topology::cbe();
        assert_eq!(t.distance(Element::Mic, Element::Ppe), 1);
        assert_eq!(t.distance(Element::Mic, Element::spe(0)), 1);
    }

    #[test]
    fn distance_is_symmetric_and_at_most_half() {
        let t = Topology::cbe();
        let all = t.elements().to_vec();
        for &a in &all {
            for &b in &all {
                if a == b {
                    continue;
                }
                assert_eq!(t.distance(a, b), t.distance(b, a));
                assert!(t.distance(a, b) <= 6);
                assert!(t.distance(a, b) >= 1);
            }
        }
    }

    #[test]
    fn shortest_route_comes_first() {
        let t = Topology::cbe();
        // PPE (ramp 0) to SPE1 (ramp 1): one clockwise hop over segment 0.
        let routes = t.routes(Element::Ppe, Element::spe(1));
        assert_eq!(routes[0].direction, Direction::Clockwise);
        assert_eq!(routes[0].hops, 1);
        assert_eq!(routes[0].segments, 0b1);
        assert_eq!(routes.len(), 1);
        // PPE to MIC (ramp 11): one counter-clockwise hop over segment 11.
        let routes = t.routes(Element::Ppe, Element::Mic);
        assert_eq!(routes[0].direction, Direction::CounterClockwise);
        assert_eq!(routes[0].hops, 1);
        assert_eq!(routes[0].segments, 1 << 11);
    }

    #[test]
    fn halfway_tie_offers_both_directions() {
        let t = Topology::cbe();
        // PPE (ramp 0) to IOIF0 (ramp 6): 6 hops each way.
        let routes = t.routes(Element::Ppe, Element::Ioif0);
        assert_eq!(routes.len(), 2);
        assert_eq!(routes[0].hops, 6);
        assert_eq!(routes[1].hops, 6);
        assert_ne!(routes[0].direction, routes[1].direction);
    }

    #[test]
    fn route_segment_count_matches_hops() {
        let t = Topology::cbe();
        for &a in t.elements() {
            for &b in t.elements() {
                if a == b {
                    continue;
                }
                for r in t.routes(a, b) {
                    assert_eq!(r.segments.count_ones() as usize, r.hops);
                    assert!(r.hops <= 6, "no route may exceed half the ring");
                }
            }
        }
    }

    #[test]
    fn cw_and_ccw_segments_partition_the_ring() {
        let t = Topology::cbe();
        // For any pair, CW segments and CCW segments are disjoint and
        // together cover all 12 segments.
        let a = Element::spe(0);
        let b = Element::spe(7);
        let routes = t.routes(a, b);
        let n = t.ramp_count();
        let cw_hops = routes
            .iter()
            .find(|r| r.direction == Direction::Clockwise)
            .map(|r| r.hops);
        if let Some(cw) = cw_hops {
            assert_eq!(cw + (n - cw), n);
        }
    }

    #[test]
    #[should_panic(expected = "8 SPEs")]
    fn spe_constructor_validates() {
        let _ = Element::spe(8);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_elements_rejected() {
        let _ = Topology::new(vec![Element::Ppe, Element::Ppe]);
    }

    #[test]
    #[should_panic(expected = "to itself")]
    fn self_route_rejected() {
        let t = Topology::cbe();
        let _ = t.routes(Element::Ppe, Element::Ppe);
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(Element::spe(3).to_string(), "SPE3");
        assert_eq!(Element::Mic.to_string(), "MIC");
    }
}
