//! A single data ring: per-segment reservation bookkeeping.

use cellsim_kernel::Cycle;

use crate::topology::{Direction, Route};

/// Identifier of one of the data rings (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RingId(pub usize);

/// One unidirectional 16-byte data ring.
///
/// Each segment records the cycle until which it is reserved. A transfer
/// holds every segment along its route for its full wire time, which is a
/// slightly conservative approximation of the real pipelined ring but
/// preserves the property the paper measures: two transfers whose paths
/// share a segment cannot overlap, while disjoint transfers can (up to
/// three concurrent per ring on the real part — an emergent property here,
/// since three disjoint ≤4-hop paths fit in twelve segments).
#[derive(Debug, Clone)]
pub struct Ring {
    direction: Direction,
    busy_until: Vec<Cycle>,
}

impl Ring {
    /// Creates an idle ring with `segments` segments.
    pub fn new(direction: Direction, segments: usize) -> Ring {
        Ring {
            direction,
            busy_until: vec![Cycle::ZERO; segments],
        }
    }

    /// The ring's travel direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Whether every segment in `mask` is free at `now`.
    pub fn path_free(&self, mask: u32, now: Cycle) -> bool {
        self.for_each_segment(mask, |busy| busy <= now)
    }

    /// Whether a pipelined transfer starting at `now` can use `route`:
    /// segment *i* must be free when the packet head reaches it, `i`
    /// hop-latencies after launch.
    pub fn route_free(&self, route: &Route, now: Cycle, hop_latency: u64) -> bool {
        route.segments_in_order().all(|(k, seg)| {
            assert!(seg < self.busy_until.len(), "route exceeds ring size");
            self.busy_until[seg] <= now + k * hop_latency
        })
    }

    /// Reserves `route` for a pipelined transfer of `duration` wire
    /// cycles starting at `now`: segment *i* is busy while the packet
    /// streams across it, offset by its hop position.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any staggered window is already taken.
    pub fn reserve_route(&mut self, route: &Route, now: Cycle, duration: u64, hop_latency: u64) {
        for (k, seg) in route.segments_in_order() {
            let start = now + k * hop_latency;
            debug_assert!(
                self.busy_until[seg] <= start,
                "reserving an occupied segment {seg}"
            );
            self.busy_until[seg] = start + duration;
        }
    }

    /// Reserves every segment in `mask` until `until`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if a segment is already reserved past `until`
    /// — the arbiter must only reserve free paths.
    pub fn reserve(&mut self, mask: u32, now: Cycle, until: Cycle) {
        let mut m = mask;
        while m != 0 {
            let k = m.trailing_zeros() as usize;
            debug_assert!(
                self.busy_until[k] <= now,
                "reserving an occupied segment {k}"
            );
            self.busy_until[k] = until;
            m &= m - 1;
        }
    }

    /// Earliest cycle at which every segment in `mask` will be free,
    /// assuming no further reservations.
    pub fn earliest_free(&self, mask: u32) -> Cycle {
        let mut t = Cycle::ZERO;
        let mut m = mask;
        while m != 0 {
            let k = m.trailing_zeros() as usize;
            t = t.max(self.busy_until[k]);
            m &= m - 1;
        }
        t
    }

    /// The earliest reservation expiry strictly after `now`, if any.
    pub fn next_release_after(&self, now: Cycle) -> Option<Cycle> {
        self.busy_until.iter().copied().filter(|&t| t > now).min()
    }

    fn for_each_segment(&self, mask: u32, mut pred: impl FnMut(Cycle) -> bool) -> bool {
        let mut m = mask;
        while m != 0 {
            let k = m.trailing_zeros() as usize;
            if k >= self.busy_until.len() {
                panic!("segment mask {mask:#x} exceeds ring size");
            }
            if !pred(self.busy_until[k]) {
                return false;
            }
            m &= m - 1;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ring_is_free() {
        let r = Ring::new(Direction::Clockwise, 12);
        assert!(r.path_free(0xFFF, Cycle::ZERO));
        assert_eq!(r.next_release_after(Cycle::ZERO), None);
    }

    #[test]
    fn reserve_blocks_overlapping_paths_only() {
        let mut r = Ring::new(Direction::Clockwise, 12);
        r.reserve(0b0000_0000_0111, Cycle::ZERO, Cycle::new(8));
        assert!(!r.path_free(0b0000_0000_0100, Cycle::new(3)));
        assert!(r.path_free(0b1111_0000_0000, Cycle::new(3)));
        assert!(r.path_free(0b0000_0000_0111, Cycle::new(8)));
        assert_eq!(r.earliest_free(0b0000_0000_0001), Cycle::new(8));
        assert_eq!(r.next_release_after(Cycle::new(2)), Some(Cycle::new(8)));
        assert_eq!(r.next_release_after(Cycle::new(8)), None);
    }

    #[test]
    fn three_disjoint_transfers_fit_one_ring() {
        let mut r = Ring::new(Direction::Clockwise, 12);
        r.reserve(0b0000_0000_0011, Cycle::ZERO, Cycle::new(8));
        r.reserve(0b0000_0011_0000, Cycle::ZERO, Cycle::new(8));
        r.reserve(0b0011_0000_0000, Cycle::ZERO, Cycle::new(8));
        assert!(!r.path_free(0b0000_0000_0001, Cycle::ZERO));
        assert!(r.path_free(0b1100_0000_0000, Cycle::ZERO));
    }

    #[test]
    #[should_panic(expected = "exceeds ring size")]
    fn oversized_mask_panics() {
        let r = Ring::new(Direction::Clockwise, 4);
        let _ = r.path_free(1 << 10, Cycle::ZERO);
    }
}
