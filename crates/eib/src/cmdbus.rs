//! The EIB command (address/snoop) bus.

use cellsim_kernel::Cycle;

/// The tree-structured command bus of the EIB.
///
/// Every bus transaction — each 128-byte DMA packet, each cache-line fill —
/// must first broadcast a coherence command. The bus starts at most one
/// command per `issue_interval` bus cycles and each command takes a fixed
/// snoop `latency` before the data phase may begin.
///
/// At full tilt (one command per cycle, 128 B payloads) the command bus
/// supports 128 B/cycle ≈ 134 GB/s of data — exactly the aggregate peak of
/// the eight-SPE "cycle" experiment, which is why that experiment is the
/// first to feel command arbitration pressure.
///
/// ```
/// use cellsim_eib::CommandBus;
/// use cellsim_kernel::Cycle;
///
/// let mut bus = CommandBus::new(1, 10);
/// // Two back-to-back commands serialize on the issue slot.
/// assert_eq!(bus.issue(Cycle::ZERO), Cycle::new(10));
/// assert_eq!(bus.issue(Cycle::ZERO), Cycle::new(11));
/// ```
#[derive(Debug, Clone)]
pub struct CommandBus {
    issue_interval: u64,
    latency: u64,
    next_slot: Cycle,
    issued: u64,
}

impl CommandBus {
    /// Creates a command bus that starts one command every
    /// `issue_interval` cycles, each completing `latency` cycles after it
    /// starts.
    ///
    /// # Panics
    ///
    /// Panics if `issue_interval` is zero.
    pub fn new(issue_interval: u64, latency: u64) -> CommandBus {
        assert!(issue_interval > 0, "issue interval must be non-zero");
        CommandBus {
            issue_interval,
            latency,
            next_slot: Cycle::ZERO,
            issued: 0,
        }
    }

    /// Issues a command at or after `now`; returns the cycle at which the
    /// snoop completes and the data phase may begin.
    pub fn issue(&mut self, now: Cycle) -> Cycle {
        let start = now.max(self.next_slot);
        self.next_slot = start + self.issue_interval;
        self.issued += 1;
        start + self.latency
    }

    /// Total commands issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The snoop latency in bus cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_serialize_on_the_issue_slot() {
        let mut bus = CommandBus::new(2, 5);
        assert_eq!(bus.issue(Cycle::ZERO), Cycle::new(5));
        assert_eq!(bus.issue(Cycle::ZERO), Cycle::new(7));
        assert_eq!(bus.issue(Cycle::ZERO), Cycle::new(9));
        assert_eq!(bus.issued(), 3);
    }

    #[test]
    fn idle_bus_issues_immediately() {
        let mut bus = CommandBus::new(1, 4);
        bus.issue(Cycle::ZERO);
        // Long idle gap: next command starts at `now`, not at next_slot.
        assert_eq!(bus.issue(Cycle::new(100)), Cycle::new(104));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_interval_rejected() {
        let _ = CommandBus::new(0, 1);
    }
}
