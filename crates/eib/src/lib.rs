//! Model of the Cell Broadband Engine **Element Interconnect Bus** (EIB).
//!
//! The EIB connects twelve *ramps* — the PPE, eight SPEs, the memory
//! interface controller (MIC) and two I/O interfaces — with four
//! unidirectional data rings (two clockwise, two counter-clockwise), each
//! 16 bytes wide and clocked at half the CPU frequency. A transfer moves a
//! packet of up to 128 bytes; the central data arbiter grants a ring only
//! if every segment along the (shortest) path is free and never routes a
//! packet more than halfway around. A separate command bus starts at most
//! one coherence command per bus cycle.
//!
//! These structural rules are what produce the headline observations of the
//! ISPASS 2007 study: near-peak bandwidth for an isolated SPE pair, heavy
//! placement sensitivity for four concurrent pairs, and saturation when all
//! eight SPEs stream to their neighbours.
//!
//! # Example
//!
//! ```
//! use cellsim_eib::{Eib, EibConfig, Element, FlowClass, Topology, TransferRequest};
//! use cellsim_kernel::Cycle;
//!
//! let mut eib = Eib::new(Topology::cbe(), EibConfig::default());
//! eib.submit(
//!     Cycle::ZERO,
//!     0,
//!     TransferRequest {
//!         src: Element::spe(0),
//!         dst: Element::spe(1),
//!         bytes: 128,
//!         class: FlowClass::MfcOut,
//!     },
//! );
//! let grants = eib.arbitrate(Cycle::ZERO);
//! assert_eq!(grants.len(), 1);
//! // 128 B at 16 B/cycle = 8 cycles on the wire, plus per-hop latency.
//! assert!(grants[0].1.delivered_at >= Cycle::new(8));
//! ```

mod arbiter;
mod cmdbus;
mod ring;
mod topology;

pub use arbiter::{
    Eib, EibConfig, EibStats, FlowClass, Grant, RingOccupancy, RingStats, TransferRequest,
};
pub use cmdbus::CommandBus;
pub use ring::{Ring, RingId};
pub use topology::{Direction, Element, RampIndex, Route, Topology};
