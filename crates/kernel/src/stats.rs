//! Measurement helpers: bandwidth meters and run summaries.
//!
//! The ISPASS 2007 paper reports, for every SPE experiment, the minimum,
//! maximum, median and average bandwidth over ten runs with different
//! logical→physical SPE placements. [`Summary`] implements exactly that
//! reduction; [`BandwidthMeter`] accumulates bytes between two time stamps.

use std::fmt;

use crate::{Cycle, MachineClock};

/// Accumulates transferred bytes over a time window.
///
/// ```
/// use cellsim_kernel::{Cycle, MachineClock};
/// use cellsim_kernel::stats::BandwidthMeter;
///
/// let mut m = BandwidthMeter::starting_at(Cycle::new(100));
/// m.add_bytes(1 << 20);
/// m.finish(Cycle::new(100 + 65_536));
/// let gbps = m.gbytes_per_sec(&MachineClock::default());
/// assert!(gbps > 16.0 && gbps < 17.0); // 16 B/cycle ≈ 16.8 GB/s
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BandwidthMeter {
    bytes: u64,
    start: Cycle,
    end: Option<Cycle>,
}

impl BandwidthMeter {
    /// A meter whose window opens at `start`.
    pub fn starting_at(start: Cycle) -> Self {
        BandwidthMeter {
            bytes: 0,
            start,
            end: None,
        }
    }

    /// Records `bytes` transferred.
    pub fn add_bytes(&mut self, bytes: u64) {
        self.bytes += bytes;
    }

    /// Closes the window at `end`. May be called repeatedly; the last call
    /// wins (useful when "the last completion" closes the window).
    pub fn finish(&mut self, end: Cycle) {
        self.end = Some(end);
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Window length in bus cycles; zero if the window was never closed.
    pub fn elapsed(&self) -> u64 {
        self.end.map_or(0, |e| e.saturating_since(self.start))
    }

    /// Sustained bandwidth in GB/s under `clock`. Returns 0.0 for an
    /// unclosed or empty window.
    pub fn gbytes_per_sec(&self, clock: &MachineClock) -> f64 {
        clock.gbytes_per_sec(self.bytes, self.elapsed())
    }
}

/// Why a sample set could not be summarized.
///
/// Experiment drivers attach figure/configuration context when they
/// surface this, so a degenerate run names the point that produced it
/// instead of panicking deep inside the reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaryError {
    /// No samples at all (for sweeps: zero placements configured).
    Empty,
    /// A sample was NaN; `index` is its position in the input slice.
    NotANumber {
        /// Position of the offending sample.
        index: usize,
    },
}

impl fmt::Display for SummaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SummaryError::Empty => write!(f, "no samples to summarize"),
            SummaryError::NotANumber { index } => {
                write!(f, "sample {index} is NaN")
            }
        }
    }
}

impl std::error::Error for SummaryError {}

/// Min / max / median / mean of a set of bandwidth samples.
///
/// The median of an even-sized set is the mean of the two middle samples.
///
/// ```
/// use cellsim_kernel::stats::Summary;
/// let s = Summary::from_samples(&[3.0, 1.0, 2.0]).unwrap();
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 3.0);
/// assert_eq!(s.median, 2.0);
/// assert_eq!(s.mean, 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Middle sample (mean of the two middle samples for even counts).
    pub median: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of samples reduced.
    pub count: usize,
}

impl Summary {
    /// Reduces `samples`.
    ///
    /// # Errors
    ///
    /// [`SummaryError::Empty`] for an empty slice,
    /// [`SummaryError::NotANumber`] naming the first NaN sample.
    pub fn from_samples(samples: &[f64]) -> Result<Summary, SummaryError> {
        if samples.is_empty() {
            return Err(SummaryError::Empty);
        }
        if let Some(index) = samples.iter().position(|s| s.is_nan()) {
            return Err(SummaryError::NotANumber { index });
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
        let n = sorted.len();
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        let mean = sorted.iter().sum::<f64>() / n as f64;
        Ok(Summary {
            min: sorted[0],
            max: sorted[n - 1],
            median,
            mean,
            count: n,
        })
    }

    /// Max minus min: the placement-sensitivity spread the paper discusses
    /// in Figures 13 and 16.
    pub fn spread(&self) -> f64 {
        self.max - self.min
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min {:.2} / med {:.2} / mean {:.2} / max {:.2} (n={})",
            self.min, self.median, self.mean, self.max, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_measures_bytes_over_window() {
        let mut m = BandwidthMeter::starting_at(Cycle::new(10));
        m.add_bytes(160);
        m.finish(Cycle::new(20));
        assert_eq!(m.bytes(), 160);
        assert_eq!(m.elapsed(), 10);
        // 16 B/cycle at 1.05 GHz = 16.8 GB/s.
        let gbps = m.gbytes_per_sec(&MachineClock::default());
        assert!((gbps - 16.8).abs() < 1e-9);
    }

    #[test]
    fn unfinished_meter_reports_zero() {
        let mut m = BandwidthMeter::starting_at(Cycle::ZERO);
        m.add_bytes(1000);
        assert_eq!(m.elapsed(), 0);
        assert_eq!(m.gbytes_per_sec(&MachineClock::default()), 0.0);
    }

    #[test]
    fn summary_even_count_medians_between() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 10.0]).unwrap();
        assert_eq!(s.median, 2.5);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.spread(), 9.0);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn summary_rejects_empty_and_nan_with_typed_errors() {
        assert_eq!(Summary::from_samples(&[]), Err(SummaryError::Empty));
        assert_eq!(
            Summary::from_samples(&[1.0, f64::NAN]),
            Err(SummaryError::NotANumber { index: 1 })
        );
        assert!(!SummaryError::Empty.to_string().is_empty());
        assert!(SummaryError::NotANumber { index: 1 }
            .to_string()
            .contains('1'));
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::from_samples(&[5.5]).unwrap();
        assert_eq!(s.min, 5.5);
        assert_eq!(s.max, 5.5);
        assert_eq!(s.median, 5.5);
        assert_eq!(s.mean, 5.5);
        assert_eq!(s.spread(), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let s = Summary::from_samples(&[1.0, 2.0]).unwrap();
        assert!(!format!("{s}").is_empty());
    }
}
