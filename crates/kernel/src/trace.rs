//! Bounded event tracing.
//!
//! Simulations can record typed events for later analysis. The trace is
//! bounded: once `capacity` events are stored, further events are counted
//! but dropped, so tracing a pathological run cannot exhaust memory.

use crate::Cycle;

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent<K> {
    /// When the event happened.
    pub at: Cycle,
    /// What happened.
    pub kind: K,
}

/// A bounded, append-only event trace.
///
/// ```
/// use cellsim_kernel::trace::Trace;
/// use cellsim_kernel::Cycle;
///
/// let mut t: Trace<&str> = Trace::with_capacity(2);
/// t.record(Cycle::new(1), "a");
/// t.record(Cycle::new(2), "b");
/// t.record(Cycle::new(3), "c"); // over capacity: counted, not stored
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.dropped(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Trace<K> {
    events: Vec<TraceEvent<K>>,
    capacity: usize,
    dropped: u64,
}

impl<K> Trace<K> {
    /// Default capacity: one million events (~tens of MB).
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// A trace with the default capacity.
    pub fn new() -> Trace<K> {
        Trace::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A trace holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Trace<K> {
        assert!(capacity > 0, "trace capacity must be non-zero");
        Trace {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event (or counts it as dropped when full).
    pub fn record(&mut self, at: Cycle, kind: K) {
        if self.events.len() < self.capacity {
            self.events.push(TraceEvent { at, kind });
        } else {
            self.dropped += 1;
        }
    }

    /// Stored events, in record order (which is time order when the
    /// producer is a discrete-event simulation).
    pub fn events(&self) -> &[TraceEvent<K>] {
        &self.events
    }

    /// Stored event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events that arrived after the trace filled up.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates events in `[from, to)`.
    pub fn window(&self, from: Cycle, to: Cycle) -> impl Iterator<Item = &TraceEvent<K>> {
        self.events
            .iter()
            .filter(move |e| e.at >= from && e.at < to)
    }
}

impl<K> Default for Trace<K> {
    fn default() -> Self {
        Trace::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_windows() {
        let mut t = Trace::new();
        for i in 0..10u64 {
            t.record(Cycle::new(i * 10), i);
        }
        assert_eq!(t.len(), 10);
        assert_eq!(t.dropped(), 0);
        let mid: Vec<u64> = t
            .window(Cycle::new(20), Cycle::new(50))
            .map(|e| e.kind)
            .collect();
        assert_eq!(mid, vec![2, 3, 4]);
    }

    #[test]
    fn capacity_bounds_memory() {
        let mut t = Trace::with_capacity(3);
        for i in 0..10 {
            t.record(Cycle::new(i), ());
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 7);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _: Trace<()> = Trace::with_capacity(0);
    }
}
