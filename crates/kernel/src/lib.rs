//! Discrete-event simulation kernel for `cellsim`.
//!
//! This crate provides the machinery every other `cellsim` crate builds on:
//!
//! * [`Cycle`] — simulated time, counted in *bus* cycles (the EIB runs at
//!   half the CPU clock on the Cell Broadband Engine, and every shared
//!   resource in the machine is clocked off the bus).
//! * [`MachineClock`] — converts between cycles, seconds, and bandwidth.
//! * [`EventQueue`] / [`Simulation`] / [`Model`] — a minimal, deterministic
//!   event engine. Events scheduled for the same cycle are delivered in
//!   FIFO order, which makes every simulation reproducible bit-for-bit.
//! * [`stats`] — bandwidth meters and the min/max/median/mean summaries the
//!   ISPASS 2007 paper reports for its multi-placement runs.
//!
//! # Example
//!
//! ```
//! use cellsim_kernel::{Cycle, Model, Scheduler, Simulation};
//!
//! struct Counter { fired: u32 }
//! enum Ev { Tick }
//!
//! impl Model for Counter {
//!     type Event = Ev;
//!     fn handle(&mut self, now: Cycle, _ev: Ev, sched: &mut Scheduler<Ev>) {
//!         self.fired += 1;
//!         if self.fired < 3 {
//!             sched.schedule(now + 10, Ev::Tick);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Counter { fired: 0 });
//! sim.schedule(Cycle::ZERO, Ev::Tick);
//! sim.run();
//! assert_eq!(sim.model().fired, 3);
//! assert_eq!(sim.now(), Cycle::new(20));
//! ```

mod engine;
mod queue;
mod time;

pub mod json;
pub mod rng;
pub mod stats;
pub mod trace;
pub mod varint;

pub use engine::{Model, RunOutcome, Scheduler, Simulation};
pub use queue::EventQueue;
pub use time::{Cycle, MachineClock};
