//! Generic discrete-event simulation engine.

use crate::{Cycle, EventQueue};

/// A simulated system driven by events.
///
/// Implementors own all mutable state of the machine being simulated; the
/// engine owns time. [`Model::handle`] receives each event in time order
/// together with a [`Scheduler`] used to enqueue follow-up events.
///
/// See the [crate-level example](crate) for a complete simulation.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Processes one event at simulated time `now`.
    fn handle(&mut self, now: Cycle, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Handle used by a [`Model`] to schedule future events.
///
/// Events pushed during one `handle` call are committed to the queue after
/// the call returns; scheduling in the past is a bug and panics.
#[derive(Debug)]
pub struct Scheduler<E> {
    now: Cycle,
    pending: Vec<(Cycle, E)>,
}

impl<E> Scheduler<E> {
    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time: a
    /// discrete-event simulation must never travel backwards.
    pub fn schedule(&mut self, at: Cycle, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at}, now={}",
            self.now
        );
        self.pending.push((at, event));
    }

    /// Schedules `event` `delay` cycles from now.
    ///
    /// # Panics
    ///
    /// Panics if `now + delay` overflows the cycle counter: a wrapped
    /// time stamp would land in the past and corrupt delivery order.
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        let at = self
            .now
            .as_u64()
            .checked_add(delay)
            .map(Cycle::new)
            .expect("event delay overflows the cycle counter");
        self.schedule(at, event);
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }
}

/// How a guarded run ([`Simulation::run_guarded`]) ended.
///
/// The two non-completion outcomes are the progress watchdog firing: the
/// simulation either walked past its time horizon or churned events
/// without simulated time advancing. Both carry the time the run stopped
/// at; the model state is intact for diagnosis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained; the simulation completed at this time.
    Drained(Cycle),
    /// The next pending event lies beyond the limit: the simulation is
    /// still generating work past its safety horizon.
    HorizonExceeded(Cycle),
    /// More than the allowed number of events fired without simulated
    /// time advancing — a zero-delay event storm (livelock).
    Stagnant(Cycle),
}

/// The engine: an event queue plus a [`Model`].
///
/// Construct with [`Simulation::new`], seed initial events with
/// [`Simulation::schedule`], then call [`Simulation::run`] (to exhaustion)
/// or [`Simulation::run_until`]. [`Simulation::run_guarded`] adds a
/// progress watchdog for models that must not hang.
pub struct Simulation<M: Model> {
    model: M,
    queue: EventQueue<M::Event>,
    now: Cycle,
    processed: u64,
    /// `processed` as of the last event that advanced simulated time —
    /// the progress watchdog's reference point.
    progress_mark: u64,
    /// Recycled [`Scheduler`] buffer so the event loop allocates nothing
    /// per event once it reaches steady state.
    scratch: Vec<(Cycle, M::Event)>,
}

impl<M: Model> Simulation<M> {
    /// Creates a simulation at time zero around `model`.
    pub fn new(model: M) -> Self {
        Simulation {
            model,
            queue: EventQueue::new(),
            now: Cycle::ZERO,
            processed: 0,
            progress_mark: 0,
            scratch: Vec::new(),
        }
    }

    /// Schedules an initial event.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule(&mut self, at: Cycle, event: M::Event) {
        assert!(at >= self.now, "event scheduled in the past");
        self.queue.push(at, event);
    }

    /// Runs until the event queue is empty. Returns the final time.
    pub fn run(&mut self) -> Cycle {
        self.run_until(Cycle::new(u64::MAX))
    }

    /// Runs until the queue is empty or the next event is after `limit`.
    ///
    /// Events *at* `limit` are processed. Returns the current time, which is
    /// the time of the last processed event (or the starting time if nothing
    /// ran).
    pub fn run_until(&mut self, limit: Cycle) -> Cycle {
        match self.run_guarded(limit, u64::MAX) {
            RunOutcome::Drained(t) | RunOutcome::HorizonExceeded(t) | RunOutcome::Stagnant(t) => t,
        }
    }

    /// Runs with a progress watchdog: stops when the queue drains, when
    /// the next event lies beyond `limit`, or when more than
    /// `max_stagnant_events` consecutive events fire without simulated
    /// time advancing.
    ///
    /// Events *at* `limit` are processed. On a non-[`RunOutcome::Drained`]
    /// outcome the model is left exactly as the last processed event left
    /// it, so callers can inspect it to diagnose the stall.
    pub fn run_guarded(&mut self, limit: Cycle, max_stagnant_events: u64) -> RunOutcome {
        while let Some(at) = self.queue.peek_time() {
            if at > limit {
                return RunOutcome::HorizonExceeded(self.now);
            }
            let (at, event) = self.queue.pop().expect("peeked event vanished");
            debug_assert!(at >= self.now, "event queue returned stale event");
            if at > self.now {
                self.progress_mark = self.processed;
            }
            self.now = at;
            self.processed += 1;
            let mut sched = Scheduler {
                now: at,
                pending: std::mem::take(&mut self.scratch),
            };
            self.model.handle(at, event, &mut sched);
            let mut pending = sched.pending;
            for (t, e) in pending.drain(..) {
                self.queue.push(t, e);
            }
            self.scratch = pending;
            if self.events_since_progress() > max_stagnant_events {
                return RunOutcome::Stagnant(self.now);
            }
        }
        RunOutcome::Drained(self.now)
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// The time of the most recently processed event — the watchdog's
    /// notion of when the simulation last did anything.
    pub fn last_event_cycle(&self) -> Cycle {
        self.now
    }

    /// Events processed since simulated time last advanced. Large values
    /// mean the model is churning through a zero-delay event storm.
    pub fn events_since_progress(&self) -> u64 {
        self.processed - self.progress_mark
    }

    /// Shared access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive access to the model (for instrumenting between phases).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the simulation and returns the model.
    pub fn into_model(self) -> M {
        self.model
    }
}

impl<M: Model> std::fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("processed", &self.processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Chain {
        hops: u32,
        done_at: Option<Cycle>,
    }

    enum Ev {
        Hop,
        Done,
    }

    impl Model for Chain {
        type Event = Ev;
        fn handle(&mut self, now: Cycle, event: Ev, sched: &mut Scheduler<Ev>) {
            match event {
                Ev::Hop => {
                    self.hops += 1;
                    if self.hops == 5 {
                        sched.schedule_in(3, Ev::Done);
                    } else {
                        sched.schedule(now + 2, Ev::Hop);
                    }
                }
                Ev::Done => self.done_at = Some(now),
            }
        }
    }

    #[test]
    fn chained_events_advance_time() {
        let mut sim = Simulation::new(Chain {
            hops: 0,
            done_at: None,
        });
        sim.schedule(Cycle::ZERO, Ev::Hop);
        let end = sim.run();
        assert_eq!(sim.model().hops, 5);
        // Hops at 0,2,4,6,8; done at 11.
        assert_eq!(sim.model().done_at, Some(Cycle::new(11)));
        assert_eq!(end, Cycle::new(11));
        assert_eq!(sim.events_processed(), 6);
    }

    #[test]
    fn run_until_stops_at_limit_inclusive() {
        let mut sim = Simulation::new(Chain {
            hops: 0,
            done_at: None,
        });
        sim.schedule(Cycle::ZERO, Ev::Hop);
        sim.run_until(Cycle::new(4));
        // Events at 0, 2, 4 processed; 6 pending.
        assert_eq!(sim.model().hops, 3);
        assert_eq!(sim.now(), Cycle::new(4));
        sim.run();
        assert_eq!(sim.model().hops, 5);
    }

    #[test]
    fn guarded_run_completes_like_run() {
        let mut sim = Simulation::new(Chain {
            hops: 0,
            done_at: None,
        });
        sim.schedule(Cycle::ZERO, Ev::Hop);
        let out = sim.run_guarded(Cycle::new(100), 10);
        assert_eq!(out, RunOutcome::Drained(Cycle::new(11)));
        assert_eq!(sim.last_event_cycle(), Cycle::new(11));
    }

    #[test]
    fn guarded_run_reports_horizon_exceeded() {
        struct Forever;
        impl Model for Forever {
            type Event = ();
            fn handle(&mut self, now: Cycle, (): (), sched: &mut Scheduler<()>) {
                sched.schedule(now + 5, ());
            }
        }
        let mut sim = Simulation::new(Forever);
        sim.schedule(Cycle::ZERO, ());
        let out = sim.run_guarded(Cycle::new(17), 1000);
        // Events at 0, 5, 10, 15 processed; 20 is beyond the horizon.
        assert_eq!(out, RunOutcome::HorizonExceeded(Cycle::new(15)));
        assert_eq!(sim.events_processed(), 4);
    }

    #[test]
    fn guarded_run_reports_zero_delay_storms() {
        struct Storm;
        impl Model for Storm {
            type Event = ();
            fn handle(&mut self, now: Cycle, (): (), sched: &mut Scheduler<()>) {
                sched.schedule(now, ()); // never advances time
            }
        }
        let mut sim = Simulation::new(Storm);
        sim.schedule(Cycle::new(3), ());
        let out = sim.run_guarded(Cycle::new(100), 50);
        assert_eq!(out, RunOutcome::Stagnant(Cycle::new(3)));
        assert!(sim.events_since_progress() > 50);
    }

    #[test]
    #[should_panic(expected = "delay overflows")]
    fn schedule_in_overflow_panics() {
        // Regression: `now + delay` used to wrap silently, enqueueing an
        // event in the distant past and corrupting delivery order.
        struct Wrap;
        impl Model for Wrap {
            type Event = ();
            fn handle(&mut self, _now: Cycle, (): (), sched: &mut Scheduler<()>) {
                sched.schedule_in(u64::MAX, ());
            }
        }
        let mut sim = Simulation::new(Wrap);
        sim.schedule(Cycle::new(1), ());
        sim.run();
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        struct Bad;
        impl Model for Bad {
            type Event = ();
            fn handle(&mut self, now: Cycle, _: (), sched: &mut Scheduler<()>) {
                if now > Cycle::ZERO {
                    sched.schedule(Cycle::ZERO, ());
                }
            }
        }
        let mut sim = Simulation::new(Bad);
        sim.schedule(Cycle::new(5), ());
        sim.run();
    }
}
