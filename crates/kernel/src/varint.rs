//! LEB128 variable-length integers — the wire encoding of the trace
//! store's event records.
//!
//! Seven payload bits per byte, low bits first, high bit set on every
//! byte but the last. Small values (inter-event cycle deltas, payload
//! sizes) take one or two bytes; the encoding is canonical (one byte
//! sequence per value), so byte-identical traces follow from identical
//! event streams with no further care.

/// Longest encoding of a `u64`: ⌈64 / 7⌉ bytes.
pub const MAX_VARINT_BYTES: usize = 10;

/// Encodes `value` into `buf`, returning the number of bytes used.
pub fn encode_u64(value: u64, buf: &mut [u8; MAX_VARINT_BYTES]) -> usize {
    let mut v = value;
    let mut n = 0;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf[n] = byte;
            return n + 1;
        }
        buf[n] = byte | 0x80;
        n += 1;
    }
}

/// Decodes one varint from the front of `bytes`, returning the value and
/// the number of bytes consumed. `None` when `bytes` ends mid-varint or
/// the encoding overflows 64 bits.
#[must_use]
pub fn decode_u64(bytes: &[u8]) -> Option<(u64, usize)> {
    let mut value: u64 = 0;
    for (i, &byte) in bytes.iter().enumerate().take(MAX_VARINT_BYTES) {
        let payload = u64::from(byte & 0x7f);
        // The tenth byte may only carry the single remaining bit.
        if i == MAX_VARINT_BYTES - 1 && payload > 1 {
            return None;
        }
        value |= payload << (7 * i);
        if byte & 0x80 == 0 {
            return Some((value, i + 1));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_across_the_range() {
        let samples = [
            0u64,
            1,
            127,
            128,
            129,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &samples {
            let mut buf = [0u8; MAX_VARINT_BYTES];
            let n = encode_u64(v, &mut buf);
            assert_eq!(decode_u64(&buf[..n]), Some((v, n)), "value {v}");
        }
    }

    #[test]
    fn encoding_lengths_are_minimal() {
        let mut buf = [0u8; MAX_VARINT_BYTES];
        assert_eq!(encode_u64(0, &mut buf), 1);
        assert_eq!(encode_u64(127, &mut buf), 1);
        assert_eq!(encode_u64(128, &mut buf), 2);
        assert_eq!(encode_u64((1 << 14) - 1, &mut buf), 2);
        assert_eq!(encode_u64(1 << 14, &mut buf), 3);
        assert_eq!(encode_u64(u64::MAX, &mut buf), MAX_VARINT_BYTES);
    }

    #[test]
    fn truncated_and_overlong_inputs_are_refused() {
        let mut buf = [0u8; MAX_VARINT_BYTES];
        let n = encode_u64(u64::from(u32::MAX), &mut buf);
        assert!(decode_u64(&buf[..n - 1]).is_none(), "mid-varint end");
        assert!(decode_u64(&[]).is_none());
        // Eleven continuation bytes can never be a u64.
        assert!(decode_u64(&[0x80; 11]).is_none());
        // A tenth byte carrying more than the one remaining bit
        // overflows 64 bits.
        let mut overflow = [0x80u8; MAX_VARINT_BYTES];
        overflow[MAX_VARINT_BYTES - 1] = 0x02;
        assert!(decode_u64(&overflow).is_none());
    }
}
