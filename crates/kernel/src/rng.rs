//! Per-run seed derivation for parallel sweeps.
//!
//! The paper's protocol repeats every experiment over several seeded
//! random placements. When those runs execute in parallel, each run must
//! derive its randomness from the sweep seed *and its own index* — never
//! from a generator shared across runs — so results are independent of
//! scheduling order: run `k` draws the same placement whether it executes
//! first, last, or concurrently with every other run.
//!
//! [`derive_seed`] is that derivation: a SplitMix64-style mix of
//! `seed ⊕ f(index)`. SplitMix64 is invertible, so distinct
//! `(seed, index)` pairs with the same seed never collide, and the
//! avalanche behaviour of the two multiply-xor-shift rounds decorrelates
//! the neighbouring indices a plain `seed ^ index` would leave almost
//! identical.

/// Mixes a sweep-level `seed` with a run `index` into an independent
/// per-run seed.
///
/// Deterministic, platform-independent, and injective in `index` for a
/// fixed seed:
///
/// ```
/// use cellsim_kernel::rng::derive_seed;
/// let a = derive_seed(0xCE11, 0);
/// let b = derive_seed(0xCE11, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(0xCE11, 0));
/// ```
#[must_use]
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    // Weyl-step the index so adjacent runs land far apart, then xor into
    // the seed and avalanche (SplitMix64 finalizer).
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::derive_seed;

    #[test]
    fn deterministic() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
    }

    #[test]
    fn indices_do_not_collide() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            assert!(
                seen.insert(derive_seed(0xCE11, i)),
                "collision at index {i}"
            );
        }
    }

    #[test]
    fn seeds_decorrelate() {
        // Same index, different sweep seeds → different run seeds.
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
        // seed ⊕ index symmetry must NOT hold (plain xor would alias
        // (s=1,i=0) with (s=0,i=1) after a shared mix).
        assert_ne!(derive_seed(1, 0), derive_seed(0, 1));
    }

    #[test]
    fn low_indices_avalanche() {
        // Neighbouring indices differ in about half their bits.
        let d = (derive_seed(0, 0) ^ derive_seed(0, 1)).count_ones();
        assert!((16..=48).contains(&d), "poor avalanche: {d} bits");
    }
}
