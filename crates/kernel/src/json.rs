//! A minimal recursive-descent JSON parser for the simulator's own
//! artifacts (baseline files, `MetricsTable::to_json` output).
//!
//! The workspace vendors no serde, and the emitters in this repo are all
//! hand-rolled byte-deterministic writers; this is the matching reader.
//! It parses the full JSON grammar (RFC 8259) minus two corners the
//! artifacts never use: `\uXXXX` escapes beyond the BMP surrogate rules
//! are passed through unpaired, and numbers are kept as `f64` plus the
//! raw lexeme so integers round-trip exactly.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number: the parsed value plus its raw lexeme (so `u64`s larger
    /// than 2^53 survive a round-trip via [`JsonValue::as_u64`]).
    Number(f64, String),
    /// A string (escapes resolved).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Keys are ordered (BTreeMap) so traversal is
    /// deterministic regardless of emission order.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(v, _) => Some(*v),
            _ => None,
        }
    }

    /// The value as `u64` (parsed from the exact lexeme), if it is a
    /// non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(_, raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map, if it is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()?.get(key)
    }

    /// Serializes the value back to JSON text. Deterministic: object
    /// members emit in key order (the map is a `BTreeMap`) and numbers
    /// emit their original lexeme, so `parse(v.to_json_string())`
    /// reproduces `v` exactly. This is how a JSON subtree extracted from
    /// a larger document (e.g. an in-band fault plan) is re-fed to a
    /// parser that wants text.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(_, raw) => out.push_str(raw),
            JsonValue::String(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(key));
                    out.push_str("\":");
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting the parser accepts. The parser is
/// recursive-descent, so each `[` or `{` consumes native stack; without
/// a cap, a hostile `[[[…]]]` document overflows the stack and aborts
/// the process — fatal for a long-running socket server feeding this
/// parser untrusted bytes. 128 levels is far beyond any artifact this
/// repo emits (entries nest < 10 deep) while keeping worst-case stack
/// use a few tens of kilobytes.
pub const MAX_DEPTH: usize = 128;

/// Parses one JSON document; trailing non-whitespace is an error.
///
/// Container nesting is capped at [`MAX_DEPTH`]: deeper documents
/// return a [`JsonError`] instead of overflowing the parser's stack.
///
/// # Errors
///
/// [`JsonError`] with the byte offset of the first offending character.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    /// Bumps the container-nesting depth on entering a `{`/`[`, erroring
    /// past [`MAX_DEPTH`]. Paired with a `self.depth -= 1` at each
    /// container's exit.
    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(&format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("valid UTF-8 by construction"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        let value: f64 = raw
            .parse()
            .map_err(|_| self.err(&format!("bad number '{raw}'")))?;
        Ok(JsonValue::Number(value, raw.to_string()))
    }
}

/// Escapes a string for embedding in emitted JSON (the counterpart of
/// [`parse`] for the few writers that need arbitrary strings).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" 42 ").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5e2").unwrap().as_f64(), Some(-150.0));
        assert_eq!(parse("\"a\\nb\"").unwrap().as_str(), Some("a\nb"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":{"e":null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("c")
        );
        assert_eq!(v.get("d").unwrap().get("e"), Some(&JsonValue::Null));
    }

    #[test]
    fn big_u64_round_trips_exactly() {
        let big = u64::MAX - 3;
        let v = parse(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
    }

    #[test]
    fn rejects_garbage_with_offset() {
        let err = parse("{\"a\":}").unwrap_err();
        assert_eq!(err.offset, 5);
        assert!(parse("[1,2,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // Regression: the parser is recursive-descent; before the depth
        // cap a payload like this blew the stack and killed the process.
        for open in ["[", "{\"k\":"] {
            let close = if open == "[" { "]" } else { "}" };
            let deep = format!("{}0{}", open.repeat(100_000), close.repeat(100_000));
            let err = parse(&deep).expect_err("over-deep document must be rejected");
            assert!(
                err.message.contains("nesting"),
                "error should name the depth cap: {err}"
            );
        }
        // Exactly at the cap parses fine; one past it does not.
        let ok = format!("{}0{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
        let over = format!(
            "{}0{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(parse(&over).is_err());
        // Sequential (non-nested) containers never hit the cap.
        let wide = format!("[{}]", vec!["[]"; 10_000].join(","));
        assert!(parse(&wide).is_ok());
    }

    #[test]
    fn to_json_string_round_trips() {
        let text = r#"{"a":[1,2.5,{"b":"c\nd"}],"e":null,"f":true,"g":18446744073709551612}"#;
        let v = parse(text).unwrap();
        let emitted = v.to_json_string();
        assert_eq!(parse(&emitted).unwrap(), v);
        // Canonical: emitting the reparse reproduces the same bytes.
        assert_eq!(parse(&emitted).unwrap().to_json_string(), emitted);
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{0001}f";
        let json = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&json).unwrap().as_str(), Some(nasty));
    }
}
