//! Deterministic time-ordered event queue: a hierarchical time wheel.
//!
//! The queue delivers events in non-decreasing time order with FIFO
//! ordering inside a cycle — exactly the contract a `BinaryHeap` keyed by
//! `(time, push-sequence)` provides — but with O(1) pushes, O(1) pops in
//! the common near-future case, and no per-event comparisons. The design
//! is the classic hashed hierarchical timing wheel: [`LEVELS`] wheels of
//! [`SLOTS`] slots each, where level `l` buckets times whose highest bit
//! differing from the cursor falls in bit band `[l·B, (l+1)·B)`. Far-
//! future events park in a high wheel and cascade toward level 0 as the
//! cursor approaches them.
//!
//! Correctness hinges on one invariant, restored after every pop: every
//! pending event `t` sits in slot `slot_index(t, level_for(t ^ cursor))`.
//! Because the cursor only ever advances to the globally earliest pending
//! time, the only slot whose mapping can go stale on an advance is the
//! slot containing that earliest time itself — so a single drain-and-
//! redistribute of that slot per pop suffices (events below the popped
//! time cannot exist, and events above it keep their mapping).

use std::collections::VecDeque;
use std::mem;

use crate::Cycle;

/// Bits of time resolved per wheel level; 6 keeps one `u64` occupancy
/// bitmap per level.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Levels needed to cover the full 64-bit cycle space (⌈64 / 6⌉).
const LEVELS: usize = 64usize.div_ceil(LEVEL_BITS as usize);

/// Wheel level whose bit band holds the highest set bit of `diff`.
#[inline]
fn level_for(diff: u64) -> usize {
    if diff == 0 {
        0
    } else {
        (63 - diff.leading_zeros() as usize) / LEVEL_BITS as usize
    }
}

/// Slot of time `t` within level `lvl`.
#[inline]
fn slot_index(t: u64, lvl: usize) -> usize {
    ((t >> (LEVEL_BITS as usize * lvl)) & (SLOTS as u64 - 1)) as usize
}

/// A priority queue of `(time, event)` pairs.
///
/// Events are delivered in non-decreasing time order. Events scheduled for
/// the *same* cycle come out in the order they were pushed (FIFO), which
/// keeps simulations deterministic without requiring `E: Ord`.
///
/// The queue is a time wheel, not a heap, so pushes must never land
/// before the most recently popped time (a discrete-event simulation
/// never schedules into the past; [`push`](EventQueue::push) panics if
/// one tries).
///
/// ```
/// use cellsim_kernel::{Cycle, EventQueue};
/// let mut q = EventQueue::new();
/// q.push(Cycle::new(5), "late");
/// q.push(Cycle::new(1), "early-a");
/// q.push(Cycle::new(1), "early-b");
/// assert_eq!(q.pop(), Some((Cycle::new(1), "early-a")));
/// assert_eq!(q.pop(), Some((Cycle::new(1), "early-b")));
/// assert_eq!(q.pop(), Some((Cycle::new(5), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    /// `LEVELS × SLOTS` buckets, level-major. Each bucket holds events in
    /// push order; level-0 buckets hold exactly one time each.
    slots: Vec<VecDeque<(u64, E)>>,
    /// One occupancy bitmap per level: bit `i` set ⇔ slot `i` non-empty.
    occupied: [u64; LEVELS],
    /// Time of the most recent pop; pending times are all `>= cursor`.
    cursor: u64,
    /// Cached earliest pending time.
    next: Option<u64>,
    len: usize,
    /// Reused drain buffer so steady-state cascades allocate nothing.
    scratch: Vec<(u64, E)>,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: (0..LEVELS * SLOTS).map(|_| VecDeque::new()).collect(),
            occupied: [0; LEVELS],
            cursor: 0,
            next: None,
            len: 0,
            scratch: Vec::new(),
        }
    }

    /// Schedules `event` at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the most recently popped time: the
    /// wheel's cursor has already swept past it.
    pub fn push(&mut self, at: Cycle, event: E) {
        let t = at.as_u64();
        assert!(
            t >= self.cursor,
            "event scheduled before the queue's current time: at={t}, cursor={}",
            self.cursor
        );
        self.place(t, event);
        self.len += 1;
        self.next = Some(match self.next {
            Some(n) => n.min(t),
            None => t,
        });
    }

    /// Buckets an event by its distance from the cursor. Does not touch
    /// `len`/`next` — shared by [`push`](EventQueue::push) and cascades.
    #[inline]
    fn place(&mut self, t: u64, event: E) {
        let lvl = level_for(t ^ self.cursor);
        let idx = slot_index(t, lvl);
        self.slots[lvl * SLOTS + idx].push_back((t, event));
        self.occupied[lvl] |= 1 << idx;
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let t = self.next?;
        let lvl = level_for(t ^ self.cursor);
        if lvl > 0 {
            // Advance the cursor to `t` and cascade the one slot whose
            // mapping that invalidates: the slot holding `t` itself. Its
            // residents re-bucket relative to `t` (preserving order, so
            // same-cycle FIFO survives the cascade); `t`'s own events
            // land in level 0.
            let cell = lvl * SLOTS + slot_index(t, lvl);
            let mut scratch = mem::take(&mut self.scratch);
            scratch.extend(self.slots[cell].drain(..));
            self.occupied[lvl] &= !(1 << slot_index(t, lvl));
            self.cursor = t;
            for (te, e) in scratch.drain(..) {
                self.place(te, e);
            }
            self.scratch = scratch;
        }
        self.cursor = t;
        let idx = slot_index(t, 0);
        let slot = &mut self.slots[idx];
        let (at, event) = slot.pop_front().expect("cached next time has an event");
        debug_assert_eq!(at, t, "level-0 slot holds a single time");
        self.len -= 1;
        if slot.is_empty() {
            self.occupied[0] &= !(1 << idx);
            self.next = self.scan_next();
        } else {
            self.next = Some(t);
        }
        Some((Cycle::new(at), event))
    }

    /// Earliest pending time after the cursor's slot drained. Pending
    /// times at level `l` always index at or after the cursor's own slot
    /// (they share the bits above band `l` with the cursor), so one
    /// masked bitmap scan per level finds the first occupied slot; any
    /// occupied lower level beats any higher one.
    fn scan_next(&self) -> Option<u64> {
        for lvl in 0..LEVELS {
            let bits = self.occupied[lvl] & (!0u64 << slot_index(self.cursor, lvl));
            if bits != 0 {
                let idx = bits.trailing_zeros() as usize;
                if lvl == 0 {
                    // Level-0 slots hold one exact time in the cursor's span.
                    return Some((self.cursor & !(SLOTS as u64 - 1)) | idx as u64);
                }
                // A higher-level slot spans many times; take its minimum.
                return self.slots[lvl * SLOTS + idx].iter().map(|&(t, _)| t).min();
            }
        }
        None
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.next.map(Cycle::new)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len)
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(30), 3);
        q.push(Cycle::new(10), 1);
        q.push(Cycle::new(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle::new(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Cycle::new(4), ());
        q.push(Cycle::new(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Cycle::new(2)));
        q.pop();
        assert_eq!(q.peek_time(), Some(Cycle::new(4)));
    }

    #[test]
    fn far_future_events_cascade_down_in_order() {
        // Spans several wheel levels, including a same-cycle pair parked
        // beyond the first horizon that must stay FIFO across cascades.
        let mut q = EventQueue::new();
        q.push(Cycle::new(1 << 20), "far-a");
        q.push(Cycle::new(3), "near");
        q.push(Cycle::new(1 << 20), "far-b");
        q.push(Cycle::new((1 << 20) + 1), "far-c");
        q.push(Cycle::new(u64::MAX), "horizon");
        assert_eq!(q.pop(), Some((Cycle::new(3), "near")));
        assert_eq!(q.pop(), Some((Cycle::new(1 << 20), "far-a")));
        assert_eq!(q.pop(), Some((Cycle::new(1 << 20), "far-b")));
        assert_eq!(q.pop(), Some((Cycle::new((1 << 20) + 1), "far-c")));
        assert_eq!(q.pop(), Some((Cycle::new(u64::MAX), "horizon")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(100), 1);
        q.push(Cycle::new(200), 2);
        assert_eq!(q.pop(), Some((Cycle::new(100), 1)));
        // Push between pops, at and after the cursor.
        q.push(Cycle::new(100), 3);
        q.push(Cycle::new(150), 4);
        assert_eq!(q.pop(), Some((Cycle::new(100), 3)));
        assert_eq!(q.pop(), Some((Cycle::new(150), 4)));
        assert_eq!(q.pop(), Some((Cycle::new(200), 2)));
    }

    #[test]
    #[should_panic(expected = "before the queue's current time")]
    fn pushing_behind_the_cursor_panics() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(50), ());
        q.pop();
        q.push(Cycle::new(49), ());
    }
}
