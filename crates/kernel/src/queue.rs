//! Deterministic time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Cycle;

struct Entry<E> {
    at: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    // Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of `(time, event)` pairs.
///
/// Events are delivered in non-decreasing time order. Events scheduled for
/// the *same* cycle come out in the order they were pushed (FIFO), which
/// keeps simulations deterministic without requiring `E: Ord`.
///
/// ```
/// use cellsim_kernel::{Cycle, EventQueue};
/// let mut q = EventQueue::new();
/// q.push(Cycle::new(5), "late");
/// q.push(Cycle::new(1), "early-a");
/// q.push(Cycle::new(1), "early-b");
/// assert_eq!(q.pop(), Some((Cycle::new(1), "early-a")));
/// assert_eq!(q.pop(), Some((Cycle::new(1), "early-b")));
/// assert_eq!(q.pop(), Some((Cycle::new(5), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at time `at`.
    pub fn push(&mut self, at: Cycle, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(30), 3);
        q.push(Cycle::new(10), 1);
        q.push(Cycle::new(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle::new(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Cycle::new(4), ());
        q.push(Cycle::new(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Cycle::new(2)));
        q.pop();
        assert_eq!(q.peek_time(), Some(Cycle::new(4)));
    }
}
