//! Simulated time and clock conversions.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in **bus cycles**.
///
/// The Cell's Element Interconnect Bus and every shared structure attached
/// to it are clocked at half the CPU frequency, so the bus cycle is the
/// natural unit for bandwidth experiments. Use [`MachineClock`] to convert
/// cycle counts into seconds or GB/s.
///
/// `Cycle` is a transparent newtype over `u64`; adding a `u64` advances the
/// clock by that many cycles.
///
/// ```
/// use cellsim_kernel::Cycle;
/// let t = Cycle::new(100) + 28;
/// assert_eq!(t.as_u64(), 128);
/// assert_eq!(t - Cycle::new(100), 28);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// Time zero: the start of every simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a time stamp at `cycles` bus cycles.
    pub const fn new(cycles: u64) -> Self {
        Cycle(cycles)
    }

    /// Returns the raw cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the later of two time stamps.
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the earlier of two time stamps.
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }

    /// Cycles elapsed since `earlier`, saturating at zero if `earlier` is
    /// actually later than `self`.
    pub fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    /// Elapsed cycles between two stamps.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: Cycle) -> u64 {
        debug_assert!(self.0 >= rhs.0, "negative cycle difference");
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} bus-cycles", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(v: u64) -> Self {
        Cycle(v)
    }
}

/// Frequency description of a simulated Cell machine.
///
/// The ISPASS 2007 blade runs the CPU at 2.1 GHz with the bus at half that,
/// which is the [`MachineClock::default`]. Bandwidths in this crate follow
/// the STREAM convention: 1 GB = 10⁹ bytes.
///
/// ```
/// use cellsim_kernel::MachineClock;
/// let clk = MachineClock::default();
/// // One ramp port moves 16 bytes per bus cycle = 16.8 GB/s.
/// let gbps = clk.gbytes_per_sec(16, 1);
/// assert!((gbps - 16.8).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineClock {
    cpu_hz: f64,
    bus_divisor: u32,
}

impl MachineClock {
    /// Creates a clock from a CPU frequency in Hz and the CPU→bus divisor.
    ///
    /// # Panics
    ///
    /// Panics if `cpu_hz` is not finite and positive, or `bus_divisor` is 0.
    pub fn new(cpu_hz: f64, bus_divisor: u32) -> Self {
        assert!(
            cpu_hz.is_finite() && cpu_hz > 0.0,
            "cpu frequency must be positive"
        );
        assert!(bus_divisor > 0, "bus divisor must be non-zero");
        MachineClock {
            cpu_hz,
            bus_divisor,
        }
    }

    /// CPU frequency in Hz.
    pub fn cpu_hz(&self) -> f64 {
        self.cpu_hz
    }

    /// Bus frequency in Hz (CPU frequency over the divisor).
    pub fn bus_hz(&self) -> f64 {
        self.cpu_hz / f64::from(self.bus_divisor)
    }

    /// Converts a span of bus cycles into seconds.
    pub fn seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.bus_hz()
    }

    /// Sustained bandwidth in GB/s (10⁹ bytes per second) for `bytes`
    /// moved over `cycles` bus cycles. Returns 0.0 when `cycles` is 0.
    pub fn gbytes_per_sec(&self, bytes: u64, cycles: u64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        bytes as f64 / self.seconds(cycles) / 1e9
    }

    /// Converts CPU cycles to bus cycles, rounding up so that work never
    /// completes early.
    pub fn cpu_to_bus_cycles(&self, cpu_cycles: u64) -> u64 {
        cpu_cycles.div_ceil(u64::from(self.bus_divisor))
    }
}

impl Default for MachineClock {
    /// The ISPASS 2007 blade: 2.1 GHz CPU, bus at half speed.
    fn default() -> Self {
        MachineClock::new(2.1e9, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic_round_trips() {
        let t = Cycle::new(5) + 7;
        assert_eq!(t, Cycle::new(12));
        assert_eq!(t - Cycle::new(5), 7);
        assert_eq!(t.saturating_since(Cycle::new(20)), 0);
    }

    #[test]
    fn cycle_orders_and_compares() {
        assert!(Cycle::new(1) < Cycle::new(2));
        assert_eq!(Cycle::new(3).max(Cycle::new(9)), Cycle::new(9));
        assert_eq!(Cycle::new(3).min(Cycle::new(9)), Cycle::new(3));
    }

    #[test]
    fn default_clock_matches_the_paper() {
        let clk = MachineClock::default();
        assert_eq!(clk.cpu_hz(), 2.1e9);
        assert_eq!(clk.bus_hz(), 1.05e9);
        // 16 B per bus cycle is the per-port EIB peak: 16.8 GB/s.
        assert!((clk.gbytes_per_sec(16, 1) - 16.8).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_is_zero_bandwidth() {
        assert_eq!(MachineClock::default().gbytes_per_sec(1024, 0), 0.0);
    }

    #[test]
    fn cpu_to_bus_rounds_up() {
        let clk = MachineClock::default();
        assert_eq!(clk.cpu_to_bus_cycles(0), 0);
        assert_eq!(clk.cpu_to_bus_cycles(1), 1);
        assert_eq!(clk.cpu_to_bus_cycles(2), 1);
        assert_eq!(clk.cpu_to_bus_cycles(3), 2);
    }

    #[test]
    #[should_panic(expected = "bus divisor")]
    fn zero_divisor_panics() {
        let _ = MachineClock::new(1e9, 0);
    }
}
