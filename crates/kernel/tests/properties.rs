//! Property tests for the simulation kernel.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cellsim_kernel::stats::Summary;
use cellsim_kernel::{Cycle, EventQueue, MachineClock};
use proptest::prelude::*;

/// Reference model for the time wheel: a `BinaryHeap` keyed by
/// `(time, push-sequence)`, i.e. exactly the structure the wheel replaced.
#[derive(Default)]
struct HeapModel {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    seq: u64,
}

impl HeapModel {
    fn push(&mut self, t: u64) -> u64 {
        let id = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((t, id)));
        id
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        self.heap.pop().map(|Reverse(x)| x)
    }
}

/// One step of an interleaved schedule: push a burst of events at
/// `now + delta` for each delta, then pop `pops` events.
#[derive(Debug, Clone)]
struct Step {
    deltas: Vec<u64>,
    pops: usize,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    // Deltas mix same-cycle bursts (0), near-future, and far-future
    // horizon spills that park several wheel levels up (up to 2^40).
    let delta = prop_oneof![
        0u64..64,
        0u64..64,
        0u64..4096,
        0u64..1_000_000,
        0u64..(1u64 << 40),
    ];
    (proptest::collection::vec(delta, 0..12), 0usize..16)
        .prop_map(|(deltas, pops)| Step { deltas, pops })
}

proptest! {
    /// The time wheel pops an arbitrary interleaved schedule in exactly
    /// the order of the `BinaryHeap` reference model: non-decreasing
    /// time, FIFO within a cycle — including same-cycle bursts and
    /// far-future events that cascade down through the wheel levels.
    #[test]
    fn wheel_matches_heap_reference(steps in proptest::collection::vec(step_strategy(), 1..40)) {
        let mut wheel = EventQueue::new();
        let mut model = HeapModel::default();
        let mut now = 0u64;
        for step in &steps {
            for &delta in &step.deltas {
                let t = now.saturating_add(delta);
                let id = model.push(t);
                wheel.push(Cycle::new(t), id);
            }
            for _ in 0..step.pops {
                let expected = model.pop();
                let actual = wheel.pop().map(|(t, id)| (t.as_u64(), id));
                prop_assert_eq!(actual, expected);
                if let Some((t, _)) = expected {
                    now = t; // later pushes are relative to the popped time
                }
            }
            prop_assert_eq!(wheel.len(), model.heap.len());
            prop_assert_eq!(
                wheel.peek_time().map(Cycle::as_u64),
                model.heap.peek().map(|Reverse((t, _))| *t)
            );
        }
        // Drain whatever is left; order must still agree.
        loop {
            let expected = model.pop();
            let actual = wheel.pop().map(|(t, id)| (t.as_u64(), id));
            prop_assert_eq!(actual, expected);
            if actual.is_none() {
                break;
            }
        }
    }

    /// The event queue delivers events exactly as a stable sort by time
    /// would.
    #[test]
    fn queue_matches_stable_sort(times in proptest::collection::vec(0u64..1000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Cycle::new(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort_by_key(|&(t, _)| t); // stable: FIFO within a cycle
        let actual: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.as_u64(), e))).collect();
        prop_assert_eq!(actual, expected);
    }

    /// Popping never goes backwards in time.
    #[test]
    fn queue_time_is_monotone(times in proptest::collection::vec(0u64..500, 1..100)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.push(Cycle::new(t), ());
        }
        let mut last = Cycle::ZERO;
        while let Some((t, ())) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// Summary agrees with a straightforward reference computation.
    #[test]
    fn summary_matches_reference(samples in proptest::collection::vec(0.0f64..1000.0, 1..50)) {
        let s = Summary::from_samples(&samples).unwrap();
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        prop_assert_eq!(s.min, min);
        prop_assert_eq!(s.max, max);
        prop_assert!((s.mean - mean).abs() < 1e-9);
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert_eq!(s.count, samples.len());
        prop_assert!(s.spread() >= 0.0);
    }

    /// Bandwidth conversion round-trips with seconds().
    #[test]
    fn bandwidth_is_consistent_with_seconds(bytes in 1u64..1_000_000, cycles in 1u64..1_000_000) {
        let clk = MachineClock::default();
        let direct = clk.gbytes_per_sec(bytes, cycles);
        let via_seconds = bytes as f64 / clk.seconds(cycles) / 1e9;
        prop_assert!((direct - via_seconds).abs() < 1e-9);
    }

    /// CPU→bus cycle conversion never loses work (always rounds up).
    #[test]
    fn cpu_to_bus_rounds_up(cpu in 0u64..1_000_000) {
        let clk = MachineClock::default();
        let bus = clk.cpu_to_bus_cycles(cpu);
        prop_assert!(bus * 2 >= cpu);
        prop_assert!(bus.saturating_sub(1) * 2 < cpu || cpu == 0);
    }
}
