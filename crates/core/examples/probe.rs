//! Scratch calibration probe (not part of the public examples).

use cellsim_core::{CellSystem, Placement, SyncPolicy, TransferPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

const MIB: u64 = 1 << 20;

fn main() {
    let sys = CellSystem::blade();
    let id = Placement::identity();

    println!("== Fig 8: SPE->mem GET/PUT/COPY (16KB elems), sum over 10 placements ==");
    for op in ["get", "put", "copy"] {
        for n in [1usize, 2, 4, 8] {
            let mut b = TransferPlan::builder();
            for spe in 0..n {
                b = match op {
                    "get" => b.get_from_memory(spe, 2 * MIB, 16384, SyncPolicy::AfterAll),
                    "put" => b.put_to_memory(spe, 2 * MIB, 16384, SyncPolicy::AfterAll),
                    _ => b.copy_memory(spe, 2 * MIB, 16384, SyncPolicy::AfterAll),
                };
            }
            let plan = b.build().unwrap();
            let mut rng = StdRng::seed_from_u64(99);
            let mean: f64 = (0..10)
                .map(|_| {
                    sys.try_run(&Placement::random(&mut rng), &plan)
                        .unwrap()
                        .sum_gbps
                })
                .sum::<f64>()
                / 10.0;
            print!("  {op} {n}: {mean:.1}  ");
        }
        println!();
    }

    println!("== pair exchange vs elem size (DMA-elem), peak 33.6 ==");
    for elem in [128u32, 256, 512, 1024, 2048, 4096, 8192, 16384] {
        let plan = TransferPlan::builder()
            .exchange_with(0, 1, MIB, elem, SyncPolicy::AfterAll)
            .build()
            .unwrap();
        let r = sys.try_run(&id, &plan).unwrap();
        println!("  {elem:>5} B: {:.2}", r.sum_gbps);
    }

    println!("== pair exchange vs elem size (DMA-list) ==");
    for elem in [128u32, 512, 2048, 8192] {
        let plan = TransferPlan::builder()
            .exchange_with_list(0, 1, MIB, elem, SyncPolicy::AfterAll)
            .build()
            .unwrap();
        let r = sys.try_run(&id, &plan).unwrap();
        println!("  {elem:>5} B: {:.2}", r.sum_gbps);
    }

    println!("== sync delay (4KB elems, pair): wait every k ==");
    for k in [1u32, 2, 4, 8, 16, 0] {
        let sync = if k == 0 {
            SyncPolicy::AfterAll
        } else {
            SyncPolicy::Every(k)
        };
        let plan = TransferPlan::builder()
            .exchange_with(0, 1, MIB, 4096, sync)
            .build()
            .unwrap();
        let r = sys.try_run(&id, &plan).unwrap();
        println!("  every {k:>2}: {:.2}", r.sum_gbps);
    }

    println!("== couples (4 active pairs = 8 SPEs), 10 placements, 16KB, peak 134.4 ==");
    let mut rng = StdRng::seed_from_u64(7);
    let mut samples = Vec::new();
    let mut b = TransferPlan::builder();
    for pair in 0..4usize {
        b = b.exchange_with(2 * pair, 2 * pair + 1, MIB, 16384, SyncPolicy::AfterAll);
    }
    let plan = b.build().unwrap();
    for _ in 0..10 {
        let p = Placement::random(&mut rng);
        samples.push(sys.try_run(&p, &plan).unwrap().aggregate_gbps);
    }
    summarize(&samples);

    println!("== cycle of N SPEs (16KB), peaks 33.6/67.2/134.4 ==");
    for n in [2usize, 4, 8] {
        let mut b = TransferPlan::builder();
        for spe in 0..n {
            b = b.exchange_with(spe, (spe + 1) % n, MIB, 16384, SyncPolicy::AfterAll);
        }
        let plan = b.build().unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let samples: Vec<f64> = (0..10)
            .map(|_| {
                sys.try_run(&Placement::random(&mut rng), &plan)
                    .unwrap()
                    .aggregate_gbps
            })
            .collect();
        print!("  {n} SPEs: ");
        summarize(&samples);
    }
}

fn summarize(samples: &[f64]) {
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean: f64 = s.iter().sum::<f64>() / s.len() as f64;
    println!(
        "min={:.1} med={:.1} mean={:.1} max={:.1}",
        s[0],
        s[s.len() / 2],
        mean,
        s[s.len() - 1]
    );
}
