//! Fabric tracing: what the machine did, cycle by cycle.
//!
//! [`crate::CellSystem::try_run_traced`] records a [`FabricTrace`]: one event
//! per packet phase (command issue, memory access, ring grant, delivery).
//! The analysis methods turn that into the quantities an architect asks
//! for — a throughput timeline, per-ring grant shares, per-SPE delivery
//! breakdowns — without re-running the simulation.
//!
//! The trace buffer is bounded; once it fills, later events are counted
//! but not stored ([`FabricTrace::dropped`]). A paper-scale run (32 MiB ×
//! 8 SPEs) generates ~8M events and overflows the default capacity, so
//! every aggregate analysis method returns `Err(`[`TraceTruncated`]`)`
//! rather than a silently-partial answer; size the buffer with
//! [`crate::CellSystem::try_run_traced_with_capacity`] when you need complete
//! aggregates.

use std::fmt;

use cellsim_eib::RingId;
use cellsim_kernel::trace::Trace;
use cellsim_kernel::{Cycle, MachineClock};
use cellsim_mem::BankId;

use crate::latency::DmaPathClass;

/// Context the fabric knows at every trace point but [`FabricEvent`]
/// does not carry: the initiating logical SPE and the DMA path class of
/// the packet. The in-memory [`FabricTrace`] ignores it (its analyses
/// predate it); the persistent trace store indexes on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceMeta {
    /// Initiating logical SPE.
    pub spe: u8,
    /// The packet's DMA path (mem-get/mem-put/ls-get/ls-put).
    pub path: DmaPathClass,
}

/// Where the fabric sends trace events. One simulation drives at most
/// one sink; the two implementations are the bounded in-memory
/// [`FabricTrace`] (post-hoc analyses) and the streaming
/// [`TraceStoreWriter`](crate::tracestore::TraceStoreWriter) (persistent
/// per-run artifacts, no full-run buffering). Sinks must be infallible:
/// a sink that can fail (I/O) latches its error internally and reports
/// it when finalized, never mid-run.
pub trait TraceSink {
    /// Records one event at simulated time `at`.
    fn record(&mut self, at: Cycle, meta: TraceMeta, event: FabricEvent);
}

impl TraceSink for FabricTrace {
    fn record(&mut self, at: Cycle, _meta: TraceMeta, event: FabricEvent) {
        self.trace.record(at, event);
    }
}

/// One traced fabric occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricEvent {
    /// An MFC put a packet on the command bus.
    CommandIssued {
        /// Initiating logical SPE.
        spe: usize,
    },
    /// A DRAM access was queued.
    MemoryAccess {
        /// Which bank served it.
        bank: BankId,
        /// Payload size.
        bytes: u32,
    },
    /// The data arbiter granted a ring.
    Granted {
        /// Ring carrying the packet.
        ring: RingId,
        /// Path length.
        hops: usize,
        /// Payload size.
        bytes: u32,
    },
    /// A packet retired: its payload reached its final destination (for
    /// memory PUTs that is the DRAM write completing, not wire arrival)
    /// and its MFC slot freed. Recorded at retirement so the event count
    /// equals [`FabricReport::packets`](crate::FabricReport::packets)
    /// exactly, even when a fault plan abandons packets mid-flight.
    Delivered {
        /// Initiating logical SPE.
        spe: usize,
        /// Payload size.
        bytes: u32,
    },
}

/// The trace buffer overflowed: aggregate analyses over it would be
/// silently wrong, so they refuse instead. Re-run with a larger capacity
/// ([`crate::CellSystem::try_run_traced_with_capacity`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceTruncated {
    /// Events recorded before the buffer filled.
    pub recorded: usize,
    /// Events that arrived after the buffer filled and were not stored.
    pub dropped: u64,
}

impl fmt::Display for TraceTruncated {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace truncated: {} events dropped after {} recorded; \
             re-run with a larger trace capacity",
            self.dropped, self.recorded
        )
    }
}

impl std::error::Error for TraceTruncated {}

/// A recorded fabric run.
#[derive(Debug, Clone, Default)]
pub struct FabricTrace {
    pub(crate) trace: Trace<FabricEvent>,
}

impl FabricTrace {
    /// An empty trace with the default capacity.
    pub fn new() -> FabricTrace {
        FabricTrace::default()
    }

    /// An empty trace that stores up to `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> FabricTrace {
        FabricTrace {
            trace: Trace::with_capacity(capacity),
        }
    }

    /// The raw events, in time order.
    pub fn events(&self) -> &[cellsim_kernel::trace::TraceEvent<FabricEvent>] {
        self.trace.events()
    }

    /// Events that arrived after the trace filled.
    pub fn dropped(&self) -> u64 {
        self.trace.dropped()
    }

    /// `Err` iff the trace overflowed and aggregates would be partial.
    ///
    /// # Errors
    ///
    /// [`TraceTruncated`] when any event was dropped.
    pub fn require_complete(&self) -> Result<(), TraceTruncated> {
        if self.trace.dropped() > 0 {
            Err(TraceTruncated {
                recorded: self.trace.events().len(),
                dropped: self.trace.dropped(),
            })
        } else {
            Ok(())
        }
    }

    /// Delivered-bytes throughput (GB/s) per `bucket_cycles` window —
    /// the time-resolved version of the experiment's single number.
    ///
    /// # Errors
    ///
    /// [`TraceTruncated`] when events were dropped: a timeline over a
    /// truncated trace would silently undercount the tail of the run.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_cycles` is zero.
    pub fn throughput_timeline(
        &self,
        clock: &MachineClock,
        bucket_cycles: u64,
    ) -> Result<Vec<(Cycle, f64)>, TraceTruncated> {
        assert!(bucket_cycles > 0, "bucket must be non-zero");
        self.require_complete()?;
        let mut buckets: Vec<u64> = Vec::new();
        for e in self.trace.events() {
            if let FabricEvent::Delivered { bytes, .. } = e.kind {
                let idx = (e.at.as_u64() / bucket_cycles) as usize;
                if buckets.len() <= idx {
                    buckets.resize(idx + 1, 0);
                }
                buckets[idx] += u64::from(bytes);
            }
        }
        Ok(buckets
            .into_iter()
            .enumerate()
            .map(|(i, b)| {
                (
                    Cycle::new(i as u64 * bucket_cycles),
                    clock.gbytes_per_sec(b, bucket_cycles),
                )
            })
            .collect())
    }

    /// Bytes granted per ring: how evenly the arbiter spread the load.
    ///
    /// # Errors
    ///
    /// [`TraceTruncated`] when events were dropped.
    pub fn ring_shares(&self) -> Result<Vec<(RingId, u64)>, TraceTruncated> {
        self.require_complete()?;
        let mut shares: Vec<(RingId, u64)> = Vec::new();
        for e in self.trace.events() {
            if let FabricEvent::Granted { ring, bytes, .. } = e.kind {
                match shares.iter_mut().find(|(r, _)| *r == ring) {
                    Some((_, b)) => *b += u64::from(bytes),
                    None => shares.push((ring, u64::from(bytes))),
                }
            }
        }
        shares.sort_by_key(|&(r, _)| r);
        Ok(shares)
    }

    /// Mean hop count over all grants — the placement-quality metric.
    ///
    /// Unlike the byte-exact aggregates, a mean over the recorded prefix
    /// is still a meaningful estimate, so this method stays infallible on
    /// a truncated trace; check [`FabricTrace::dropped`] if exactness
    /// matters.
    pub fn mean_hops(&self) -> f64 {
        let (sum, n) = self
            .trace
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                FabricEvent::Granted { hops, .. } => Some(hops as u64),
                _ => None,
            })
            .fold((0u64, 0u64), |(s, n), h| (s + h, n + 1));
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// Delivered bytes per logical SPE.
    ///
    /// # Errors
    ///
    /// [`TraceTruncated`] when events were dropped.
    pub fn per_spe_bytes(&self) -> Result<Vec<(usize, u64)>, TraceTruncated> {
        self.require_complete()?;
        let mut out: Vec<(usize, u64)> = Vec::new();
        for e in self.trace.events() {
            if let FabricEvent::Delivered { spe, bytes } = e.kind {
                match out.iter_mut().find(|(s, _)| *s == spe) {
                    Some((_, b)) => *b += u64::from(bytes),
                    None => out.push((spe, u64::from(bytes))),
                }
            }
        }
        out.sort_by_key(|&(s, _)| s);
        Ok(out)
    }

    /// Bytes served per memory bank.
    ///
    /// # Errors
    ///
    /// [`TraceTruncated`] when events were dropped.
    pub fn bank_bytes(&self) -> Result<Vec<(BankId, u64)>, TraceTruncated> {
        self.require_complete()?;
        let mut out: Vec<(BankId, u64)> = Vec::new();
        for e in self.trace.events() {
            if let FabricEvent::MemoryAccess { bank, bytes } = e.kind {
                match out.iter_mut().find(|(b, _)| *b == bank) {
                    Some((_, acc)) => *acc += u64::from(bytes),
                    None => out.push((bank, u64::from(bytes))),
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellSystem, Placement, SyncPolicy, TransferPlan};

    fn traced_run() -> FabricTrace {
        let sys = CellSystem::blade();
        let plan = TransferPlan::builder()
            .get_from_memory(0, 256 << 10, 16 * 1024, SyncPolicy::AfterAll)
            .get_from_memory(1, 256 << 10, 16 * 1024, SyncPolicy::AfterAll)
            .build()
            .unwrap();
        let (_, trace) = sys.try_run_traced(&Placement::identity(), &plan).unwrap();
        trace
    }

    #[test]
    fn trace_captures_every_packet_phase() {
        let trace = traced_run();
        let events = trace.events();
        let count =
            |pred: fn(&FabricEvent) -> bool| events.iter().filter(|e| pred(&e.kind)).count();
        // 512 KiB / 128 B = 4096 packets, each with one of each phase.
        assert_eq!(
            count(|k| matches!(k, FabricEvent::CommandIssued { .. })),
            4096
        );
        assert_eq!(count(|k| matches!(k, FabricEvent::Delivered { .. })), 4096);
        assert_eq!(count(|k| matches!(k, FabricEvent::Granted { .. })), 4096);
        assert_eq!(trace.dropped(), 0);
    }

    #[test]
    fn timeline_integrates_to_total_bytes() {
        let trace = traced_run();
        let clock = MachineClock::default();
        let bucket = 1000;
        let timeline = trace.throughput_timeline(&clock, bucket).unwrap();
        assert!(!timeline.is_empty());
        let total: f64 = timeline
            .iter()
            .map(|(_, gbps)| gbps * clock.seconds(bucket) * 1e9)
            .sum();
        assert!((total - 512.0 * 1024.0).abs() < 1.0, "total={total}");
    }

    #[test]
    fn banks_split_the_two_spe_load() {
        let trace = traced_run();
        let banks = trace.bank_bytes().unwrap();
        assert_eq!(banks.len(), 2, "round-robin regions use both banks");
        for (_, bytes) in banks {
            assert_eq!(bytes, 256 << 10);
        }
    }

    #[test]
    fn per_spe_accounting_matches_the_plan() {
        let trace = traced_run();
        assert_eq!(
            trace.per_spe_bytes().unwrap(),
            vec![(0, 256 << 10), (1, 256 << 10)]
        );
    }

    #[test]
    fn mean_hops_is_positive_and_small() {
        let trace = traced_run();
        let h = trace.mean_hops();
        assert!((1.0..=6.0).contains(&h), "h={h}");
    }

    #[test]
    fn truncated_trace_refuses_aggregate_analysis() {
        // A tiny buffer overflows immediately; before this regression
        // test, the analyses silently returned prefix-only aggregates.
        let sys = CellSystem::blade();
        let plan = TransferPlan::builder()
            .get_from_memory(0, 64 << 10, 16 * 1024, SyncPolicy::AfterAll)
            .build()
            .unwrap();
        let (report, trace) = sys
            .try_run_traced_with_capacity(&Placement::identity(), &plan, 8)
            .unwrap();
        assert!(trace.dropped() > 0, "64 KiB must overflow 8 events");
        let err = trace.per_spe_bytes().unwrap_err();
        assert_eq!(err.recorded, 8);
        assert!(err.dropped > 0);
        assert!(trace.bank_bytes().is_err());
        assert!(trace.ring_shares().is_err());
        assert!(trace
            .throughput_timeline(&MachineClock::default(), 1000)
            .is_err());
        // The always-on metrics are unaffected by trace truncation.
        assert_eq!(report.metrics.per_spe[0].occupancy_cycles.len(), 9);
    }

    #[test]
    fn sized_capacity_keeps_the_trace_complete() {
        let sys = CellSystem::blade();
        let plan = TransferPlan::builder()
            .get_from_memory(0, 64 << 10, 16 * 1024, SyncPolicy::AfterAll)
            .build()
            .unwrap();
        // 512 packets × ≤4 phases each.
        let (_, trace) = sys
            .try_run_traced_with_capacity(&Placement::identity(), &plan, 4 * 512)
            .unwrap();
        assert_eq!(trace.dropped(), 0);
        assert!(trace.require_complete().is_ok());
        assert_eq!(trace.per_spe_bytes().unwrap(), vec![(0, 64 << 10)]);
    }
}
