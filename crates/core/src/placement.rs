//! Logical→physical SPE placement.

use std::fmt;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::SPE_COUNT;

/// A mapping from the logical SPE numbers a program sees to the physical
/// SPE positions on the EIB ring.
///
/// On the paper's blade, `libspe 1.1` offered no control over (or even
/// visibility into) this mapping, so every experiment was run ten times to
/// sample different placements; the spread between the best and worst
/// placement is the subject of the paper's Figures 13 and 16.
///
/// ```
/// use cellsim_core::Placement;
/// let p = Placement::identity();
/// assert_eq!(p.physical(3), 3);
/// let q = Placement::from_mapping([7, 6, 5, 4, 3, 2, 1, 0]).unwrap();
/// assert_eq!(q.physical(0), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Placement {
    logical_to_physical: [u8; SPE_COUNT],
}

impl Placement {
    /// Logical SPE *i* runs on physical SPE *i*.
    pub fn identity() -> Placement {
        Placement {
            logical_to_physical: [0, 1, 2, 3, 4, 5, 6, 7],
        }
    }

    /// A uniformly random permutation — one simulated `spe_create_thread`
    /// lottery draw.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Placement {
        let mut map = [0u8, 1, 2, 3, 4, 5, 6, 7];
        map.shuffle(rng);
        Placement {
            logical_to_physical: map,
        }
    }

    /// The `index`-th draw of a placement lottery seeded with `seed`.
    ///
    /// Every draw derives its own generator from
    /// [`cellsim_kernel::rng::derive_seed`]`(seed, index)`, so draw `k`
    /// is the same placement whether the sweep runs serially, in any
    /// parallel interleaving, or resumes from a cache — the property the
    /// parallel sweep executor's determinism guarantee rests on.
    pub fn lottery(seed: u64, index: u64) -> Placement {
        use rand::SeedableRng;
        let mut rng =
            rand::rngs::StdRng::seed_from_u64(cellsim_kernel::rng::derive_seed(seed, index));
        Placement::random(&mut rng)
    }

    /// The `index`-th lottery draw over a partially fused-off part:
    /// physical SPEs whose bit is set in `fused_mask` never receive the
    /// low logical slots. The healthy SPEs are shuffled into logical
    /// `0..healthy_count` (the slots transfer plans drive first) and the
    /// fused ones are pinned, in ascending order, to the highest logical
    /// slots — so a plan using at most `healthy_count` SPEs never touches
    /// fused silicon. With `fused_mask == 0` this is exactly
    /// [`Placement::lottery`].
    pub fn lottery_avoiding(seed: u64, index: u64, fused_mask: u8) -> Placement {
        use rand::SeedableRng;
        let mut rng =
            rand::rngs::StdRng::seed_from_u64(cellsim_kernel::rng::derive_seed(seed, index));
        let mut healthy: Vec<u8> = (0..SPE_COUNT as u8)
            .filter(|p| fused_mask & (1 << p) == 0)
            .collect();
        healthy.shuffle(&mut rng);
        let fused = (0..SPE_COUNT as u8).filter(|p| fused_mask & (1 << p) != 0);
        let mut map = [0u8; SPE_COUNT];
        for (slot, phys) in map.iter_mut().zip(healthy.into_iter().chain(fused)) {
            *slot = phys;
        }
        Placement {
            logical_to_physical: map,
        }
    }

    /// Builds a placement from an explicit mapping.
    ///
    /// Returns `None` unless `map` is a permutation of `0..8`.
    pub fn from_mapping(map: [u8; SPE_COUNT]) -> Option<Placement> {
        let mut seen = [false; SPE_COUNT];
        for &p in &map {
            let slot = seen.get_mut(usize::from(p))?;
            if *slot {
                return None;
            }
            *slot = true;
        }
        Some(Placement {
            logical_to_physical: map,
        })
    }

    /// The physical SPE that logical SPE `logical` runs on.
    ///
    /// # Panics
    ///
    /// Panics if `logical >= 8`.
    pub fn physical(&self, logical: usize) -> u8 {
        self.logical_to_physical[logical]
    }

    /// The full mapping, indexed by logical SPE.
    pub fn mapping(&self) -> &[u8; SPE_COUNT] {
        &self.logical_to_physical
    }
}

impl Default for Placement {
    fn default() -> Self {
        Placement::identity()
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "placement[")?;
        for (i, p) in self.logical_to_physical.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{i}→{p}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_maps_straight_through() {
        let p = Placement::identity();
        for i in 0..SPE_COUNT {
            assert_eq!(p.physical(i), i as u8);
        }
    }

    #[test]
    fn random_is_a_permutation_and_seeded() {
        let mut rng = StdRng::seed_from_u64(42);
        let p = Placement::random(&mut rng);
        let mut seen = [false; SPE_COUNT];
        for i in 0..SPE_COUNT {
            seen[p.physical(i) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Determinism under the same seed.
        let mut rng2 = StdRng::seed_from_u64(42);
        assert_eq!(p, Placement::random(&mut rng2));
    }

    #[test]
    fn lottery_avoiding_pins_fused_spes_to_the_top() {
        // Physical SPE 7 fused off (the PS3 part): every draw keeps it in
        // the last logical slot, and the healthy seven still permute.
        for index in 0..16 {
            let p = Placement::lottery_avoiding(9, index, 1 << 7);
            assert_eq!(p.physical(7), 7);
            let mut seen = [false; SPE_COUNT];
            for i in 0..SPE_COUNT {
                seen[p.physical(i) as usize] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
        // No mask: identical to the plain lottery, draw for draw.
        for index in 0..8 {
            assert_eq!(
                Placement::lottery_avoiding(11, index, 0),
                Placement::lottery(11, index)
            );
        }
    }

    #[test]
    fn from_mapping_rejects_non_permutations() {
        assert!(Placement::from_mapping([0, 1, 2, 3, 4, 5, 6, 6]).is_none());
        assert!(Placement::from_mapping([0, 1, 2, 3, 4, 5, 6, 8]).is_none());
        assert!(Placement::from_mapping([1, 0, 3, 2, 5, 4, 7, 6]).is_some());
    }

    #[test]
    fn display_mentions_every_lane() {
        let s = Placement::identity().to_string();
        assert!(s.contains("0→0") && s.contains("7→7"));
    }
}
