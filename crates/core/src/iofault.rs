//! Injectable I/O faults: a deterministic, seeded seam over the file
//! operations the persistence layers use.
//!
//! `diskcache`, `tracestore` and the serve daemon's stats log all route
//! their filesystem calls through the free functions here. In normal
//! operation each hook is a single relaxed atomic load on top of the
//! real `std::fs` call. Under an installed [`IoFaultPlan`] the hooks
//! inject seeded disk chaos — failed writes (ENOSPC), *torn* writes
//! (a silent prefix, the classic crash-mid-write artifact), transient
//! read errors and failed renames — so the self-heal paths
//! (verify-on-load, discard-and-recompute, re-record) can be proven
//! under deterministic pressure instead of only hand-corrupted
//! fixtures.
//!
//! The seam is process-global (the persistence layers are not
//! parameterized over a filesystem handle), so [`IoFaultPlan::install`]
//! returns a [`FaultGuard`] that both uninstalls the plan on drop *and*
//! holds a global lock, serializing chaos tests against each other.
//! Decisions are drawn from a SplitMix64 stream seeded by the plan:
//! the same plan over the same (serial) operation sequence injects the
//! same faults.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Fast path: no plan installed, hooks are plain `std::fs` calls.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed plan (present iff `ENABLED`).
static PLAN: Mutex<Option<IoFaultPlan>> = Mutex::new(None);

/// Serializes chaos tests: `install` blocks while another guard lives.
static SEAM: Mutex<()> = Mutex::new(());

/// Monotone draw counter feeding the decision stream.
static DRAWS: AtomicU64 = AtomicU64::new(0);

static WRITE_ERRORS: AtomicU64 = AtomicU64::new(0);
static TORN_WRITES: AtomicU64 = AtomicU64::new(0);
static READ_ERRORS: AtomicU64 = AtomicU64::new(0);
static RENAME_ERRORS: AtomicU64 = AtomicU64::new(0);

/// A seeded disk-chaos recipe. Rates are per-mille (0–1000) per
/// eligible operation; `scope` restricts eligibility to paths under a
/// prefix so a test can wreck one cache directory while the rest of
/// the filesystem stays honest.
#[derive(Debug, Clone, Default)]
pub struct IoFaultPlan {
    /// Decision-stream seed.
    pub seed: u64,
    /// Whole-write failures: the write returns ENOSPC, nothing lands.
    pub write_error_per_mille: u16,
    /// Torn writes: a prefix of the bytes lands and the call reports
    /// *success* — only verify-on-load can catch it.
    pub torn_write_per_mille: u16,
    /// Transient read failures (EIO) on read/read_to_string.
    pub read_error_per_mille: u16,
    /// Failed renames: the destination never appears.
    pub rename_error_per_mille: u16,
    /// Only paths under this prefix are eligible (all paths if `None`).
    pub scope: Option<PathBuf>,
}

impl IoFaultPlan {
    /// Installs the plan process-wide. The returned guard uninstalls it
    /// on drop; while it lives, other `install` calls block (chaos
    /// tests serialize).
    pub fn install(self) -> FaultGuard {
        let held = SEAM.lock().unwrap_or_else(|e| e.into_inner());
        DRAWS.store(0, Ordering::Relaxed);
        WRITE_ERRORS.store(0, Ordering::Relaxed);
        TORN_WRITES.store(0, Ordering::Relaxed);
        READ_ERRORS.store(0, Ordering::Relaxed);
        RENAME_ERRORS.store(0, Ordering::Relaxed);
        *PLAN.lock().unwrap_or_else(|e| e.into_inner()) = Some(self);
        ENABLED.store(true, Ordering::SeqCst);
        FaultGuard { _held: held }
    }
}

/// RAII handle from [`IoFaultPlan::install`]; dropping it restores
/// honest I/O.
pub struct FaultGuard {
    _held: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
        *PLAN.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

/// Injection tallies since the last `install`, so tests can assert the
/// chaos actually fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoFaultStats {
    /// Whole-write ENOSPC failures injected.
    pub write_errors: u64,
    /// Silent torn writes injected.
    pub torn_writes: u64,
    /// Read failures injected.
    pub read_errors: u64,
    /// Rename failures injected.
    pub rename_errors: u64,
}

/// Snapshot of the injection tallies.
pub fn stats() -> IoFaultStats {
    IoFaultStats {
        write_errors: WRITE_ERRORS.load(Ordering::Relaxed),
        torn_writes: TORN_WRITES.load(Ordering::Relaxed),
        read_errors: READ_ERRORS.load(Ordering::Relaxed),
        rename_errors: RENAME_ERRORS.load(Ordering::Relaxed),
    }
}

#[derive(Clone, Copy)]
enum Kind {
    WriteError,
    TornWrite,
    ReadError,
    RenameError,
}

/// SplitMix64 finalizer over (seed, draw index).
fn mix(seed: u64, n: u64) -> u64 {
    let mut z = seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Should this operation on `path` inject `kind`? Draws from the
/// decision stream only for eligible (enabled + in-scope + nonzero
/// rate) operations, so out-of-scope traffic doesn't perturb it.
fn inject(kind: Kind, path: &Path) -> bool {
    if !ENABLED.load(Ordering::Relaxed) {
        return false;
    }
    let plan = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    let Some(plan) = plan.as_ref() else {
        return false;
    };
    if let Some(scope) = &plan.scope {
        if !path.starts_with(scope) {
            return false;
        }
    }
    let (per_mille, counter) = match kind {
        Kind::WriteError => (plan.write_error_per_mille, &WRITE_ERRORS),
        Kind::TornWrite => (plan.torn_write_per_mille, &TORN_WRITES),
        Kind::ReadError => (plan.read_error_per_mille, &READ_ERRORS),
        Kind::RenameError => (plan.rename_error_per_mille, &RENAME_ERRORS),
    };
    if per_mille == 0 {
        return false;
    }
    let n = DRAWS.fetch_add(1, Ordering::Relaxed);
    let hit = mix(plan.seed, n) % 1000 < u64::from(per_mille);
    if hit {
        counter.fetch_add(1, Ordering::Relaxed);
    }
    hit
}

fn enospc(path: &Path) -> io::Error {
    io::Error::other(format!("injected ENOSPC writing {}", path.display()))
}

fn eio(path: &Path) -> io::Error {
    io::Error::other(format!("injected read error on {}", path.display()))
}

/// `fs::read_to_string` through the seam.
pub fn read_to_string<P: AsRef<Path>>(path: P) -> io::Result<String> {
    let path = path.as_ref();
    if inject(Kind::ReadError, path) {
        return Err(eio(path));
    }
    fs::read_to_string(path)
}

/// `fs::read` through the seam.
pub fn read<P: AsRef<Path>>(path: P) -> io::Result<Vec<u8>> {
    let path = path.as_ref();
    if inject(Kind::ReadError, path) {
        return Err(eio(path));
    }
    fs::read(path)
}

/// `fs::write` through the seam. A *write error* fails up front with
/// nothing on disk; a *torn write* lands a strict prefix and reports
/// success — the caller only finds out when a later load fails its
/// checksum.
pub fn write<P: AsRef<Path>, C: AsRef<[u8]>>(path: P, contents: C) -> io::Result<()> {
    let path = path.as_ref();
    let contents = contents.as_ref();
    if inject(Kind::WriteError, path) {
        return Err(enospc(path));
    }
    if inject(Kind::TornWrite, path) && !contents.is_empty() {
        let keep = (contents.len() / 2).max(1);
        return fs::write(path, &contents[..keep]);
    }
    fs::write(path, contents)
}

/// `fs::rename` through the seam.
pub fn rename<P: AsRef<Path>, Q: AsRef<Path>>(from: P, to: Q) -> io::Result<()> {
    let from = from.as_ref();
    let to = to.as_ref();
    if inject(Kind::RenameError, to) {
        return Err(io::Error::other(format!(
            "injected rename failure onto {}",
            to.display()
        )));
    }
    fs::rename(from, to)
}

/// `fs::File::create` through the seam (streaming writers open their
/// temp file here; a write error surfaces as a failed create).
pub fn create_file<P: AsRef<Path>>(path: P) -> io::Result<fs::File> {
    let path = path.as_ref();
    if inject(Kind::WriteError, path) {
        return Err(enospc(path));
    }
    fs::File::create(path)
}

/// Appends one line (a trailing `\n` is added) to `path`, creating it
/// if needed — the stats-log idiom, through the seam.
pub fn append_line<P: AsRef<Path>>(path: P, line: &str) -> io::Result<()> {
    let path = path.as_ref();
    if inject(Kind::WriteError, path) {
        return Err(enospc(path));
    }
    let mut file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    if inject(Kind::TornWrite, path) && !line.is_empty() {
        let keep = (line.len() / 2).max(1);
        file.write_all(&line.as_bytes()[..keep])?;
        return Ok(());
    }
    file.write_all(line.as_bytes())?;
    file.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_seam_is_honest() {
        let dir = std::env::temp_dir().join(format!("iofault-honest-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("a.txt");
        write(&p, "hello").unwrap();
        assert_eq!(read_to_string(&p).unwrap(), "hello");
        let q = dir.join("b.txt");
        rename(&p, &q).unwrap();
        assert_eq!(read(&q).unwrap(), b"hello");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn full_rate_faults_fire_and_clear() {
        let dir = std::env::temp_dir().join(format!("iofault-fire-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("victim.txt");
        {
            let _guard = IoFaultPlan {
                seed: 1,
                write_error_per_mille: 1000,
                scope: Some(dir.clone()),
                ..IoFaultPlan::default()
            }
            .install();
            assert!(write(&p, "doomed").is_err());
            assert!(!p.exists());
            // Out-of-scope writes stay honest even at full rate.
            let outside = std::env::temp_dir().join(format!("iofault-out-{}", std::process::id()));
            write(&outside, "fine").unwrap();
            fs::remove_file(&outside).unwrap();
            assert_eq!(stats().write_errors, 1);
        }
        // Guard dropped: honest again.
        write(&p, "fine now").unwrap();
        assert_eq!(read_to_string(&p).unwrap(), "fine now");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_lands_a_prefix_and_reports_success() {
        let dir = std::env::temp_dir().join(format!("iofault-torn-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("torn.txt");
        {
            let _guard = IoFaultPlan {
                seed: 2,
                torn_write_per_mille: 1000,
                scope: Some(dir.clone()),
                ..IoFaultPlan::default()
            }
            .install();
            write(&p, "0123456789").unwrap();
            assert_eq!(stats().torn_writes, 1);
        }
        let body = fs::read_to_string(&p).unwrap();
        assert!(body.len() < 10 && "0123456789".starts_with(&body));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seeded_decisions_are_deterministic() {
        let dir = std::env::temp_dir().join(format!("iofault-det-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let run = |seed: u64| -> Vec<bool> {
            let _guard = IoFaultPlan {
                seed,
                write_error_per_mille: 500,
                scope: Some(dir.clone()),
                ..IoFaultPlan::default()
            }
            .install();
            (0..32)
                .map(|i| write(dir.join(format!("f{i}")), "x").is_err())
                .collect()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should diverge over 32 draws");
        assert!(a.iter().any(|&e| e) && a.iter().any(|&e| !e));
        fs::remove_dir_all(&dir).unwrap();
    }
}
