//! Full-machine Cell Broadband Engine bandwidth simulator.
//!
//! `cellsim-core` assembles the component models — the EIB
//! ([`cellsim_eib`]), the per-SPE MFC DMA engines ([`cellsim_mfc`]), the
//! dual-bank XDR memory ([`cellsim_mem`]), the PPE pipeline
//! ([`cellsim_ppe`]) and the SPU/Local-Store model ([`cellsim_spe`]) —
//! into one simulated blade, and implements every experiment of
//! *“Performance Analysis of Cell Broadband Engine for High Memory
//! Bandwidth Applications”* (ISPASS 2007) on top of it.
//!
//! The central types are:
//!
//! * [`CellConfig`] / [`CellSystem`] — a configured machine;
//! * [`Placement`] — a logical→physical SPE mapping (the runtime decides
//!   this on real hardware; the paper samples ten random placements);
//! * [`TransferPlan`] / [`SpeScript`] — per-SPE DMA programs, including
//!   DMA-elem vs DMA-list and the tag-synchronization policy;
//! * [`FabricReport`] — the measured bandwidths and fabric statistics;
//! * [`exec::SweepExecutor`] — parallel sweep execution with a
//!   deterministic run cache (the `--jobs` machinery);
//! * [`experiments`] — one constructor per paper figure;
//! * [`report::Figure`] — rendered result tables.
//!
//! # Quickstart
//!
//! ```
//! use cellsim_core::{CellSystem, Placement, SyncPolicy, TransferPlan};
//!
//! // An out-of-the-box 2.1 GHz blade.
//! let system = CellSystem::blade();
//! // One SPE streams 1 MiB from main memory in 16 KiB DMA-elem chunks.
//! let plan = TransferPlan::builder()
//!     .get_from_memory(0, 1 << 20, 16 * 1024, SyncPolicy::AfterAll)
//!     .build()?;
//! let report = system.try_run(&Placement::identity(), &plan)?;
//! // A single SPE is latency-limited well below the 16.8 GB/s bank peak.
//! assert!(report.aggregate_gbps > 7.0 && report.aggregate_gbps < 13.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod config;
mod data;
mod fabric;
mod placement;
mod plan;
mod tracing;

pub mod failure;

pub mod baseline;
pub mod diskcache;
pub mod exec;
pub mod experiments;
pub mod iofault;
pub mod latency;
pub mod metrics;
pub mod perf;
pub mod report;
pub mod tracestore;

// JSON parsing moved into the kernel crate so serde-free parsing is
// available below core (the faults crate parses `FaultPlan` files);
// `cellsim_core::json` stays a valid path for existing callers.
pub use cellsim_kernel::json;

// The fault-injection vocabulary, re-exported so callers configuring a
// degraded blade need only this crate.
pub use cellsim_faults::{
    BankFaults, DerateWindow, EibFaults, FaultPlan, FaultPlanError, MfcFaults, RetryPolicy,
    RingOutage, Window,
};

pub use config::{CellConfig, CellSystem};
pub use data::{MachineState, REGION_STRIDE};
pub use fabric::FabricReport;
pub use failure::{PacketPhase, RunFailure, SpeStall, StallDiagnosis, StallKind};
pub use latency::{DmaPathClass, LatencyHistogram, LatencyMetrics, PathLatency};
pub use metrics::{BankMetrics, FabricMetrics, FaultStats, MetricsSummary, SpeMetrics};
pub use placement::Placement;
pub use plan::{
    PlanError, Planned, SpeScript, SyncPolicy, TransferPlan, TransferPlanBuilder, LS_WINDOW,
};
pub use tracing::{FabricEvent, FabricTrace, TraceMeta, TraceSink, TraceTruncated};

/// Number of SPEs on a CBE.
pub const SPE_COUNT: usize = 8;
