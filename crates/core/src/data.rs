//! Functional machine state: real bytes behind the timing simulation.
//!
//! The bandwidth experiments are timing-only, but the fabric can also
//! *move data*: give [`crate::CellSystem::try_run_with_data`] a
//! [`MachineState`] and every delivered DMA packet copies real bytes
//! between main memory and the Local Stores, in delivery order. Examples
//! use this to run verified staged computations through the simulated
//! machine.

use cellsim_mem::{RegionId, SparseMemory};
use cellsim_spe::LocalStore;

use crate::SPE_COUNT;

/// Byte stride between memory regions in the flat simulated address
/// space (32 MiB — the paper's largest per-SPE buffer).
pub const REGION_STRIDE: u64 = 32 << 20;

/// The machine's functional storage: main memory plus one Local Store
/// per SPE.
#[derive(Debug, Clone, Default)]
pub struct MachineState {
    memory: SparseMemory,
    local_stores: Vec<LocalStore>,
}

impl MachineState {
    /// A fresh, zeroed machine.
    pub fn new() -> MachineState {
        MachineState {
            memory: SparseMemory::new(),
            local_stores: (0..SPE_COUNT).map(|_| LocalStore::new()).collect(),
        }
    }

    /// The flat address of byte `offset` in `region`.
    pub fn region_addr(region: RegionId, offset: u64) -> u64 {
        u64::from(region.0) * REGION_STRIDE + offset
    }

    /// Reads `len` bytes from `region` at `offset`.
    pub fn read_region(&self, region: RegionId, offset: u64, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.memory
            .read(Self::region_addr(region, offset), &mut buf);
        buf
    }

    /// Writes `bytes` into `region` at `offset`.
    pub fn write_region(&mut self, region: RegionId, offset: u64, bytes: &[u8]) {
        self.memory.write(Self::region_addr(region, offset), bytes);
    }

    /// Shared access to a logical SPE's Local Store.
    ///
    /// # Panics
    ///
    /// Panics if `spe >= 8`.
    pub fn local_store(&self, spe: usize) -> &LocalStore {
        &self.local_stores[spe]
    }

    /// Exclusive access to a logical SPE's Local Store.
    ///
    /// # Panics
    ///
    /// Panics if `spe >= 8`.
    pub fn local_store_mut(&mut self, spe: usize) -> &mut LocalStore {
        &mut self.local_stores[spe]
    }

    /// The raw main-memory store.
    pub fn memory(&self) -> &SparseMemory {
        &self.memory
    }

    /// Exclusive access to the raw main-memory store.
    pub fn memory_mut(&mut self) -> &mut SparseMemory {
        &mut self.memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_alias() {
        let mut st = MachineState::new();
        st.write_region(RegionId(0), 0, b"zero");
        st.write_region(RegionId(1), 0, b"one!");
        assert_eq!(st.read_region(RegionId(0), 0, 4), b"zero");
        assert_eq!(st.read_region(RegionId(1), 0, 4), b"one!");
    }

    #[test]
    fn region_addresses_are_strided() {
        assert_eq!(MachineState::region_addr(RegionId(0), 5), 5);
        assert_eq!(
            MachineState::region_addr(RegionId(2), 7),
            2 * REGION_STRIDE + 7
        );
    }

    #[test]
    fn local_stores_are_independent() {
        let mut st = MachineState::new();
        st.local_store_mut(0).write(0, b"a");
        st.local_store_mut(7).write(0, b"b");
        assert_eq!(st.local_store(0).read(0, 1), b"a");
        assert_eq!(st.local_store(7).read(0, 1), b"b");
    }
}
