//! SPE↔SPE experiments: delayed sync, couples, cycles
//! (paper Figures 10, 12, 13, 15, 16).

use cellsim_kernel::stats::Summary;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::experiments::ExperimentConfig;
use crate::report::{format_bytes, Figure, Point, Series, SpreadFigure};
use crate::{CellSystem, Placement, SyncPolicy, TransferPlan};

/// Which SPEs exchange with which.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pattern {
    /// `n` SPEs form `n/2` active/passive couples: SPE 2k initiates a
    /// simultaneous get+put with SPE 2k+1, which stays passive.
    Couples,
    /// All `n` SPEs are active: SPE k exchanges with SPE (k+1) mod n.
    Cycle,
}

fn pattern_plan(
    pattern: Pattern,
    spes: usize,
    volume: u64,
    elem: u32,
    list: bool,
    sync: SyncPolicy,
) -> TransferPlan {
    let mut b = TransferPlan::builder();
    match pattern {
        Pattern::Couples => {
            for pair in 0..spes / 2 {
                let (a, p) = (2 * pair, 2 * pair + 1);
                b = if list {
                    b.exchange_with_list(a, p, volume, elem, sync)
                } else {
                    b.exchange_with(a, p, volume, elem, sync)
                };
            }
        }
        Pattern::Cycle => {
            for spe in 0..spes {
                let partner = (spe + 1) % spes;
                b = if list {
                    b.exchange_with_list(spe, partner, volume, elem, sync)
                } else {
                    b.exchange_with(spe, partner, volume, elem, sync)
                };
            }
        }
    }
    b.build().expect("experiment plan is valid")
}

fn samples(system: &CellSystem, plan: &TransferPlan, placements: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..placements)
        .map(|_| {
            let p = Placement::random(&mut rng);
            system.run(&p, plan).aggregate_gbps
        })
        .collect()
}

fn mean(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Delayed-synchronization experiment (Figure 10): one SPE exchanges with
/// one partner, waiting for its tag group after every 1, 2, 4, … commands
/// versus only once at the end.
pub fn figure10(system: &CellSystem, cfg: &ExperimentConfig) -> Figure {
    let policies: Vec<(String, SyncPolicy)> = [1u32, 2, 4, 8, 16]
        .into_iter()
        .map(|k| (format!("every {k}"), SyncPolicy::Every(k)))
        .chain([("all".to_string(), SyncPolicy::AfterAll)])
        .collect();
    let series = policies
        .into_iter()
        .map(|(label, sync)| Series {
            label,
            points: cfg
                .dma_elem_sizes
                .iter()
                .map(|&elem| {
                    let plan =
                        pattern_plan(Pattern::Couples, 2, cfg.volume_per_spe, elem, false, sync);
                    let s = samples(system, &plan, cfg.placements, cfg.seed);
                    Point {
                        x: format_bytes(u64::from(elem)),
                        gbps: mean(&s),
                    }
                })
                .collect(),
        })
        .collect();
    Figure {
        id: "10".into(),
        title: "SPE to SPE — delayed DMA synchronization".into(),
        x_label: "element".into(),
        series,
    }
}

/// Couples of SPEs (Figure 12): 1, 2 and 4 active/passive pairs,
/// DMA-elem (a) and DMA-list (b).
pub fn figure12(system: &CellSystem, cfg: &ExperimentConfig) -> Vec<Figure> {
    pattern_figures(system, cfg, Pattern::Couples, "12", "Couples of SPEs")
}

/// Couples placement spread (Figure 13): min/median/mean/max over random
/// placements for 4 couples (8 SPEs), DMA-elem (a) and DMA-list (b).
pub fn figure13(system: &CellSystem, cfg: &ExperimentConfig) -> Vec<SpreadFigure> {
    spread_figures(system, cfg, Pattern::Couples, "13", "4 couples of SPEs")
}

/// Cycle of SPEs (Figure 15): 2, 4 and 8 SPEs each exchanging with their
/// logical neighbour, DMA-elem (a) and DMA-list (b).
pub fn figure15(system: &CellSystem, cfg: &ExperimentConfig) -> Vec<Figure> {
    pattern_figures(system, cfg, Pattern::Cycle, "15", "Cycle of SPEs")
}

/// Cycle placement spread (Figure 16): min/median/mean/max over random
/// placements for the 8-SPE cycle, DMA-elem (a) and DMA-list (b).
pub fn figure16(system: &CellSystem, cfg: &ExperimentConfig) -> Vec<SpreadFigure> {
    spread_figures(system, cfg, Pattern::Cycle, "16", "Cycle of 8 SPEs")
}

fn pattern_figures(
    system: &CellSystem,
    cfg: &ExperimentConfig,
    pattern: Pattern,
    id: &str,
    title: &str,
) -> Vec<Figure> {
    [(false, "a", "DMA-elem"), (true, "b", "DMA-list")]
        .into_iter()
        .map(|(list, sub, mode)| {
            let series = [2usize, 4, 8]
                .into_iter()
                .map(|n| Series {
                    label: format!("{n} SPEs"),
                    points: cfg
                        .dma_elem_sizes
                        .iter()
                        .map(|&elem| {
                            let plan = pattern_plan(
                                pattern,
                                n,
                                cfg.volume_per_spe,
                                elem,
                                list,
                                SyncPolicy::AfterAll,
                            );
                            let s = samples(system, &plan, cfg.placements, cfg.seed);
                            Point {
                                x: format_bytes(u64::from(elem)),
                                gbps: mean(&s),
                            }
                        })
                        .collect(),
                })
                .collect();
            Figure {
                id: format!("{id}{sub}"),
                title: format!("{title} — {mode}"),
                x_label: "element".into(),
                series,
            }
        })
        .collect()
}

fn spread_figures(
    system: &CellSystem,
    cfg: &ExperimentConfig,
    pattern: Pattern,
    id: &str,
    title: &str,
) -> Vec<SpreadFigure> {
    [(false, "a", "DMA-elem"), (true, "b", "DMA-list")]
        .into_iter()
        .map(|(list, sub, mode)| {
            let rows = cfg
                .dma_elem_sizes
                .iter()
                .map(|&elem| {
                    let plan = pattern_plan(
                        pattern,
                        8,
                        cfg.volume_per_spe,
                        elem,
                        list,
                        SyncPolicy::AfterAll,
                    );
                    let s = samples(system, &plan, cfg.placements, cfg.seed);
                    (
                        format_bytes(u64::from(elem)),
                        Summary::from_samples(&s).expect("non-empty samples"),
                    )
                })
                .collect();
            SpreadFigure {
                id: format!("{id}{sub}"),
                title: format!("{title} — {mode}"),
                x_label: "element".into(),
                rows,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            volume_per_spe: 256 << 10,
            dma_elem_sizes: vec![128, 16384],
            placements: 3,
            seed: 3,
        }
    }

    #[test]
    fn figure10_eager_sync_is_worst() {
        let fig = figure10(&CellSystem::blade(), &tiny());
        let eager = fig.value("every 1", "16 KB").unwrap();
        let lazy = fig.value("all", "16 KB").unwrap();
        assert!(eager < lazy, "eager={eager} lazy={lazy}");
    }

    #[test]
    fn figure12_two_spes_near_peak_and_lists_flat() {
        let figs = figure12(&CellSystem::blade(), &tiny());
        let elem = &figs[0];
        let list = &figs[1];
        assert!(elem.value("2 SPEs", "16 KB").unwrap() > 28.0);
        // DMA-elem collapses at 128 B; DMA-list stays near peak.
        assert!(elem.value("2 SPEs", "128 B").unwrap() < 10.0);
        assert!(list.value("2 SPEs", "128 B").unwrap() > 28.0);
    }

    #[test]
    fn figure15_cycle_saturates_below_couples() {
        let sys = CellSystem::blade();
        let cfg = tiny();
        let couples = figure12(&sys, &cfg);
        let cycle = figure15(&sys, &cfg);
        let c8 = couples[0].value("8 SPEs", "16 KB").unwrap();
        let y8 = cycle[0].value("8 SPEs", "16 KB").unwrap();
        assert!(
            y8 < c8,
            "paper: saturating the EIB is counterproductive: cycle={y8} couples={c8}"
        );
        // 2-SPE cycle achieves the 33.6 pair peak.
        assert!(cycle[0].value("2 SPEs", "16 KB").unwrap() > 30.0);
    }

    #[test]
    fn figure16_shows_placement_spread() {
        let spread = figure16(&CellSystem::blade(), &tiny());
        assert_eq!(spread.len(), 2);
        assert!(spread[0].max_spread() > 1.0, "placements must matter");
        for (_, s) in &spread[0].rows {
            assert!(s.min <= s.median && s.median <= s.max);
        }
    }
}
