//! SPE↔SPE experiments: delayed sync, couples, cycles
//! (paper Figures 10, 12, 13, 15, 16).
//!
//! Each figure expands into [`SweepPoint`]s and reduces from the
//! executor's reports, so shared points — Figure 10's `all` policy is
//! Figure 12's 2-SPE series, and the 8-SPE columns of Figures 12/15 are
//! exactly the sweeps of Figures 13/16 — simulate once per executor.

use std::sync::Arc;

use cellsim_kernel::stats::Summary;

use crate::exec::{SweepExecutor, Workload};
use crate::experiments::{mean, sweep, ExperimentConfig, ExperimentError, SweepPoint};
use crate::report::{format_bytes, Figure, Point, Series, SpreadFigure};
use crate::{CellSystem, SyncPolicy, TransferPlan};

/// Which SPEs exchange with which.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pattern {
    /// `n` SPEs form `n/2` active/passive couples: SPE 2k initiates a
    /// simultaneous get+put with SPE 2k+1, which stays passive.
    Couples,
    /// All `n` SPEs are active: SPE k exchanges with SPE (k+1) mod n.
    Cycle,
}

impl Pattern {
    /// The run-cache identity of this pattern. Two [`Workload`]s with the
    /// same key and parameters must build identical-simulating plans.
    pub(crate) fn key(self) -> &'static str {
        match self {
            Pattern::Couples => "couples",
            Pattern::Cycle => "cycle",
        }
    }
}

/// Builds the couples/cycle exchange plan. Fallible so callers outside
/// the experiment constructors — the serve daemon rebuilds plans from
/// wire workloads — get a typed [`crate::PlanError`] instead of a
/// panic; the experiment constructors `expect` it (their parameters are
/// validated upstream).
pub(crate) fn pattern_plan(
    pattern: Pattern,
    spes: usize,
    volume: u64,
    elem: u32,
    list: bool,
    sync: SyncPolicy,
) -> Result<TransferPlan, crate::PlanError> {
    let mut b = TransferPlan::builder();
    match pattern {
        Pattern::Couples => {
            for pair in 0..spes / 2 {
                let (a, p) = (2 * pair, 2 * pair + 1);
                b = if list {
                    b.exchange_with_list(a, p, volume, elem, sync)
                } else {
                    b.exchange_with(a, p, volume, elem, sync)
                };
            }
        }
        Pattern::Cycle => {
            for spe in 0..spes {
                let partner = (spe + 1) % spes;
                b = if list {
                    b.exchange_with_list(spe, partner, volume, elem, sync)
                } else {
                    b.exchange_with(spe, partner, volume, elem, sync)
                };
            }
        }
    }
    b.build()
}

fn point(
    pattern: Pattern,
    spes: usize,
    volume: u64,
    elem: u32,
    list: bool,
    sync: SyncPolicy,
) -> SweepPoint {
    SweepPoint {
        workload: Workload {
            pattern: pattern.key(),
            spes: spes as u8,
            volume,
            elem,
            list,
            sync,
            params: 0,
        },
        plan: Arc::new(
            pattern_plan(pattern, spes, volume, elem, list, sync)
                .expect("experiment plan is valid"),
        ),
    }
}

/// Figure 10's sync-policy sweep, in series order.
fn sync_policies() -> Vec<(String, SyncPolicy)> {
    [1u32, 2, 4, 8, 16]
        .into_iter()
        .map(|k| (format!("every {k}"), SyncPolicy::Every(k)))
        .chain([("all".to_string(), SyncPolicy::AfterAll)])
        .collect()
}

/// Figure 10's sweep points. The figure renderer and the per-figure
/// metric digest both build from here, so the digest's runs are exactly
/// the figure's runs (all cache hits on a shared executor). `cfg` must
/// already be validated — plan building panics on degenerate configs.
pub(crate) fn figure10_points(cfg: &ExperimentConfig) -> Vec<SweepPoint> {
    sync_policies()
        .iter()
        .flat_map(|&(_, sync)| {
            cfg.dma_elem_sizes
                .iter()
                .map(move |&elem| point(Pattern::Couples, 2, cfg.volume_per_spe, elem, false, sync))
        })
        .collect()
}

/// Sweep points of Figures 12/15 (a then b): modes × SPE counts × elems.
fn pattern_points(cfg: &ExperimentConfig, pattern: Pattern) -> Vec<SweepPoint> {
    let modes = [false, true];
    let spe_counts = [2usize, 4, 8];
    modes
        .iter()
        .flat_map(|&list| {
            spe_counts.iter().flat_map(move |&n| {
                cfg.dma_elem_sizes.iter().map(move |&elem| {
                    point(
                        pattern,
                        n,
                        cfg.volume_per_spe,
                        elem,
                        list,
                        SyncPolicy::AfterAll,
                    )
                })
            })
        })
        .collect()
}

/// Sweep points of Figures 13/16 (a then b): modes × elems at 8 SPEs.
fn spread_points(cfg: &ExperimentConfig, pattern: Pattern) -> Vec<SweepPoint> {
    [false, true]
        .iter()
        .flat_map(|&list| {
            cfg.dma_elem_sizes.iter().map(move |&elem| {
                point(
                    pattern,
                    8,
                    cfg.volume_per_spe,
                    elem,
                    list,
                    SyncPolicy::AfterAll,
                )
            })
        })
        .collect()
}

/// See [`figure10_points`]; same contract.
pub(crate) fn figure12_points(cfg: &ExperimentConfig) -> Vec<SweepPoint> {
    pattern_points(cfg, Pattern::Couples)
}

/// See [`figure10_points`]; same contract.
pub(crate) fn figure13_points(cfg: &ExperimentConfig) -> Vec<SweepPoint> {
    spread_points(cfg, Pattern::Couples)
}

/// See [`figure10_points`]; same contract.
pub(crate) fn figure15_points(cfg: &ExperimentConfig) -> Vec<SweepPoint> {
    pattern_points(cfg, Pattern::Cycle)
}

/// See [`figure10_points`]; same contract.
pub(crate) fn figure16_points(cfg: &ExperimentConfig) -> Vec<SweepPoint> {
    spread_points(cfg, Pattern::Cycle)
}

/// Delayed-synchronization experiment (Figure 10): one SPE exchanges with
/// one partner, waiting for its tag group after every 1, 2, 4, … commands
/// versus only once at the end. Runs on `exec`; the `all` policy shares
/// its runs with Figure 12's 2-SPE series.
///
/// # Errors
///
/// [`ExperimentError::InvalidConfig`] if `cfg` fails validation.
pub fn figure10_with(
    exec: &SweepExecutor,
    system: &CellSystem,
    cfg: &ExperimentConfig,
) -> Result<Figure, ExperimentError> {
    cfg.validate()
        .map_err(|issue| ExperimentError::InvalidConfig {
            figure: "10",
            issue,
        })?;
    let policies = sync_policies();
    let points = figure10_points(cfg);
    let mut groups = sweep(exec, system, cfg, &points).into_iter();
    let series = policies
        .into_iter()
        .map(|(label, _)| Series {
            label,
            points: cfg
                .dma_elem_sizes
                .iter()
                .map(|&elem| {
                    let runs = groups.next().expect("one report group per sweep point");
                    Point {
                        x: runs.mark(format_bytes(u64::from(elem))),
                        gbps: mean(&runs.samples(|r| r.aggregate_gbps)),
                    }
                })
                .collect(),
        })
        .collect();
    Ok(Figure {
        id: "10".into(),
        title: "SPE to SPE — delayed DMA synchronization".into(),
        x_label: "element".into(),
        series,
    })
}

/// [`figure10_with`] on a private executor.
///
/// # Errors
///
/// See [`figure10_with`].
pub fn figure10(system: &CellSystem, cfg: &ExperimentConfig) -> Result<Figure, ExperimentError> {
    figure10_with(&SweepExecutor::default(), system, cfg)
}

/// Couples of SPEs (Figure 12): 1, 2 and 4 active/passive pairs,
/// DMA-elem (a) and DMA-list (b). Runs on `exec`; the 8-SPE series
/// shares its runs with Figure 13.
///
/// # Errors
///
/// [`ExperimentError::InvalidConfig`] if `cfg` fails validation.
pub fn figure12_with(
    exec: &SweepExecutor,
    system: &CellSystem,
    cfg: &ExperimentConfig,
) -> Result<Vec<Figure>, ExperimentError> {
    pattern_figures(exec, system, cfg, Pattern::Couples, "12", "Couples of SPEs")
}

/// [`figure12_with`] on a private executor.
///
/// # Errors
///
/// See [`figure12_with`].
pub fn figure12(
    system: &CellSystem,
    cfg: &ExperimentConfig,
) -> Result<Vec<Figure>, ExperimentError> {
    figure12_with(&SweepExecutor::default(), system, cfg)
}

/// Couples placement spread (Figure 13): min/median/mean/max over random
/// placements for 4 couples (8 SPEs), DMA-elem (a) and DMA-list (b).
/// Runs on `exec`; shares every run with Figure 12's 8-SPE series.
///
/// # Errors
///
/// [`ExperimentError::InvalidConfig`] if `cfg` fails validation;
/// [`ExperimentError::Stats`] if a sweep point yields degenerate samples.
pub fn figure13_with(
    exec: &SweepExecutor,
    system: &CellSystem,
    cfg: &ExperimentConfig,
) -> Result<Vec<SpreadFigure>, ExperimentError> {
    spread_figures(
        exec,
        system,
        cfg,
        Pattern::Couples,
        "13",
        "4 couples of SPEs",
    )
}

/// [`figure13_with`] on a private executor.
///
/// # Errors
///
/// See [`figure13_with`].
pub fn figure13(
    system: &CellSystem,
    cfg: &ExperimentConfig,
) -> Result<Vec<SpreadFigure>, ExperimentError> {
    figure13_with(&SweepExecutor::default(), system, cfg)
}

/// Cycle of SPEs (Figure 15): 2, 4 and 8 SPEs each exchanging with their
/// logical neighbour, DMA-elem (a) and DMA-list (b). Runs on `exec`; the
/// 8-SPE series shares its runs with Figure 16.
///
/// # Errors
///
/// [`ExperimentError::InvalidConfig`] if `cfg` fails validation.
pub fn figure15_with(
    exec: &SweepExecutor,
    system: &CellSystem,
    cfg: &ExperimentConfig,
) -> Result<Vec<Figure>, ExperimentError> {
    pattern_figures(exec, system, cfg, Pattern::Cycle, "15", "Cycle of SPEs")
}

/// [`figure15_with`] on a private executor.
///
/// # Errors
///
/// See [`figure15_with`].
pub fn figure15(
    system: &CellSystem,
    cfg: &ExperimentConfig,
) -> Result<Vec<Figure>, ExperimentError> {
    figure15_with(&SweepExecutor::default(), system, cfg)
}

/// Cycle placement spread (Figure 16): min/median/mean/max over random
/// placements for the 8-SPE cycle, DMA-elem (a) and DMA-list (b). Runs
/// on `exec`; shares every run with Figure 15's 8-SPE series.
///
/// # Errors
///
/// [`ExperimentError::InvalidConfig`] if `cfg` fails validation;
/// [`ExperimentError::Stats`] if a sweep point yields degenerate samples.
pub fn figure16_with(
    exec: &SweepExecutor,
    system: &CellSystem,
    cfg: &ExperimentConfig,
) -> Result<Vec<SpreadFigure>, ExperimentError> {
    spread_figures(exec, system, cfg, Pattern::Cycle, "16", "Cycle of 8 SPEs")
}

/// [`figure16_with`] on a private executor.
///
/// # Errors
///
/// See [`figure16_with`].
pub fn figure16(
    system: &CellSystem,
    cfg: &ExperimentConfig,
) -> Result<Vec<SpreadFigure>, ExperimentError> {
    figure16_with(&SweepExecutor::default(), system, cfg)
}

fn pattern_figures(
    exec: &SweepExecutor,
    system: &CellSystem,
    cfg: &ExperimentConfig,
    pattern: Pattern,
    id: &'static str,
    title: &str,
) -> Result<Vec<Figure>, ExperimentError> {
    cfg.validate()
        .map_err(|issue| ExperimentError::InvalidConfig { figure: id, issue })?;
    let modes = [("a", "DMA-elem"), ("b", "DMA-list")];
    let spe_counts = [2usize, 4, 8];
    let points = pattern_points(cfg, pattern);
    let mut groups = sweep(exec, system, cfg, &points).into_iter();
    Ok(modes
        .into_iter()
        .map(|(sub, mode)| {
            let series = spe_counts
                .into_iter()
                .map(|n| Series {
                    label: format!("{n} SPEs"),
                    points: cfg
                        .dma_elem_sizes
                        .iter()
                        .map(|&elem| {
                            let runs = groups.next().expect("one report group per sweep point");
                            Point {
                                x: runs.mark(format_bytes(u64::from(elem))),
                                gbps: mean(&runs.samples(|r| r.aggregate_gbps)),
                            }
                        })
                        .collect(),
                })
                .collect();
            Figure {
                id: format!("{id}{sub}"),
                title: format!("{title} — {mode}"),
                x_label: "element".into(),
                series,
            }
        })
        .collect())
}

fn spread_figures(
    exec: &SweepExecutor,
    system: &CellSystem,
    cfg: &ExperimentConfig,
    pattern: Pattern,
    id: &'static str,
    title: &str,
) -> Result<Vec<SpreadFigure>, ExperimentError> {
    cfg.validate()
        .map_err(|issue| ExperimentError::InvalidConfig { figure: id, issue })?;
    let modes = [("a", "DMA-elem"), ("b", "DMA-list")];
    let points = spread_points(cfg, pattern);
    let mut groups = sweep(exec, system, cfg, &points).into_iter();
    modes
        .into_iter()
        .map(|(sub, mode)| {
            let rows = cfg
                .dma_elem_sizes
                .iter()
                .map(|&elem| {
                    let runs = groups.next().expect("one report group per sweep point");
                    let x = runs.mark(format_bytes(u64::from(elem)));
                    let samples = runs.samples(|r| r.aggregate_gbps);
                    let summary = Summary::from_samples(&samples).map_err(|source| {
                        ExperimentError::Stats {
                            figure: format!("{id}{sub}"),
                            x: x.clone(),
                            source,
                        }
                    })?;
                    Ok((x, summary))
                })
                .collect::<Result<Vec<_>, ExperimentError>>()?;
            Ok(SpreadFigure {
                id: format!("{id}{sub}"),
                title: format!("{title} — {mode}"),
                x_label: "element".into(),
                rows,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            volume_per_spe: 256 << 10,
            dma_elem_sizes: vec![128, 16384],
            placements: 3,
            seed: 3,
        }
    }

    #[test]
    fn figure10_eager_sync_is_worst() {
        let fig = figure10(&CellSystem::blade(), &tiny()).unwrap();
        let eager = fig.value("every 1", "16 KB").unwrap();
        let lazy = fig.value("all", "16 KB").unwrap();
        assert!(eager < lazy, "eager={eager} lazy={lazy}");
    }

    #[test]
    fn figure12_two_spes_near_peak_and_lists_flat() {
        let figs = figure12(&CellSystem::blade(), &tiny()).unwrap();
        let elem = &figs[0];
        let list = &figs[1];
        assert!(elem.value("2 SPEs", "16 KB").unwrap() > 28.0);
        // DMA-elem collapses at 128 B; DMA-list stays near peak.
        assert!(elem.value("2 SPEs", "128 B").unwrap() < 10.0);
        assert!(list.value("2 SPEs", "128 B").unwrap() > 28.0);
    }

    #[test]
    fn figure15_cycle_saturates_below_couples() {
        let sys = CellSystem::blade();
        let cfg = tiny();
        let couples = figure12(&sys, &cfg).unwrap();
        let cycle = figure15(&sys, &cfg).unwrap();
        let c8 = couples[0].value("8 SPEs", "16 KB").unwrap();
        let y8 = cycle[0].value("8 SPEs", "16 KB").unwrap();
        assert!(
            y8 < c8,
            "paper: saturating the EIB is counterproductive: cycle={y8} couples={c8}"
        );
        // 2-SPE cycle achieves the 33.6 pair peak.
        assert!(cycle[0].value("2 SPEs", "16 KB").unwrap() > 30.0);
    }

    #[test]
    fn figure16_shows_placement_spread() {
        let spread = figure16(&CellSystem::blade(), &tiny()).unwrap();
        assert_eq!(spread.len(), 2);
        assert!(spread[0].max_spread() > 1.0, "placements must matter");
        for (_, s) in &spread[0].rows {
            assert!(s.min <= s.median && s.median <= s.max);
        }
    }

    #[test]
    fn figures_12_and_13_share_their_8_spe_runs() {
        let exec = SweepExecutor::new(1);
        let sys = CellSystem::blade();
        let cfg = tiny();
        figure12_with(&exec, &sys, &cfg).unwrap();
        let after_12 = exec.stats();
        figure13_with(&exec, &sys, &cfg).unwrap();
        let after_13 = exec.stats();
        // Figure 13 re-sweeps exactly Figure 12's 8-SPE columns: every
        // one of its runs must come from the cache.
        assert_eq!(after_13.misses, after_12.misses);
        let fig13_specs = (2 * cfg.dma_elem_sizes.len() * cfg.placements) as u64;
        assert_eq!(after_13.hits, after_12.hits + fig13_specs);
    }

    #[test]
    fn invalid_config_is_reported_with_figure_context() {
        let cfg = ExperimentConfig {
            placements: 0,
            ..tiny()
        };
        let err = figure12(&CellSystem::blade(), &cfg).unwrap_err();
        assert_eq!(
            err,
            ExperimentError::InvalidConfig {
                figure: "12",
                issue: crate::experiments::ConfigIssue::NoPlacements,
            }
        );
        assert!(err.to_string().contains("figure 12"));
    }
}
