//! Degraded-mode bandwidth ladder (fault-injection subsystem).
//!
//! The paper measures a healthy blade; this experiment asks how its
//! bandwidth story degrades when the machine is not healthy. Four
//! scenarios form a *cumulative* ladder — each adds one fault class on
//! top of the previous — so per element size the curves are ordered:
//!
//! 1. **healthy** — the paper's 8-SPE blade;
//! 2. **7 SPE** — physical SPE 7 fused off (the PS3 part,
//!    [`CellSystem::ps3`]); placements draw
//!    [`Placement::lottery_avoiding`] so no logical SPE lands on fused
//!    silicon;
//! 3. **+ ring derate** — every EIB ring at 25% capacity for the whole
//!    run (payloads hold the wire 4× longer);
//! 4. **+ bank faults** — both XDR banks throttled to 50% *and* NACKing
//!    a seeded fraction of accesses, exercising the MFC's bounded
//!    exponential-backoff retry path.
//!
//! Every fault decision derives from the plan seed, so the ladder is
//! bit-identical across `--jobs` like every other sweep.

use std::sync::Arc;

use cellsim_faults::{BankFaults, DerateWindow, FaultPlan, Window};

use crate::exec::{RunSpec, SweepExecutor, Workload};
use crate::experiments::{group_results, mean, ExperimentConfig, ExperimentError};
use crate::metrics::MetricsSummary;
use crate::report::{format_bytes, Figure, MetricsTable, Point, Series};
use crate::{CellSystem, Placement, SyncPolicy, TransferPlan};

/// A window spanning any realistic run length.
const ALWAYS: Window = Window {
    start: 0,
    cycles: u64::MAX,
};

/// One rung of the ladder: a label and the cumulative fault plan.
struct Scenario {
    label: &'static str,
    plan: FaultPlan,
}

/// The cumulative scenario ladder. `seed` drives every randomized fault
/// decision (bank NACKs) in the faulted rungs.
fn ladder(seed: u64) -> Vec<Scenario> {
    let ps3 = FaultPlan {
        fused_spes: vec![7],
        ..FaultPlan::default()
    };
    let mut derated = ps3.clone();
    derated.eib.derate.push(DerateWindow {
        window: ALWAYS,
        capacity_percent: 25,
    });
    let mut nacking = derated.clone();
    nacking.seed = seed;
    let bank = BankFaults {
        throttle: vec![DerateWindow {
            window: ALWAYS,
            capacity_percent: 50,
        }],
        nack_ppm: 50_000,
    };
    nacking.local_bank = bank.clone();
    nacking.remote_bank = bank;
    vec![
        Scenario {
            label: "healthy",
            plan: FaultPlan::default(),
        },
        Scenario {
            label: "7 SPE",
            plan: ps3,
        },
        Scenario {
            label: "+ring derate",
            plan: derated,
        },
        Scenario {
            label: "+bank faults",
            plan: nacking,
        },
    ]
}

/// Degraded-mode bandwidth: SPE↔memory GET+PUT across the scenario
/// ladder, swept on `exec`, plus the fabric digest over exactly these
/// runs (so NACK/retry activity is visible next to the bandwidths).
///
/// Each rung installs its fault plan on a copy of `system` (replacing
/// any plan already installed) and drives one GET+PUT stream per
/// healthy SPE — 8 on the healthy blade, 7 on the fused rungs. The
/// healthy rung's 8-SPE points coincide with Figure 8c in the run
/// cache.
///
/// # Errors
///
/// [`ExperimentError::InvalidConfig`] if `cfg` fails validation.
pub fn figure_degraded_with(
    exec: &SweepExecutor,
    system: &CellSystem,
    cfg: &ExperimentConfig,
) -> Result<(Figure, MetricsTable), ExperimentError> {
    cfg.validate()
        .map_err(|issue| ExperimentError::InvalidConfig {
            figure: "degraded",
            issue,
        })?;
    let scenarios = ladder(cfg.seed);
    let mut specs = Vec::new();
    for scenario in &scenarios {
        scenario
            .plan
            .validate()
            .expect("ladder plans are valid by construction");
        let machine = system.clone().with_faults(scenario.plan.clone());
        let mask = scenario.plan.fused_mask();
        let spes = (8 - mask.count_ones()) as usize;
        for &elem in &cfg.dma_elem_sizes {
            let plan = Arc::new(copy_plan(spes, cfg.volume_per_spe, elem));
            for k in 0..cfg.placements {
                specs.push(RunSpec::new(
                    &machine,
                    Workload {
                        pattern: "mem-copy",
                        spes: spes as u8,
                        volume: cfg.volume_per_spe,
                        elem,
                        list: false,
                        sync: SyncPolicy::AfterAll,
                        params: 0,
                    },
                    Placement::lottery_avoiding(cfg.seed, k as u64, mask),
                    Arc::clone(&plan),
                ));
            }
        }
    }
    let grouped = group_results(exec.try_run(specs), cfg.placements);
    let mut summary = MetricsSummary::default();
    for report in grouped.iter().flat_map(|g| &g.reports) {
        summary.accumulate_report(report);
    }
    let mut groups = grouped.iter();
    let series = scenarios
        .iter()
        .map(|scenario| Series {
            label: scenario.label.to_string(),
            points: cfg
                .dma_elem_sizes
                .iter()
                .map(|&elem| {
                    let runs = groups
                        .next()
                        .expect("one report group per scenario × element");
                    Point {
                        x: runs.mark(format_bytes(u64::from(elem))),
                        gbps: mean(&runs.samples(|r| r.sum_gbps)),
                    }
                })
                .collect(),
        })
        .collect();
    let figure = Figure {
        id: "degraded".into(),
        title: "Degraded-mode GET+PUT bandwidth ladder".into(),
        x_label: "element".into(),
        series,
    };
    let table = MetricsTable {
        id: "degraded".into(),
        summary,
    };
    Ok((figure, table))
}

/// [`figure_degraded_with`] on a private executor.
///
/// # Errors
///
/// See [`figure_degraded_with`].
pub fn figure_degraded(
    system: &CellSystem,
    cfg: &ExperimentConfig,
) -> Result<(Figure, MetricsTable), ExperimentError> {
    figure_degraded_with(&SweepExecutor::default(), system, cfg)
}

fn copy_plan(spes: usize, volume: u64, elem: u32) -> TransferPlan {
    let mut b = TransferPlan::builder();
    for spe in 0..spes {
        b = b.copy_memory(spe, volume, elem, SyncPolicy::AfterAll);
    }
    b.build().expect("experiment plan is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            volume_per_spe: 256 << 10,
            dma_elem_sizes: vec![2048, 16384],
            placements: 2,
            seed: 0xCE11,
        }
    }

    #[test]
    fn ladder_is_monotone_and_counts_faults() {
        let (fig, table) = figure_degraded(&CellSystem::blade(), &tiny()).unwrap();
        assert_eq!(fig.series.len(), 4);
        for x in ["2 KB", "16 KB"] {
            let rungs: Vec<f64> = fig
                .series
                .iter()
                .map(|s| fig.value(&s.label, x).unwrap())
                .collect();
            for pair in rungs.windows(2) {
                assert!(
                    pair[1] <= pair[0] + 1e-9,
                    "ladder not monotone at {x}: {rungs:?}"
                );
            }
            assert!(
                *rungs.last().unwrap() < rungs[0] * 0.9,
                "full ladder should cost real bandwidth at {x}: {rungs:?}"
            );
        }
        let faults = table.summary.faults;
        assert!(faults.nacks > 0, "bank NACK rung produced no NACKs");
        assert_eq!(faults.nacks, faults.retries + faults.retries_exhausted);
        assert!(faults.degraded_cycles > 0);
        assert!(table.summary.latency.paths.iter().any(|p| p.retries > 0));
    }

    #[test]
    fn healthy_rung_matches_the_healthy_blade() {
        // The ladder's first rung is the plain blade: identical reports,
        // shared cache entries.
        let cfg = tiny();
        let exec = SweepExecutor::new(2);
        let (fig, _) = figure_degraded_with(&exec, &CellSystem::blade(), &cfg).unwrap();
        let figs8 = crate::experiments::figure8_with(&exec, &CellSystem::blade(), &cfg).unwrap();
        let copy = &figs8[2];
        for x in ["2 KB", "16 KB"] {
            assert_eq!(fig.value("healthy", x), copy.value("8 SPEs", x));
        }
    }
}
