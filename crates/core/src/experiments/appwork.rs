//! Application-shaped workload figures (ROADMAP scenario-diversity axis):
//! GUPS random updates, stencil halo exchange, and pair-list
//! gather/scatter — the access patterns the related work measured on
//! real Cell applications, compiled onto the paper's DMA machinery.
//!
//! Each figure follows the streaming experiments' protocol exactly:
//! weak scaling, seeded placement lottery, sweeps through
//! [`sweep`]/[`super::figure_specs`], run-cache identity via
//! [`Workload`] — with the generator parameters packed into
//! `Workload::params` so caches and baselines distinguish every
//! table size, grid shape, and stream seed.

use std::sync::Arc;

use cellsim_kernel::rng::derive_seed;
use cellsim_workloads::{GupsParams, PairlistParams, StencilParams, StreamError, CELL_BYTES};

use crate::exec::{SweepExecutor, Workload};
use crate::experiments::{
    mean, sweep, ExperimentConfig, ExperimentError, SweepPoint, WorkloadError,
};
use crate::report::{format_bytes, Figure, Point, Series};
use crate::{CellSystem, SyncPolicy, TransferPlan};

/// GUPS access granularities: the related work's 8–128 B random updates.
const GUPS_GRAINS: [u32; 5] = [8, 16, 32, 64, 128];
const GUPS_SPE_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Per-SPE update table: 16 MiB, large enough that the hot fraction the
/// XDR page-parity interleave sees is effectively uniform.
const GUPS_TABLE_LOG2: u8 = 24;

/// Subgrid shapes swept, as `(rows_log2, cols_log2)`: equal cell counts
/// (2^11 cells = 32 KiB of interior) in three aspect ratios, so the x
/// axis isolates halo geometry rather than interior volume.
const STENCIL_SHAPES: [(u8, u8); 3] = [(5, 6), (6, 5), (7, 4)];
/// Halo widths swept, in cells.
const STENCIL_HALOS: [u32; 4] = [1, 2, 4, 8];
/// The stencil decomposes over all 8 SPEs as a fixed 4×2 grid.
const STENCIL_SPES: usize = 8;
const STENCIL_GRID_COLS: usize = 4;

/// Pair-list particle-record sizes swept.
const PAIRLIST_RECORDS: [u32; 4] = [16, 32, 64, 128];
const PAIRLIST_SPE_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Per-SPE particle table: 1 MiB.
const PAIRLIST_TABLE_LOG2: u8 = 20;
/// Hot set: 256 records — the skewed reuse of heavily-bonded particles.
const PAIRLIST_HOT_LOG2: u8 = 8;

/// Salts folding `cfg.seed` into per-figure stream seeds: `--seed`
/// re-keys the address streams together with the placement lottery.
const GUPS_SALT: u64 = 0x6775_7073; // "gups"
const PAIRLIST_SALT: u64 = 0x7061_6972; // "pair"

/// Stream seed for a figure, derived from the experiment seed.
fn stream_seed(cfg: &ExperimentConfig, salt: u64) -> u32 {
    (derive_seed(cfg.seed, salt) & 0xFFFF_FFFF) as u32
}

/// GUPS moves an eighth of the streaming volume per SPE (each update is
/// a full-latency round trip, not a stream), rounded to a multiple of
/// 128 B — the lcm of the grains — so every grain divides it.
fn gups_volume(cfg: &ExperimentConfig) -> u64 {
    ((cfg.volume_per_spe / 8) / 128).max(1) * 128
}

/// Pair lists move a quarter of the streaming volume per SPE, rounded
/// like [`gups_volume`] so every record size divides it.
fn pairlist_volume(cfg: &ExperimentConfig) -> u64 {
    ((cfg.volume_per_spe / 4) / 128).max(1) * 128
}

fn bad_params(pattern: &'static str, e: StreamError) -> WorkloadError {
    WorkloadError::BadParams {
        pattern,
        detail: e.to_string(),
    }
}

// ---------------------------------------------------------------------------
// GUPS
// ---------------------------------------------------------------------------

/// The `gups` sweep points: SPE counts × access grains. `cfg` must
/// already be validated.
pub(crate) fn gups_points(cfg: &ExperimentConfig) -> Vec<SweepPoint> {
    let params = GupsParams {
        table_log2: GUPS_TABLE_LOG2,
        seed: stream_seed(cfg, GUPS_SALT),
    }
    .pack();
    let volume = gups_volume(cfg);
    GUPS_SPE_COUNTS
        .iter()
        .flat_map(|&n| {
            GUPS_GRAINS.iter().map(move |&grain| {
                let workload = Workload {
                    pattern: "gups",
                    spes: n as u8,
                    volume,
                    elem: grain,
                    list: false,
                    sync: SyncPolicy::AfterAll,
                    params,
                };
                SweepPoint {
                    plan: Arc::new(gups_plan(&workload).expect("experiment plan is valid")),
                    workload,
                }
            })
        })
        .collect()
}

/// Rebuilds the GUPS plan a [`Workload`] describes: per SPE, a seeded
/// stream of `volume / elem` fenced GET+PUT update cycles at random
/// quadword-aligned slots of its own table.
pub(crate) fn gups_plan(w: &Workload) -> Result<TransferPlan, WorkloadError> {
    let spes = usize::from(w.spes);
    if !(1..=8).contains(&spes) {
        return Err(WorkloadError::BadSpes {
            pattern: "gups",
            spes: w.spes,
        });
    }
    if w.list {
        return Err(WorkloadError::Unsupported {
            pattern: "gups",
            what: "DMA-list mode",
        });
    }
    if w.sync != SyncPolicy::AfterAll {
        return Err(WorkloadError::Unsupported {
            pattern: "gups",
            what: "sync policies other than 'all'",
        });
    }
    let params = GupsParams::unpack(w.params).map_err(|e| bad_params("gups", e))?;
    let count = w.volume / u64::from(w.elem);
    let mut b = TransferPlan::builder();
    for spe in 0..spes {
        let offsets = params
            .offsets(spe as u8, count, w.elem)
            .map_err(|e| bad_params("gups", e))?;
        b = b.update_elems_at(spe, TransferPlan::get_region(spe), &offsets, w.elem);
    }
    b.build().map_err(WorkloadError::Plan)
}

/// GUPS random-update bandwidth for 1–8 SPEs across 8–128 B access
/// grains, swept on `exec`. Each access is a fenced GET+PUT cycle, so
/// the reported bandwidth counts both directions — directly comparable
/// to Figure 8's GET+PUT streaming curves.
///
/// # Errors
///
/// [`ExperimentError::InvalidConfig`] if `cfg` fails validation.
pub fn figure_gups_with(
    exec: &SweepExecutor,
    system: &CellSystem,
    cfg: &ExperimentConfig,
) -> Result<Figure, ExperimentError> {
    cfg.validate()
        .map_err(|issue| ExperimentError::InvalidConfig {
            figure: "gups",
            issue,
        })?;
    let points = gups_points(cfg);
    let mut groups = sweep(exec, system, cfg, &points).into_iter();
    let series = GUPS_SPE_COUNTS
        .into_iter()
        .map(|n| Series {
            label: format!("{n} SPE{}", if n > 1 { "s" } else { "" }),
            points: GUPS_GRAINS
                .into_iter()
                .map(|grain| {
                    let runs = groups.next().expect("one report group per sweep point");
                    Point {
                        x: runs.mark(format_bytes(u64::from(grain))),
                        gbps: mean(&runs.samples(|r| r.sum_gbps)),
                    }
                })
                .collect(),
        })
        .collect();
    Ok(Figure {
        id: "gups".into(),
        title: "GUPS random update — get+put cycles over a 16 MiB table".into(),
        x_label: "access".into(),
        series,
    })
}

/// [`figure_gups_with`] on a private executor.
///
/// # Errors
///
/// See [`figure_gups_with`].
pub fn figure_gups(system: &CellSystem, cfg: &ExperimentConfig) -> Result<Figure, ExperimentError> {
    figure_gups_with(&SweepExecutor::default(), system, cfg)
}

// ---------------------------------------------------------------------------
// Stencil
// ---------------------------------------------------------------------------

/// Neighbors of logical SPE `spe` in the fixed 4×2 decomposition:
/// `(west, east, vertical)`. Rows wrap horizontally; the two grid rows
/// are each other's north and south neighbor.
fn stencil_neighbors(spe: usize) -> (usize, usize, usize) {
    let gx = spe % STENCIL_GRID_COLS;
    let gy = spe / STENCIL_GRID_COLS;
    let west = gy * STENCIL_GRID_COLS + (gx + STENCIL_GRID_COLS - 1) % STENCIL_GRID_COLS;
    let east = gy * STENCIL_GRID_COLS + (gx + 1) % STENCIL_GRID_COLS;
    let vertical = (1 - gy) * STENCIL_GRID_COLS + gx;
    (west, east, vertical)
}

/// The `stencil` sweep points: grid shapes × halo widths, 8 SPEs fixed.
/// `cfg` must already be validated.
pub(crate) fn stencil_points(cfg: &ExperimentConfig) -> Vec<SweepPoint> {
    STENCIL_SHAPES
        .iter()
        .flat_map(|&(rows_log2, cols_log2)| {
            let shape = StencilParams {
                rows_log2,
                cols_log2,
            };
            let steps = (cfg.volume_per_spe / shape.interior_bytes()).max(1);
            STENCIL_HALOS.iter().map(move |&halo| {
                let workload = Workload {
                    pattern: "stencil",
                    spes: STENCIL_SPES as u8,
                    volume: steps * shape.interior_bytes(),
                    elem: halo * CELL_BYTES,
                    list: true,
                    sync: SyncPolicy::AfterAll,
                    params: shape.pack(),
                };
                SweepPoint {
                    plan: Arc::new(stencil_plan(&workload).expect("experiment plan is valid")),
                    workload,
                }
            })
        })
        .collect()
}

/// Rebuilds the stencil plan a [`Workload`] describes. `volume` is the
/// total interior payload per SPE (`steps × interior`), `elem` encodes
/// the halo width (`halo × CELL_BYTES`), and `params` the subgrid
/// shape. Per timestep each SPE streams its own interior contiguously
/// and gathers four neighbor faces — east/west as row-strided DMA
/// lists, north/south as contiguous row runs.
pub(crate) fn stencil_plan(w: &Workload) -> Result<TransferPlan, WorkloadError> {
    if usize::from(w.spes) != STENCIL_SPES {
        return Err(WorkloadError::BadSpes {
            pattern: "stencil",
            spes: w.spes,
        });
    }
    if !w.list {
        return Err(WorkloadError::Unsupported {
            pattern: "stencil",
            what: "DMA-elem mode",
        });
    }
    if w.sync != SyncPolicy::AfterAll {
        return Err(WorkloadError::Unsupported {
            pattern: "stencil",
            what: "sync policies other than 'all'",
        });
    }
    let shape = StencilParams::unpack(w.params).map_err(|e| bad_params("stencil", e))?;
    if w.elem == 0 || !w.elem.is_multiple_of(CELL_BYTES) {
        return Err(WorkloadError::BadParams {
            pattern: "stencil",
            detail: format!("elem {} does not encode a whole-cell halo width", w.elem),
        });
    }
    let halo = w.elem / CELL_BYTES;
    shape
        .validate_halo(halo)
        .map_err(|e| bad_params("stencil", e))?;
    let interior = shape.interior_bytes();
    if w.volume == 0 || !w.volume.is_multiple_of(interior) {
        return Err(WorkloadError::BadParams {
            pattern: "stencil",
            detail: format!(
                "volume {} is not a positive multiple of the {interior}-byte interior",
                w.volume
            ),
        });
    }
    let steps = w.volume / interior;
    // The interior streams through the biggest element that fits it.
    let interior_elem = u32::try_from(interior.min(16384)).expect("interior elem fits u32");
    let west_face = shape
        .west_face(halo)
        .map_err(|e| bad_params("stencil", e))?;
    let east_face = shape
        .east_face(halo)
        .map_err(|e| bad_params("stencil", e))?;
    let north_face = shape
        .north_face(halo)
        .map_err(|e| bad_params("stencil", e))?;
    let south_face = shape
        .south_face(halo)
        .map_err(|e| bad_params("stencil", e))?;
    let mut b = TransferPlan::builder();
    for spe in 0..STENCIL_SPES {
        let (west, east, vertical) = stencil_neighbors(spe);
        for _ in 0..steps {
            b = b
                .get_from_memory(spe, interior, interior_elem, SyncPolicy::AfterAll)
                // The west neighbor's east boundary, and vice versa.
                .get_list_at(spe, TransferPlan::get_region(west), &east_face)
                .get_list_at(spe, TransferPlan::get_region(east), &west_face)
                .get_list_at(spe, TransferPlan::get_region(vertical), &south_face)
                .get_list_at(spe, TransferPlan::get_region(vertical), &north_face);
        }
    }
    b.build().map_err(WorkloadError::Plan)
}

/// Stencil halo-exchange bandwidth on 8 SPEs (4×2 decomposition),
/// sweeping halo width across three subgrid aspect ratios. East/west
/// faces are row-strided DMA lists whose element size grows with the
/// halo width — as halo volume grows the exchange approaches streaming
/// efficiency, which is exactly what this figure charts.
///
/// # Errors
///
/// [`ExperimentError::InvalidConfig`] if `cfg` fails validation.
pub fn figure_stencil_with(
    exec: &SweepExecutor,
    system: &CellSystem,
    cfg: &ExperimentConfig,
) -> Result<Figure, ExperimentError> {
    cfg.validate()
        .map_err(|issue| ExperimentError::InvalidConfig {
            figure: "stencil",
            issue,
        })?;
    let points = stencil_points(cfg);
    let mut groups = sweep(exec, system, cfg, &points).into_iter();
    let series = STENCIL_SHAPES
        .into_iter()
        .map(|(rows_log2, cols_log2)| {
            let shape = StencilParams {
                rows_log2,
                cols_log2,
            };
            Series {
                label: format!("{}x{} cells", shape.rows(), shape.cols()),
                points: STENCIL_HALOS
                    .into_iter()
                    .map(|halo| {
                        let runs = groups.next().expect("one report group per sweep point");
                        Point {
                            x: runs.mark(halo.to_string()),
                            gbps: mean(&runs.samples(|r| r.sum_gbps)),
                        }
                    })
                    .collect(),
            }
        })
        .collect();
    Ok(Figure {
        id: "stencil".into(),
        title: "Stencil halo exchange — 8 SPEs, 4x2 subgrid decomposition".into(),
        x_label: "halo width (cells)".into(),
        series,
    })
}

/// [`figure_stencil_with`] on a private executor.
///
/// # Errors
///
/// See [`figure_stencil_with`].
pub fn figure_stencil(
    system: &CellSystem,
    cfg: &ExperimentConfig,
) -> Result<Figure, ExperimentError> {
    figure_stencil_with(&SweepExecutor::default(), system, cfg)
}

// ---------------------------------------------------------------------------
// Pair list
// ---------------------------------------------------------------------------

/// The `pairlist` sweep points: SPE counts × record sizes. `cfg` must
/// already be validated.
pub(crate) fn pairlist_points(cfg: &ExperimentConfig) -> Vec<SweepPoint> {
    let params = PairlistParams {
        table_log2: PAIRLIST_TABLE_LOG2,
        hot_log2: PAIRLIST_HOT_LOG2,
        seed: stream_seed(cfg, PAIRLIST_SALT),
    }
    .pack();
    let volume = pairlist_volume(cfg);
    PAIRLIST_SPE_COUNTS
        .iter()
        .flat_map(|&n| {
            PAIRLIST_RECORDS.iter().map(move |&record| {
                let workload = Workload {
                    pattern: "pairlist",
                    spes: n as u8,
                    volume,
                    elem: record,
                    list: true,
                    sync: SyncPolicy::AfterAll,
                    params,
                };
                SweepPoint {
                    plan: Arc::new(pairlist_plan(&workload).expect("experiment plan is valid")),
                    workload,
                }
            })
        })
        .collect()
}

/// Rebuilds the pair-list plan a [`Workload`] describes: per SPE, a
/// skewed-reuse indexed element list of `volume / elem` records,
/// gathered (GETL) and scattered back (fenced PUTL) batch by batch.
pub(crate) fn pairlist_plan(w: &Workload) -> Result<TransferPlan, WorkloadError> {
    let spes = usize::from(w.spes);
    if !(1..=8).contains(&spes) {
        return Err(WorkloadError::BadSpes {
            pattern: "pairlist",
            spes: w.spes,
        });
    }
    if !w.list {
        return Err(WorkloadError::Unsupported {
            pattern: "pairlist",
            what: "DMA-elem mode",
        });
    }
    if w.sync != SyncPolicy::AfterAll {
        return Err(WorkloadError::Unsupported {
            pattern: "pairlist",
            what: "sync policies other than 'all'",
        });
    }
    let params = PairlistParams::unpack(w.params).map_err(|e| bad_params("pairlist", e))?;
    let count = w.volume / u64::from(w.elem);
    let mut b = TransferPlan::builder();
    for spe in 0..spes {
        let elements = params
            .elements(spe as u8, count, w.elem)
            .map_err(|e| bad_params("pairlist", e))?;
        b = b.update_list_at(spe, TransferPlan::get_region(spe), &elements);
    }
    b.build().map_err(WorkloadError::Plan)
}

/// Pair-list gather/scatter bandwidth for 1–8 SPEs across particle
/// record sizes. Indexed DMA lists amortize command startup where GUPS
/// cannot, but the skewed random slots still defeat streaming's bank
/// locality — the figure sits between `gups` and Figure 8.
///
/// # Errors
///
/// [`ExperimentError::InvalidConfig`] if `cfg` fails validation.
pub fn figure_pairlist_with(
    exec: &SweepExecutor,
    system: &CellSystem,
    cfg: &ExperimentConfig,
) -> Result<Figure, ExperimentError> {
    cfg.validate()
        .map_err(|issue| ExperimentError::InvalidConfig {
            figure: "pairlist",
            issue,
        })?;
    let points = pairlist_points(cfg);
    let mut groups = sweep(exec, system, cfg, &points).into_iter();
    let series = PAIRLIST_SPE_COUNTS
        .into_iter()
        .map(|n| Series {
            label: format!("{n} SPE{}", if n > 1 { "s" } else { "" }),
            points: PAIRLIST_RECORDS
                .into_iter()
                .map(|record| {
                    let runs = groups.next().expect("one report group per sweep point");
                    Point {
                        x: runs.mark(format_bytes(u64::from(record))),
                        gbps: mean(&runs.samples(|r| r.sum_gbps)),
                    }
                })
                .collect(),
        })
        .collect();
    Ok(Figure {
        id: "pairlist".into(),
        title: "Pair-list gather/scatter — skewed indexed records".into(),
        x_label: "record".into(),
        series,
    })
}

/// [`figure_pairlist_with`] on a private executor.
///
/// # Errors
///
/// See [`figure_pairlist_with`].
pub fn figure_pairlist(
    system: &CellSystem,
    cfg: &ExperimentConfig,
) -> Result<Figure, ExperimentError> {
    figure_pairlist_with(&SweepExecutor::default(), system, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            volume_per_spe: 64 << 10,
            dma_elem_sizes: vec![16384],
            placements: 2,
            seed: 1,
        }
    }

    #[test]
    fn gups_plans_rebuild_bit_identically_from_workloads() {
        for point in gups_points(&tiny()) {
            let rebuilt = gups_plan(&point.workload).unwrap();
            assert_eq!(rebuilt.total_bytes(), point.plan.total_bytes());
            // Update cycles move each element twice.
            assert_eq!(
                rebuilt.total_bytes(),
                2 * point.workload.volume * u64::from(point.workload.spes)
            );
        }
    }

    #[test]
    fn stencil_volume_covers_interior_plus_halo() {
        for point in stencil_points(&tiny()) {
            let shape = StencilParams::unpack(point.workload.params).unwrap();
            let halo = point.workload.elem / CELL_BYTES;
            let steps = point.workload.volume / shape.interior_bytes();
            // 4 faces gathered per step — the neighbors' opposing east/
            // west strided faces plus the vertical neighbor's two row
            // runs — total exactly one halo_bytes() set.
            let expected_per_spe =
                steps * (shape.interior_bytes() + shape.halo_bytes(halo).unwrap());
            assert_eq!(
                point.plan.total_bytes(),
                expected_per_spe * STENCIL_SPES as u64
            );
        }
    }

    #[test]
    fn stencil_neighbors_form_a_torus() {
        for spe in 0..STENCIL_SPES {
            let (west, east, vertical) = stencil_neighbors(spe);
            assert_ne!(west, spe);
            assert_ne!(east, spe);
            assert_ne!(vertical, spe);
            // Symmetry: my west's east is me; my vertical's vertical is me.
            assert_eq!(stencil_neighbors(west).1, spe);
            assert_eq!(stencil_neighbors(vertical).2, spe);
        }
    }

    #[test]
    fn pairlist_plans_rebuild_bit_identically_from_workloads() {
        for point in pairlist_points(&tiny()) {
            let rebuilt = pairlist_plan(&point.workload).unwrap();
            assert_eq!(rebuilt.total_bytes(), point.plan.total_bytes());
            assert_eq!(
                rebuilt.total_bytes(),
                2 * point.workload.volume * u64::from(point.workload.spes)
            );
        }
    }

    #[test]
    fn wire_validation_rejects_forged_workloads() {
        let mut w = gups_points(&tiny())[0].workload.clone();
        w.params = u64::MAX;
        assert!(matches!(
            gups_plan(&w).unwrap_err(),
            WorkloadError::BadParams {
                pattern: "gups",
                ..
            }
        ));
        let mut w = stencil_points(&tiny())[0].workload.clone();
        w.spes = 4;
        assert!(matches!(
            stencil_plan(&w).unwrap_err(),
            WorkloadError::BadSpes {
                pattern: "stencil",
                spes: 4
            }
        ));
        let mut w = stencil_points(&tiny())[0].workload.clone();
        w.elem = 24;
        assert!(matches!(
            stencil_plan(&w).unwrap_err(),
            WorkloadError::BadParams {
                pattern: "stencil",
                ..
            }
        ));
        let mut w = pairlist_points(&tiny())[0].workload.clone();
        w.list = false;
        assert!(matches!(
            pairlist_plan(&w).unwrap_err(),
            WorkloadError::Unsupported {
                pattern: "pairlist",
                ..
            }
        ));
    }
}
