//! SPE↔memory DMA bandwidth (paper Figure 8).

use std::sync::Arc;

use crate::exec::{SweepExecutor, Workload};
use crate::experiments::{mean, sweep, ExperimentConfig, ExperimentError, SweepPoint};
use crate::report::{format_bytes, Figure, Point, Series};
use crate::{CellSystem, SyncPolicy, TransferPlan};

#[derive(Debug, Clone, Copy)]
pub(crate) enum MemOp {
    Get,
    Put,
    Copy,
}

impl MemOp {
    /// The run-cache identity of this operation.
    pub(crate) fn key(self) -> &'static str {
        match self {
            MemOp::Get => "mem-get",
            MemOp::Put => "mem-put",
            MemOp::Copy => "mem-copy",
        }
    }
}

/// SPE↔memory DMA-elem bandwidth for GET / PUT / GET+PUT with 1, 2, 4
/// and 8 active SPEs (Figure 8 a–c), swept on `exec`.
///
/// Weak scaling: each SPE streams `volume_per_spe` through its own
/// region; the reported bandwidth is the sum of per-SPE bandwidths, each
/// over its own completion time (the per-SPE decrementer timing of the
/// paper), averaged over random placements.
///
/// # Errors
///
/// [`ExperimentError::InvalidConfig`] if `cfg` fails validation.
pub fn figure8_with(
    exec: &SweepExecutor,
    system: &CellSystem,
    cfg: &ExperimentConfig,
) -> Result<Vec<Figure>, ExperimentError> {
    cfg.validate()
        .map_err(|issue| ExperimentError::InvalidConfig { figure: "8", issue })?;
    let ops = [
        (MemOp::Get, "a", "GET"),
        (MemOp::Put, "b", "PUT"),
        (MemOp::Copy, "c", "GET+PUT"),
    ];
    let spe_counts = [1usize, 2, 4, 8];
    let points = figure8_points(cfg);
    let mut groups = sweep(exec, system, cfg, &points).into_iter();
    Ok(ops
        .into_iter()
        .map(|(_, sub, name)| {
            let series = spe_counts
                .into_iter()
                .map(|n| Series {
                    label: format!("{n} SPE{}", if n > 1 { "s" } else { "" }),
                    points: cfg
                        .dma_elem_sizes
                        .iter()
                        .map(|&elem| {
                            let runs = groups.next().expect("one report group per sweep point");
                            Point {
                                x: runs.mark(format_bytes(u64::from(elem))),
                                gbps: mean(&runs.samples(|r| r.sum_gbps)),
                            }
                        })
                        .collect(),
                })
                .collect();
            Figure {
                id: format!("8{sub}"),
                title: format!("SPE to memory — {name}"),
                x_label: "element".into(),
                series,
            }
        })
        .collect())
}

/// [`figure8_with`] on a private executor.
///
/// # Errors
///
/// See [`figure8_with`].
pub fn figure8(
    system: &CellSystem,
    cfg: &ExperimentConfig,
) -> Result<Vec<Figure>, ExperimentError> {
    figure8_with(&SweepExecutor::default(), system, cfg)
}

/// Figure 8's sweep points: ops (GET, PUT, GET+PUT) × SPE counts × elems.
/// The figure renderer and the per-figure metric digest both build from
/// here so their runs coincide in the cache. `cfg` must already be
/// validated — plan building panics on degenerate configs.
pub(crate) fn figure8_points(cfg: &ExperimentConfig) -> Vec<SweepPoint> {
    let ops = [MemOp::Get, MemOp::Put, MemOp::Copy];
    let spe_counts = [1usize, 2, 4, 8];
    ops.iter()
        .flat_map(|&op| {
            spe_counts.iter().flat_map(move |&n| {
                cfg.dma_elem_sizes.iter().map(move |&elem| SweepPoint {
                    workload: Workload {
                        pattern: op.key(),
                        spes: n as u8,
                        volume: cfg.volume_per_spe,
                        elem,
                        list: false,
                        sync: SyncPolicy::AfterAll,
                        params: 0,
                    },
                    plan: Arc::new(
                        mem_plan(op, n, cfg.volume_per_spe, elem)
                            .expect("experiment plan is valid"),
                    ),
                })
            })
        })
        .collect()
}

/// Builds the SPE↔memory streaming plan. Fallible for the same reason
/// as [`super::spe_pairs::pattern_plan`]: the serve daemon rebuilds
/// plans from untrusted wire workloads and needs the typed error.
pub(crate) fn mem_plan(
    op: MemOp,
    spes: usize,
    volume: u64,
    elem: u32,
) -> Result<TransferPlan, crate::PlanError> {
    let mut b = TransferPlan::builder();
    for spe in 0..spes {
        b = match op {
            MemOp::Get => b.get_from_memory(spe, volume, elem, SyncPolicy::AfterAll),
            MemOp::Put => b.put_to_memory(spe, volume, elem, SyncPolicy::AfterAll),
            MemOp::Copy => b.copy_memory(spe, volume, elem, SyncPolicy::AfterAll),
        };
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            volume_per_spe: 256 << 10,
            dma_elem_sizes: vec![16384],
            placements: 2,
            seed: 1,
        }
    }

    #[test]
    fn figure8_reproduces_the_scaling_story() {
        let figs = figure8(&CellSystem::blade(), &tiny()).unwrap();
        assert_eq!(figs.len(), 3);
        let get = &figs[0];
        let one = get.value("1 SPE", "16 KB").unwrap();
        let two = get.value("2 SPEs", "16 KB").unwrap();
        let four = get.value("4 SPEs", "16 KB").unwrap();
        // Paper: ~10 GB/s for one SPE; two or more use both banks; the
        // two-bank aggregate peaks near 23.8.
        assert!((8.0..12.0).contains(&one), "one={one}");
        assert!(two > 14.0, "two={two}");
        assert!(four > two, "four={four} two={two}");
        assert!(four < 23.8);
    }

    #[test]
    fn copy_counts_both_directions_of_traffic() {
        let figs = figure8(&CellSystem::blade(), &tiny()).unwrap();
        let copy_one = figs[2].value("1 SPE", "16 KB").unwrap();
        // Single-SPE copy ≈ 10 GB/s of combined read+write traffic.
        assert!((7.0..12.0).contains(&copy_one), "copy={copy_one}");
    }
}
