//! SPE↔memory DMA bandwidth (paper Figure 8).

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::experiments::ExperimentConfig;
use crate::report::{format_bytes, Figure, Point, Series};
use crate::{CellSystem, Placement, SyncPolicy, TransferPlan};

#[derive(Debug, Clone, Copy)]
enum MemOp {
    Get,
    Put,
    Copy,
}

/// SPE↔memory DMA-elem bandwidth for GET / PUT / GET+PUT with 1, 2, 4
/// and 8 active SPEs (Figure 8 a–c).
///
/// Weak scaling: each SPE streams `volume_per_spe` through its own
/// region; the reported bandwidth is the sum of per-SPE bandwidths, each
/// over its own completion time (the per-SPE decrementer timing of the
/// paper), averaged over random placements.
pub fn figure8(system: &CellSystem, cfg: &ExperimentConfig) -> Vec<Figure> {
    [
        (MemOp::Get, "a", "GET"),
        (MemOp::Put, "b", "PUT"),
        (MemOp::Copy, "c", "GET+PUT"),
    ]
    .into_iter()
    .map(|(op, sub, name)| {
        let series = [1usize, 2, 4, 8]
            .into_iter()
            .map(|n| Series {
                label: format!("{n} SPE{}", if n > 1 { "s" } else { "" }),
                points: cfg
                    .dma_elem_sizes
                    .iter()
                    .map(|&elem| {
                        let plan = mem_plan(op, n, cfg.volume_per_spe, elem);
                        let mut rng = StdRng::seed_from_u64(cfg.seed);
                        let mean = (0..cfg.placements)
                            .map(|_| {
                                let p = Placement::random(&mut rng);
                                system.run(&p, &plan).sum_gbps
                            })
                            .sum::<f64>()
                            / cfg.placements as f64;
                        Point {
                            x: format_bytes(u64::from(elem)),
                            gbps: mean,
                        }
                    })
                    .collect(),
            })
            .collect();
        Figure {
            id: format!("8{sub}"),
            title: format!("SPE to memory — {name}"),
            x_label: "element".into(),
            series,
        }
    })
    .collect()
}

fn mem_plan(op: MemOp, spes: usize, volume: u64, elem: u32) -> TransferPlan {
    let mut b = TransferPlan::builder();
    for spe in 0..spes {
        b = match op {
            MemOp::Get => b.get_from_memory(spe, volume, elem, SyncPolicy::AfterAll),
            MemOp::Put => b.put_to_memory(spe, volume, elem, SyncPolicy::AfterAll),
            MemOp::Copy => b.copy_memory(spe, volume, elem, SyncPolicy::AfterAll),
        };
    }
    b.build().expect("experiment plan is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            volume_per_spe: 256 << 10,
            dma_elem_sizes: vec![16384],
            placements: 2,
            seed: 1,
        }
    }

    #[test]
    fn figure8_reproduces_the_scaling_story() {
        let figs = figure8(&CellSystem::blade(), &tiny());
        assert_eq!(figs.len(), 3);
        let get = &figs[0];
        let one = get.value("1 SPE", "16 KB").unwrap();
        let two = get.value("2 SPEs", "16 KB").unwrap();
        let four = get.value("4 SPEs", "16 KB").unwrap();
        // Paper: ~10 GB/s for one SPE; two or more use both banks; the
        // two-bank aggregate peaks near 23.8.
        assert!((8.0..12.0).contains(&one), "one={one}");
        assert!(two > 14.0, "two={two}");
        assert!(four > two, "four={four} two={two}");
        assert!(four < 23.8);
    }

    #[test]
    fn copy_counts_both_directions_of_traffic() {
        let figs = figure8(&CellSystem::blade(), &tiny());
        let copy_one = figs[2].value("1 SPE", "16 KB").unwrap();
        // Single-SPE copy ≈ 10 GB/s of combined read+write traffic.
        assert!((7.0..12.0).contains(&copy_one), "copy={copy_one}");
    }
}
