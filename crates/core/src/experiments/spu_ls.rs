//! SPU↔Local-Store bandwidth (paper §4.2.2).

use cellsim_spe::LsOp;

use crate::report::{Figure, Point, Series};
use crate::CellSystem;

/// SPU↔LS load/store/copy bandwidth over element sizes 1–16 B.
///
/// The paper reports the 33.6 GB/s quadword peak and notes that the SPU
/// ISA only supports 16-byte loads, so narrower accesses pay
/// extract/merge overhead.
pub fn section_4_2_2(system: &CellSystem) -> Figure {
    let model = system.spu_ls_model();
    let clock = system.config().clock;
    let volume = 1u64 << 20;
    let series = [
        (LsOp::Load, "load"),
        (LsOp::Store, "store"),
        (LsOp::Copy, "copy"),
    ]
    .into_iter()
    .map(|(op, label)| Series {
        label: label.into(),
        points: [1u32, 2, 4, 8, 16]
            .into_iter()
            .map(|elem| Point {
                x: format!("{elem} B"),
                gbps: model
                    .bandwidth_gbps(&clock, op, elem, volume)
                    .expect("element sizes are valid"),
            })
            .collect(),
    })
    .collect();
    Figure {
        id: "§4.2.2".into(),
        title: "SPU to Local Store".into(),
        x_label: "element".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadword_load_hits_peak() {
        let fig = section_4_2_2(&CellSystem::blade());
        let v = fig.value("load", "16 B").unwrap();
        assert!((v - 33.6).abs() < 0.1, "v={v}");
    }

    #[test]
    fn scalar_stores_lose_to_loads() {
        let fig = section_4_2_2(&CellSystem::blade());
        for elem in ["1 B", "2 B", "4 B", "8 B"] {
            assert!(fig.value("store", elem).unwrap() < fig.value("load", elem).unwrap());
        }
    }
}
