//! PPE bandwidth experiments (paper Figures 3, 4, 6).

use cellsim_ppe::{PpeKernelSpec, PpeOp};

use crate::report::{Figure, Point, Series};
use crate::CellSystem;

const ELEM_SIZES: [u32; 5] = [1, 2, 4, 8, 16];

/// PPE↔L1 load/store/copy for 1 and 2 threads (Figure 3 a–c).
///
/// The buffer is a quarter of the L1 so that even the two-thread copy
/// working set stays L1-resident, as the paper arranges.
pub fn figure3(system: &CellSystem) -> Vec<Figure> {
    let l1 = system.config().ppe.l1_bytes;
    ppe_figures(system, "3", "PPE to 32KB L1 cache", l1 / 4)
}

/// PPE↔L2 load/store/copy for 1 and 2 threads (Figure 4 a–c).
pub fn figure4(system: &CellSystem) -> Vec<Figure> {
    let l2 = system.config().ppe.l2_bytes;
    ppe_figures(system, "4", "PPE to 512KB L2 cache", l2 / 4)
}

/// PPE↔main-memory load/store/copy for 1 and 2 threads (Figure 6 a–c).
pub fn figure6(system: &CellSystem) -> Vec<Figure> {
    let l2 = system.config().ppe.l2_bytes;
    ppe_figures(system, "6", "PPE to main memory", 16 * l2)
}

fn ppe_figures(system: &CellSystem, id: &str, target: &str, buffer: u64) -> Vec<Figure> {
    let model = system.ppe_model();
    [
        (PpeOp::Load, "a", "Load"),
        (PpeOp::Store, "b", "Store"),
        (PpeOp::Copy, "c", "Copy"),
    ]
    .into_iter()
    .map(|(op, sub, name)| {
        let series = [1usize, 2]
            .into_iter()
            .map(|threads| Series {
                label: format!("{threads} thread{}", if threads > 1 { "s" } else { "" }),
                points: ELEM_SIZES
                    .into_iter()
                    .map(|elem| {
                        let r = model
                            .run(&PpeKernelSpec {
                                op,
                                elem_bytes: elem,
                                buffer_bytes: buffer,
                                threads,
                            })
                            .expect("experiment spec is valid");
                        Point {
                            x: format!("{elem} B"),
                            gbps: r.bandwidth_gbps,
                        }
                    })
                    .collect(),
            })
            .collect();
        Figure {
            id: format!("{id}{sub}"),
            title: format!("{target} — {name}"),
            x_label: "element".into(),
            series,
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_load_matches_paper_landmarks() {
        let figs = figure3(&CellSystem::blade());
        assert_eq!(figs.len(), 3);
        let load = &figs[0];
        assert_eq!(load.id, "3a");
        // ≥8 B loads: ~16.8; 16 B no better; proportional below.
        let v8 = load.value("1 thread", "8 B").unwrap();
        let v16 = load.value("1 thread", "16 B").unwrap();
        let v4 = load.value("1 thread", "4 B").unwrap();
        assert!((v8 - 16.8).abs() < 0.3, "v8={v8}");
        assert!((v16 - v8).abs() < 0.3);
        assert!((v4 - 8.4).abs() < 0.3);
    }

    #[test]
    fn figure4_and_6_loads_are_equal_and_low() {
        let sys = CellSystem::blade();
        let l2 = &figure4(&sys)[0];
        let mem = &figure6(&sys)[0];
        let a = l2.value("1 thread", "8 B").unwrap();
        let b = mem.value("1 thread", "8 B").unwrap();
        assert!(a < 7.0);
        assert!((a - b).abs() / a < 0.05, "paper: L2 load == mem load");
        // Two threads double it.
        let a2 = l2.value("2 threads", "8 B").unwrap();
        assert!((a2 / a - 2.0).abs() < 0.15);
    }

    #[test]
    fn figure6_stores_stay_under_six() {
        let store = &figure6(&CellSystem::blade())[1];
        for s in &store.series {
            for p in &s.points {
                assert!(p.gbps < 6.0, "{}: {}", s.label, p.gbps);
            }
        }
    }

    #[test]
    fn every_subfigure_has_both_thread_series() {
        for fig in figure3(&CellSystem::blade()) {
            assert_eq!(fig.series.len(), 2);
            assert_eq!(fig.series[0].points.len(), ELEM_SIZES.len());
        }
    }
}
