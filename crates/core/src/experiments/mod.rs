//! The ISPASS 2007 experiments, one constructor per paper figure.
//!
//! | Function | Paper figure | What it measures |
//! |---|---|---|
//! | [`figure3`] | Fig. 3 (a,b,c) | PPE↔L1 load/store/copy, 1–2 threads |
//! | [`figure4`] | Fig. 4 (a,b,c) | PPE↔L2 |
//! | [`figure6`] | Fig. 6 (a,b,c) | PPE↔main memory |
//! | [`figure8`] | Fig. 8 (a,b,c) | SPE↔memory DMA GET/PUT/GET+PUT, 1–8 SPEs |
//! | [`section_4_2_2`] | §4.2.2 | SPU↔Local Store load/store/copy |
//! | [`figure10`] | Fig. 10 | Delayed DMA synchronization, SPE↔SPE |
//! | [`figure12`] | Fig. 12 (a,b) | Couples of SPEs, DMA-elem vs DMA-list |
//! | [`figure13`] | Fig. 13 (a,b) | Couples: spread over placements |
//! | [`figure15`] | Fig. 15 (a,b) | Cycle of SPEs, DMA-elem vs DMA-list |
//! | [`figure16`] | Fig. 16 (a,b) | Cycle: spread over placements |
//! | [`figure_gups`] | — (extension) | GUPS random 8–128 B get+put update cycles |
//! | [`figure_stencil`] | — (extension) | Stencil halo exchange, halo width × grid shape |
//! | [`figure_pairlist`] | — (extension) | Pair-list skewed indexed gather/scatter |
//! | [`figure_degraded`] | — (extension) | Fault-injection ladder: healthy → 7 SPE → ring derate → bank NACKs |
//!
//! All DMA experiments honour the paper's protocol: weak scaling (a fixed
//! volume per SPE), warm state (the simulator has no TLB to warm), and
//! statistics over seeded random logical→physical placements.
//!
//! # Parallel sweeps
//!
//! Every DMA experiment is a sweep of independent runs, so each figure
//! has two entry points: `figureN(system, cfg)` runs on a private
//! [`SweepExecutor`] (worker count from `CELLSIM_JOBS`, default: all
//! cores), and `figureN_with(exec, system, cfg)` shares a caller-supplied
//! executor — sharing is what lets the run cache collapse the duplicate
//! points between Figures 10/12, 12/13 and 15/16. Results are
//! bit-identical for any worker count: run `k` of a sweep always draws
//! placement [`Placement::lottery`]`(cfg.seed, k)`, independent of
//! scheduling.

mod appwork;
mod degraded;
mod ppe;
mod spe_mem;
mod spe_pairs;
mod spu_ls;

pub use appwork::{
    figure_gups, figure_gups_with, figure_pairlist, figure_pairlist_with, figure_stencil,
    figure_stencil_with,
};
pub use degraded::{figure_degraded, figure_degraded_with};
pub use ppe::{figure3, figure4, figure6};
pub use spe_mem::{figure8, figure8_with};
pub use spe_pairs::{
    figure10, figure10_with, figure12, figure12_with, figure13, figure13_with, figure15,
    figure15_with, figure16, figure16_with,
};
pub use spu_ls::section_4_2_2;

use std::fmt;
use std::sync::Arc;

use cellsim_kernel::stats::SummaryError;

use crate::exec::{RunError, RunSpec, SweepExecutor, Workload};
use crate::fabric::FabricReport;
use crate::metrics::MetricsSummary;
use crate::placement::Placement;
use crate::report::{Figure, SpreadFigure};
use crate::{CellSystem, TransferPlan};

/// Every figure id `repro --figure` accepts: the paper figures in paper
/// order, then the application-workload extensions (`gups`, `stencil`,
/// `pairlist` — baselined like the paper figures), then the `degraded`
/// fault-injection extension. `degraded` is not part of the baseline
/// set ([`crate::Baseline`] collects only healthy figures), so
/// committed baselines are unaffected by the fault subsystem.
pub const FIGURE_IDS: &[&str] = &[
    "3", "4", "6", "8", "4.2.2", "10", "12", "13", "15", "16", "gups", "stencil", "pairlist",
    "degraded",
];

/// Shared knobs of the DMA experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Payload bytes each active SPE transfers (per direction where the
    /// experiment is bidirectional). The paper uses 32 MiB; the simulator
    /// is noise-free, so far less reaches steady state.
    pub volume_per_spe: u64,
    /// DMA element sizes to sweep (the paper: 128 B – 16 KB).
    pub dma_elem_sizes: Vec<u32>,
    /// Random placements per configuration (the paper: 10).
    pub placements: usize,
    /// RNG seed for the placement lottery.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            volume_per_spe: 2 << 20,
            dma_elem_sizes: vec![128, 256, 512, 1024, 2048, 4096, 8192, 16384],
            placements: 10,
            seed: 0xCE11,
        }
    }
}

impl ExperimentConfig {
    /// A reduced sweep for tests and smoke runs.
    pub fn quick() -> ExperimentConfig {
        ExperimentConfig {
            volume_per_spe: 256 << 10,
            dma_elem_sizes: vec![128, 1024, 16384],
            placements: 3,
            seed: 0xCE11,
        }
    }

    /// The paper-scale protocol (32 MiB per SPE, full sweep, 10 runs).
    /// Slow: minutes of host time serially; use `--jobs`.
    pub fn full() -> ExperimentConfig {
        ExperimentConfig {
            volume_per_spe: 32 << 20,
            ..ExperimentConfig::default()
        }
    }

    /// Checks the invariants every sweep relies on, so a degenerate
    /// configuration fails at the experiment boundary with a named cause
    /// instead of deep inside a reduction.
    ///
    /// # Errors
    ///
    /// The first [`ConfigIssue`] found.
    pub fn validate(&self) -> Result<(), ConfigIssue> {
        if self.placements == 0 {
            return Err(ConfigIssue::NoPlacements);
        }
        if self.dma_elem_sizes.is_empty() {
            return Err(ConfigIssue::NoElemSizes);
        }
        if self.volume_per_spe == 0 {
            return Err(ConfigIssue::ZeroVolume);
        }
        for &elem in &self.dma_elem_sizes {
            if elem == 0 || !self.volume_per_spe.is_multiple_of(u64::from(elem)) {
                return Err(ConfigIssue::ElemNotDividingVolume {
                    elem,
                    volume: self.volume_per_spe,
                });
            }
        }
        Ok(())
    }
}

/// A structural problem with an [`ExperimentConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigIssue {
    /// `placements == 0`: every summary would be empty.
    NoPlacements,
    /// `dma_elem_sizes` is empty: nothing to sweep.
    NoElemSizes,
    /// `volume_per_spe == 0`: plans would be empty.
    ZeroVolume,
    /// An element size is zero or does not divide the volume.
    ElemNotDividingVolume {
        /// The offending element size.
        elem: u32,
        /// The configured per-SPE volume.
        volume: u64,
    },
}

impl fmt::Display for ConfigIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigIssue::NoPlacements => write!(f, "placements must be >= 1"),
            ConfigIssue::NoElemSizes => write!(f, "dma_elem_sizes must be non-empty"),
            ConfigIssue::ZeroVolume => write!(f, "volume_per_spe must be > 0"),
            ConfigIssue::ElemNotDividingVolume { elem, volume } => write!(
                f,
                "element size {elem} does not divide volume_per_spe {volume}"
            ),
        }
    }
}

/// Why an experiment could not produce its figure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExperimentError {
    /// The configuration fails [`ExperimentConfig::validate`].
    InvalidConfig {
        /// The figure that rejected it (e.g. `"12"`).
        figure: &'static str,
        /// What is wrong.
        issue: ConfigIssue,
    },
    /// A reduction failed; names the exact point that produced it.
    Stats {
        /// The figure being reduced (e.g. `"13a"`).
        figure: String,
        /// The x-axis label of the degenerate point (e.g. `"16 KB"`).
        x: String,
        /// The underlying summary error.
        source: SummaryError,
    },
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::InvalidConfig { figure, issue } => {
                write!(f, "figure {figure}: invalid experiment config: {issue}")
            }
            ExperimentError::Stats { figure, x, source } => {
                write!(f, "figure {figure} at {x}: {source}")
            }
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::Stats { source, .. } => Some(source),
            ExperimentError::InvalidConfig { .. } => None,
        }
    }
}

/// One experiment point of a sweep: the plan to simulate and the
/// [`Workload`] identifying it in the run cache.
///
/// Public so remote drivers (the `cellsim-serve` client) can enumerate
/// a figure's points ([`figure_points`]) and mirror exactly the sweep
/// `repro` would run locally.
#[derive(Clone)]
pub struct SweepPoint {
    /// The run-cache identity of this point.
    pub workload: Workload,
    /// The DMA program realizing it (shared across placements).
    pub plan: Arc<TransferPlan>,
}

/// One sweep point's outcome: the reports of the placements that
/// completed, plus how many failed (stalled or panicked). The failures
/// themselves stay on the executor ([`SweepExecutor::take_failures`]), keyed
/// by `RunKey`; here they only subtract samples, so a partially failed
/// sweep still renders a figure with the incomplete points marked.
pub(crate) struct PointRuns {
    pub reports: Vec<Arc<FabricReport>>,
    pub failed: usize,
}

impl PointRuns {
    /// Appends the partial-point marker (`*`) to an x label when any run
    /// of this point failed. Complete points keep their label verbatim,
    /// so a fully healthy sweep renders byte-identically to the
    /// pre-failure-pipeline output.
    pub fn mark(&self, x: String) -> String {
        if self.failed > 0 {
            format!("{x}*")
        } else {
            x
        }
    }

    /// `metric` over the surviving runs, in placement order.
    pub fn samples(&self, metric: fn(&FabricReport) -> f64) -> Vec<f64> {
        self.reports.iter().map(|r| metric(r)).collect()
    }
}

/// Groups a `try_run` result vector into [`PointRuns`], `per_point`
/// consecutive results per point.
pub(crate) fn group_results(
    results: Vec<Result<Arc<FabricReport>, RunError>>,
    per_point: usize,
) -> Vec<PointRuns> {
    results
        .chunks(per_point)
        .map(|chunk| {
            let mut point = PointRuns {
                reports: Vec::new(),
                failed: 0,
            };
            for result in chunk {
                match result {
                    Ok(report) => point.reports.push(Arc::clone(report)),
                    Err(_) => point.failed += 1,
                }
            }
            point
        })
        .collect()
}

/// Expands `points` into per-placement [`RunSpec`]s (run `k` draws
/// [`Placement::lottery`]`(cfg.seed, k)` — or, when `system` carries a
/// fault plan with fused SPEs, [`Placement::lottery_avoiding`], which is
/// draw-for-draw identical on a healthy machine), executes the whole
/// batch on `exec`, and returns the survivors grouped per point, in
/// point order. Failed runs are recorded on `exec` and counted per
/// point; the sweep itself never panics on them.
pub(crate) fn sweep(
    exec: &SweepExecutor,
    system: &CellSystem,
    cfg: &ExperimentConfig,
    points: &[SweepPoint],
) -> Vec<PointRuns> {
    group_results(
        exec.try_run(figure_specs(system, cfg, points)),
        cfg.placements,
    )
}

/// Expands sweep points into the exact per-placement [`RunSpec`] batch
/// an experiment submits: `cfg.placements` consecutive specs per point,
/// in point order, placement `k` drawn with
/// [`Placement::lottery_avoiding`]`(cfg.seed, k, fused_mask)`. This is
/// the single source of truth for "which runs make up a figure" — the
/// local sweep, the serve client and the serve smoke tests all expand
/// through here, so their run keys coincide in every cache tier.
pub fn figure_specs(
    system: &CellSystem,
    cfg: &ExperimentConfig,
    points: &[SweepPoint],
) -> Vec<RunSpec> {
    let fused = system
        .faults()
        .map_or(0, cellsim_faults::FaultPlan::fused_mask);
    let mut specs = Vec::with_capacity(points.len() * cfg.placements);
    for point in points {
        for k in 0..cfg.placements {
            specs.push(RunSpec::new(
                system,
                point.workload.clone(),
                Placement::lottery_avoiding(cfg.seed, k as u64, fused),
                Arc::clone(&point.plan),
            ));
        }
    }
    specs
}

/// The sweep points behind a fabric figure, in figure order: the same
/// builders [`figure_metrics_with`] and the figure renderers use.
/// Returns `Ok(None)` for figures that do not sweep the DMA fabric
/// (3, 4, 6, §4.2.2) and for unknown ids.
///
/// # Errors
///
/// [`ExperimentError::InvalidConfig`] if `cfg` fails validation.
pub fn figure_points(
    cfg: &ExperimentConfig,
    figure: &str,
) -> Result<Option<Vec<SweepPoint>>, ExperimentError> {
    type Builder = fn(&ExperimentConfig) -> Vec<SweepPoint>;
    let (id, builder): (&'static str, Builder) = match figure {
        "8" => ("8", spe_mem::figure8_points),
        "10" => ("10", spe_pairs::figure10_points),
        "12" => ("12", spe_pairs::figure12_points),
        "13" => ("13", spe_pairs::figure13_points),
        "15" => ("15", spe_pairs::figure15_points),
        "16" => ("16", spe_pairs::figure16_points),
        "gups" => ("gups", appwork::gups_points),
        "stencil" => ("stencil", appwork::stencil_points),
        "pairlist" => ("pairlist", appwork::pairlist_points),
        _ => return Ok(None),
    };
    cfg.validate()
        .map_err(|issue| ExperimentError::InvalidConfig { figure: id, issue })?;
    Ok(Some(builder(cfg)))
}

/// Typed reason a [`Workload`] received over a wire could not be turned
/// into a runnable plan. The serve daemon maps these to protocol errors
/// naming the offending run, so a bad request degrades loudly instead
/// of panicking a resident process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// The pattern name is not one of the sweepable patterns.
    UnknownPattern(String),
    /// The SPE count is invalid for the pattern (`couples` needs an
    /// even count; every pattern needs `1..=8`, exchanges `2..=8`).
    BadSpes {
        /// The canonical pattern name.
        pattern: &'static str,
        /// The rejected count.
        spes: u8,
    },
    /// The memory-streaming patterns hardcode [`SyncPolicy::AfterAll`]
    /// and DMA-elem; a differing key would lie about the plan.
    Unsupported {
        /// The canonical pattern name.
        pattern: &'static str,
        /// What was asked for that the pattern does not express.
        what: &'static str,
    },
    /// `volume` is zero or not a multiple of `elem`.
    BadVolume {
        /// Requested payload bytes per SPE.
        volume: u64,
        /// Requested element size.
        elem: u32,
    },
    /// The plan builder rejected the parameters (e.g. a DMA element
    /// larger than the MFC's 16 KiB limit).
    Plan(crate::PlanError),
    /// The packed `Workload::params` word (or a field interacting with
    /// it) is invalid for the pattern's stream generator.
    BadParams {
        /// The canonical pattern name.
        pattern: &'static str,
        /// The generator's rejection, rendered.
        detail: String,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::UnknownPattern(name) => {
                write!(f, "unknown workload pattern '{name}'")
            }
            WorkloadError::BadSpes { pattern, spes } => {
                write!(f, "pattern '{pattern}' cannot run on {spes} SPE(s)")
            }
            WorkloadError::Unsupported { pattern, what } => {
                write!(f, "pattern '{pattern}' does not support {what}")
            }
            WorkloadError::BadVolume { volume, elem } => {
                write!(
                    f,
                    "volume {volume} is zero or not a multiple of element size {elem}"
                )
            }
            WorkloadError::Plan(e) => write!(f, "plan rejected: {e}"),
            WorkloadError::BadParams { pattern, detail } => {
                write!(f, "pattern '{pattern}' has invalid params: {detail}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Maps a wire pattern name to the canonical `&'static str` used as a
/// [`Workload`] cache key; `None` for unknown names.
#[must_use]
pub fn canonical_pattern(name: &str) -> Option<&'static str> {
    match name {
        "mem-get" => Some("mem-get"),
        "mem-put" => Some("mem-put"),
        "mem-copy" => Some("mem-copy"),
        "couples" => Some("couples"),
        "cycle" => Some("cycle"),
        "gups" => Some("gups"),
        "stencil" => Some("stencil"),
        "pairlist" => Some("pairlist"),
        _ => None,
    }
}

/// Rebuilds the [`TransferPlan`] a [`Workload`] describes — the inverse
/// of the experiment point builders, for callers (the serve daemon)
/// that receive workloads rather than construct them. The returned plan
/// simulates identically to the one the local experiment would build
/// for the same workload, so run keys and cached reports coincide.
///
/// # Errors
///
/// [`WorkloadError`] naming the first invalid parameter.
pub fn workload_plan(w: &Workload) -> Result<Arc<TransferPlan>, WorkloadError> {
    let pattern = canonical_pattern(w.pattern)
        .ok_or_else(|| WorkloadError::UnknownPattern(w.pattern.to_string()))?;
    if w.volume == 0 || w.elem == 0 || !w.volume.is_multiple_of(u64::from(w.elem)) {
        return Err(WorkloadError::BadVolume {
            volume: w.volume,
            elem: w.elem,
        });
    }
    let spes = usize::from(w.spes);
    let plan = match pattern {
        "mem-get" | "mem-put" | "mem-copy" => {
            if !(1..=8).contains(&spes) {
                return Err(WorkloadError::BadSpes {
                    pattern,
                    spes: w.spes,
                });
            }
            if w.list {
                return Err(WorkloadError::Unsupported {
                    pattern,
                    what: "DMA-list mode",
                });
            }
            if w.sync != crate::SyncPolicy::AfterAll {
                return Err(WorkloadError::Unsupported {
                    pattern,
                    what: "sync policies other than 'all'",
                });
            }
            let op = match pattern {
                "mem-get" => spe_mem::MemOp::Get,
                "mem-put" => spe_mem::MemOp::Put,
                _ => spe_mem::MemOp::Copy,
            };
            spe_mem::mem_plan(op, spes, w.volume, w.elem)
        }
        "couples" | "cycle" => {
            let shape = if pattern == "couples" {
                spe_pairs::Pattern::Couples
            } else {
                spe_pairs::Pattern::Cycle
            };
            let valid = (2..=8).contains(&spes) && (pattern != "couples" || spes % 2 == 0);
            if !valid {
                return Err(WorkloadError::BadSpes {
                    pattern,
                    spes: w.spes,
                });
            }
            spe_pairs::pattern_plan(shape, spes, w.volume, w.elem, w.list, w.sync)
        }
        "gups" => return appwork::gups_plan(w).map(Arc::new),
        "stencil" => return appwork::stencil_plan(w).map(Arc::new),
        "pairlist" => return appwork::pairlist_plan(w).map(Arc::new),
        _ => unreachable!("canonical_pattern returned an unhandled name"),
    };
    plan.map(Arc::new).map_err(WorkloadError::Plan)
}

/// Mean of `samples`; `0.0` for an empty slice (a sweep point whose
/// every placement failed), so partial figures render a marked zero
/// instead of `NaN`.
pub(crate) fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// The fabric-metrics digest of one figure's sweep, summed over exactly
/// the runs that produced the figure: run `figureN_with` and this on the
/// *same* executor and every run here is a cache hit.
///
/// Returns `Ok(None)` for figures that do not exercise the DMA fabric
/// (the PPE and SPU↔LS microbenchmarks: 3, 4, 6 and §4.2.2) and for
/// unknown ids — id validation belongs to the caller (see [`FIGURE_IDS`]).
///
/// # Errors
///
/// [`ExperimentError::InvalidConfig`] if `cfg` fails validation.
pub fn figure_metrics_with(
    exec: &SweepExecutor,
    system: &CellSystem,
    cfg: &ExperimentConfig,
    figure: &str,
) -> Result<Option<MetricsSummary>, ExperimentError> {
    let Some(points) = figure_points(cfg, figure)? else {
        return Ok(None);
    };
    let groups = sweep(exec, system, cfg, &points);
    let mut summary = MetricsSummary::default();
    for report in groups.iter().flat_map(|g| &g.reports) {
        summary.accumulate_report(report);
    }
    Ok(Some(summary))
}

/// Runs every experiment on `exec` and returns all figures in paper
/// order. Sharing one executor across figures is what deduplicates the
/// overlapping sweeps (10→12 2-SPE couples, 12→13 and 15→16 8-SPE
/// columns).
///
/// # Errors
///
/// The first [`ExperimentError`] any figure reports.
pub fn all_figures_with(
    exec: &SweepExecutor,
    system: &CellSystem,
    cfg: &ExperimentConfig,
) -> Result<(Vec<Figure>, Vec<SpreadFigure>), ExperimentError> {
    let mut figures = Vec::new();
    figures.extend(figure3(system));
    figures.extend(figure4(system));
    figures.extend(figure6(system));
    figures.extend(figure8_with(exec, system, cfg)?);
    figures.push(section_4_2_2(system));
    figures.push(figure10_with(exec, system, cfg)?);
    figures.extend(figure12_with(exec, system, cfg)?);
    figures.extend(figure15_with(exec, system, cfg)?);
    figures.push(figure_gups_with(exec, system, cfg)?);
    figures.push(figure_stencil_with(exec, system, cfg)?);
    figures.push(figure_pairlist_with(exec, system, cfg)?);
    let mut spreads = Vec::new();
    spreads.extend(figure13_with(exec, system, cfg)?);
    spreads.extend(figure16_with(exec, system, cfg)?);
    Ok((figures, spreads))
}

/// Runs every experiment on a private executor (`CELLSIM_JOBS` workers,
/// default: all cores) and returns all figures in paper order.
///
/// # Errors
///
/// The first [`ExperimentError`] any figure reports.
pub fn all_figures(
    system: &CellSystem,
    cfg: &ExperimentConfig,
) -> Result<(Vec<Figure>, Vec<SpreadFigure>), ExperimentError> {
    all_figures_with(&SweepExecutor::default(), system, cfg)
}
