//! The ISPASS 2007 experiments, one constructor per paper figure.
//!
//! | Function | Paper figure | What it measures |
//! |---|---|---|
//! | [`figure3`] | Fig. 3 (a,b,c) | PPE↔L1 load/store/copy, 1–2 threads |
//! | [`figure4`] | Fig. 4 (a,b,c) | PPE↔L2 |
//! | [`figure6`] | Fig. 6 (a,b,c) | PPE↔main memory |
//! | [`figure8`] | Fig. 8 (a,b,c) | SPE↔memory DMA GET/PUT/GET+PUT, 1–8 SPEs |
//! | [`section_4_2_2`] | §4.2.2 | SPU↔Local Store load/store/copy |
//! | [`figure10`] | Fig. 10 | Delayed DMA synchronization, SPE↔SPE |
//! | [`figure12`] | Fig. 12 (a,b) | Couples of SPEs, DMA-elem vs DMA-list |
//! | [`figure13`] | Fig. 13 (a,b) | Couples: spread over placements |
//! | [`figure15`] | Fig. 15 (a,b) | Cycle of SPEs, DMA-elem vs DMA-list |
//! | [`figure16`] | Fig. 16 (a,b) | Cycle: spread over placements |
//!
//! All DMA experiments honour the paper's protocol: weak scaling (a fixed
//! volume per SPE), warm state (the simulator has no TLB to warm), and
//! statistics over seeded random logical→physical placements.

mod ppe;
mod spe_mem;
mod spe_pairs;
mod spu_ls;

pub use ppe::{figure3, figure4, figure6};
pub use spe_mem::figure8;
pub use spe_pairs::{figure10, figure12, figure13, figure15, figure16};
pub use spu_ls::section_4_2_2;

use crate::report::{Figure, SpreadFigure};
use crate::CellSystem;

/// Shared knobs of the DMA experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Payload bytes each active SPE transfers (per direction where the
    /// experiment is bidirectional). The paper uses 32 MiB; the simulator
    /// is noise-free, so far less reaches steady state.
    pub volume_per_spe: u64,
    /// DMA element sizes to sweep (the paper: 128 B – 16 KB).
    pub dma_elem_sizes: Vec<u32>,
    /// Random placements per configuration (the paper: 10).
    pub placements: usize,
    /// RNG seed for the placement lottery.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            volume_per_spe: 2 << 20,
            dma_elem_sizes: vec![128, 256, 512, 1024, 2048, 4096, 8192, 16384],
            placements: 10,
            seed: 0xCE11,
        }
    }
}

impl ExperimentConfig {
    /// A reduced sweep for tests and smoke runs.
    pub fn quick() -> ExperimentConfig {
        ExperimentConfig {
            volume_per_spe: 256 << 10,
            dma_elem_sizes: vec![128, 1024, 16384],
            placements: 3,
            seed: 0xCE11,
        }
    }

    /// The paper-scale protocol (32 MiB per SPE, full sweep, 10 runs).
    /// Slow: minutes of host time.
    pub fn full() -> ExperimentConfig {
        ExperimentConfig {
            volume_per_spe: 32 << 20,
            ..ExperimentConfig::default()
        }
    }
}

/// Runs every experiment and returns all figures in paper order.
pub fn all_figures(
    system: &CellSystem,
    cfg: &ExperimentConfig,
) -> (Vec<Figure>, Vec<SpreadFigure>) {
    let mut figures = Vec::new();
    figures.extend(figure3(system));
    figures.extend(figure4(system));
    figures.extend(figure6(system));
    figures.extend(figure8(system, cfg));
    figures.push(section_4_2_2(system));
    figures.push(figure10(system, cfg));
    figures.extend(figure12(system, cfg));
    figures.extend(figure15(system, cfg));
    let mut spreads = Vec::new();
    spreads.extend(figure13(system, cfg));
    spreads.extend(figure16(system, cfg));
    (figures, spreads)
}
